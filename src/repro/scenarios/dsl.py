"""The declarative scenario DSL: campaign specs as frozen dataclasses.

A :class:`ScenarioSpec` is the full description of one campaign — a fabric
topology, a chain workload, and an ordered list of :class:`PhaseSpec`
phases, each with its own arrival :class:`LoadCurve`, tenant lifetime,
modify mix, scheduled :class:`FaultAction` drains/undrains, and
:class:`ModifyBurst` storms.  Specs are pure data: they round-trip through
``to_dict``/``from_dict`` *exactly* (field for field, float for float), so
``parse -> serialize -> parse`` is the identity — the property the
Hypothesis suite in ``tests/scenarios/test_properties_dsl.py`` pins down.

Files are JSON by default (:func:`save_spec`/:func:`load_spec`); ``.yaml``
/``.yml`` paths work when PyYAML is importable and raise a clear
:class:`~repro.errors.ScenarioError` when it is not (the CI image installs
it; the library never hard-depends on it).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.spec import SwitchSpec
from repro.errors import ScenarioError
from repro.fabric.topology import FabricTopology
from repro.traffic.workload import WorkloadConfig

try:  # pragma: no cover - exercised via the YAML-specific tests
    import yaml as _yaml
except ImportError:  # pragma: no cover
    _yaml = None

#: Load-curve shapes the compiler understands.
CURVE_KINDS = ("constant", "ramp", "sine", "spike")

#: Administrative actions a fault schedule may request.
FAULT_KINDS = ("drain", "undrain", "reoptimize")

#: Topology builders a spec may name.
TOPOLOGY_KINDS = ("full_mesh", "ring")


@dataclass(frozen=True)
class LoadCurve:
    """Arrival-rate shape over one phase, in tenants per second.

    ``constant`` holds ``rate_per_s``; ``ramp`` moves linearly from
    ``rate_per_s`` to ``peak_per_s`` across the phase; ``sine`` oscillates
    between ``rate_per_s`` (trough) and ``peak_per_s`` (crest) with period
    ``period_s`` (defaulting to the phase duration); ``spike`` holds
    ``rate_per_s`` except for a burst window of ``peak_per_s`` starting at
    ``spike_start_frac`` of the phase and lasting ``spike_width_frac`` of
    it.
    """

    kind: str = "constant"
    rate_per_s: float = 5.0
    peak_per_s: float | None = None
    period_s: float | None = None
    spike_start_frac: float = 0.5
    spike_width_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.kind not in CURVE_KINDS:
            raise ScenarioError(
                f"unknown load curve kind {self.kind!r}; choices: {CURVE_KINDS}"
            )
        if self.rate_per_s <= 0:
            raise ScenarioError("rate_per_s must be positive")
        if self.kind != "constant" and self.peak_per_s is None:
            raise ScenarioError(f"{self.kind} curves need peak_per_s")
        if self.peak_per_s is not None and self.peak_per_s <= 0:
            raise ScenarioError("peak_per_s must be positive")
        if self.period_s is not None and self.period_s <= 0:
            raise ScenarioError("period_s must be positive")
        if not 0.0 <= self.spike_start_frac <= 1.0:
            raise ScenarioError("spike_start_frac must be in [0, 1]")
        if not 0.0 < self.spike_width_frac <= 1.0:
            raise ScenarioError("spike_width_frac must be in (0, 1]")

    def rate_at(self, t: float, duration: float) -> float:
        """Instantaneous arrival rate ``t`` seconds into a phase of
        ``duration`` seconds."""
        if self.kind == "constant":
            return self.rate_per_s
        assert self.peak_per_s is not None
        if self.kind == "ramp":
            frac = 0.0 if duration <= 0 else min(max(t / duration, 0.0), 1.0)
            return self.rate_per_s + (self.peak_per_s - self.rate_per_s) * frac
        if self.kind == "sine":
            period = self.period_s if self.period_s is not None else duration
            mid = (self.rate_per_s + self.peak_per_s) / 2.0
            amp = (self.peak_per_s - self.rate_per_s) / 2.0
            # Trough at t=0 so a phase ramps up into its crest.
            return mid - amp * math.cos(2.0 * math.pi * t / period)
        start = self.spike_start_frac * duration
        stop = start + self.spike_width_frac * duration
        return self.peak_per_s if start <= t < stop else self.rate_per_s

    def max_rate(self, duration: float) -> float:
        """An upper bound on :meth:`rate_at` over the phase — the thinning
        envelope the compiler samples against."""
        if self.peak_per_s is None:
            return self.rate_per_s
        return max(self.rate_per_s, self.peak_per_s)

    def to_dict(self) -> dict:
        """JSON-native form (exact ``from_dict`` inverse)."""
        return {
            "kind": self.kind,
            "rate_per_s": self.rate_per_s,
            "peak_per_s": self.peak_per_s,
            "period_s": self.period_s,
            "spike_start_frac": self.spike_start_frac,
            "spike_width_frac": self.spike_width_frac,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "LoadCurve":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=record["kind"],
            rate_per_s=record["rate_per_s"],
            peak_per_s=record.get("peak_per_s"),
            period_s=record.get("period_s"),
            spike_start_frac=record.get("spike_start_frac", 0.5),
            spike_width_frac=record.get("spike_width_frac", 0.1),
        )


@dataclass(frozen=True)
class FaultAction:
    """One scheduled administrative event inside a phase: ``drain`` or
    ``undrain`` of a named switch at ``at_s`` seconds after phase start, or
    a fabric-wide ``reoptimize`` pass (no target switch required — any
    named switch is accepted and ignored)."""

    at_s: float
    kind: str
    switch: str = ""

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ScenarioError("fault at_s must be >= 0")
        if self.kind not in FAULT_KINDS:
            raise ScenarioError(
                f"unknown fault kind {self.kind!r}; choices: {FAULT_KINDS}"
            )
        if self.kind != "reoptimize" and not self.switch:
            raise ScenarioError("fault needs a switch name")

    def to_dict(self) -> dict:
        """JSON-native form (exact ``from_dict`` inverse)."""
        return {"at_s": self.at_s, "kind": self.kind, "switch": self.switch}

    @classmethod
    def from_dict(cls, record: dict) -> "FaultAction":
        """Inverse of :meth:`to_dict`."""
        return cls(
            at_s=record["at_s"],
            kind=record["kind"],
            switch=record.get("switch", ""),
        )


@dataclass(frozen=True)
class ModifyBurst:
    """A modify storm: at ``at_s`` seconds into the phase, each tenant
    live at that instant re-negotiates its chain with probability
    ``fraction`` (one coin per tenant, drawn from the campaign seed)."""

    at_s: float
    fraction: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ScenarioError("burst at_s must be >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ScenarioError("burst fraction must be in (0, 1]")

    def to_dict(self) -> dict:
        """JSON-native form (exact ``from_dict`` inverse)."""
        return {"at_s": self.at_s, "fraction": self.fraction}

    @classmethod
    def from_dict(cls, record: dict) -> "ModifyBurst":
        """Inverse of :meth:`to_dict`."""
        return cls(at_s=record["at_s"], fraction=record["fraction"])


@dataclass(frozen=True)
class PhaseSpec:
    """One named campaign phase: a duration, an arrival curve, tenant
    lifetime/modify behaviour, and scheduled faults/bursts (offsets are
    seconds after phase start and must land inside the phase)."""

    name: str
    duration_s: float
    load: LoadCurve = field(default_factory=LoadCurve)
    mean_lifetime_s: float = 8.0
    modify_fraction: float = 0.0
    faults: tuple[FaultAction, ...] = ()
    bursts: tuple[ModifyBurst, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("phases need a non-empty name")
        if self.duration_s <= 0:
            raise ScenarioError(f"phase {self.name!r}: duration must be positive")
        if self.mean_lifetime_s <= 0:
            raise ScenarioError(
                f"phase {self.name!r}: mean lifetime must be positive"
            )
        if not 0.0 <= self.modify_fraction <= 1.0:
            raise ScenarioError(
                f"phase {self.name!r}: modify_fraction must be in [0, 1]"
            )
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(self, "bursts", tuple(self.bursts))
        for action in self.faults:
            if action.at_s >= self.duration_s:
                raise ScenarioError(
                    f"phase {self.name!r}: fault at {action.at_s}s falls "
                    f"outside the {self.duration_s}s phase"
                )
        for burst in self.bursts:
            if burst.at_s >= self.duration_s:
                raise ScenarioError(
                    f"phase {self.name!r}: burst at {burst.at_s}s falls "
                    f"outside the {self.duration_s}s phase"
                )

    def to_dict(self) -> dict:
        """JSON-native form (exact ``from_dict`` inverse)."""
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "load": self.load.to_dict(),
            "mean_lifetime_s": self.mean_lifetime_s,
            "modify_fraction": self.modify_fraction,
            "faults": [a.to_dict() for a in self.faults],
            "bursts": [b.to_dict() for b in self.bursts],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "PhaseSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=record["name"],
            duration_s=record["duration_s"],
            load=LoadCurve.from_dict(record["load"]),
            mean_lifetime_s=record.get("mean_lifetime_s", 8.0),
            modify_fraction=record.get("modify_fraction", 0.0),
            faults=tuple(
                FaultAction.from_dict(a) for a in record.get("faults", ())
            ),
            bursts=tuple(
                ModifyBurst.from_dict(b) for b in record.get("bursts", ())
            ),
        )


@dataclass(frozen=True)
class TopologySpec:
    """The fabric a campaign runs on: a named builder shape (``full_mesh``
    or ``ring``), switch count, the per-switch :class:`SwitchSpec`, the
    recirculation budget and link capacity — enough to rebuild the exact
    :class:`~repro.fabric.topology.FabricTopology`."""

    kind: str = "full_mesh"
    num_switches: int = 4
    switch: SwitchSpec = field(default_factory=SwitchSpec)
    max_recirculations: int = 2
    link_capacity_gbps: float = 400.0

    def __post_init__(self) -> None:
        if self.kind not in TOPOLOGY_KINDS:
            raise ScenarioError(
                f"unknown topology kind {self.kind!r}; choices: {TOPOLOGY_KINDS}"
            )
        if self.num_switches < 1:
            raise ScenarioError("num_switches must be >= 1")
        if self.max_recirculations < 0:
            raise ScenarioError("max_recirculations must be >= 0")
        if self.link_capacity_gbps <= 0:
            raise ScenarioError("link_capacity_gbps must be positive")

    @property
    def switch_names(self) -> list[str]:
        """Switch names the builder will create, in canonical sorted
        order (matching :attr:`FabricTopology.switch_names`)."""
        return sorted(f"sw{i}" for i in range(self.num_switches))

    def build(self) -> FabricTopology:
        """Materialize the described :class:`FabricTopology`."""
        builder = (
            FabricTopology.full_mesh
            if self.kind == "full_mesh"
            else FabricTopology.ring
        )
        return builder(
            self.num_switches,
            spec=self.switch,
            link_capacity_gbps=self.link_capacity_gbps,
            max_recirculations=self.max_recirculations,
        )

    def to_dict(self) -> dict:
        """JSON-native form (exact ``from_dict`` inverse)."""
        return {
            "kind": self.kind,
            "num_switches": self.num_switches,
            "switch": self.switch.to_dict(),
            "max_recirculations": self.max_recirculations,
            "link_capacity_gbps": self.link_capacity_gbps,
        }

    @classmethod
    def from_dict(cls, record: dict) -> "TopologySpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=record["kind"],
            num_switches=record["num_switches"],
            switch=SwitchSpec.from_dict(record["switch"]),
            max_recirculations=record["max_recirculations"],
            link_capacity_gbps=record["link_capacity_gbps"],
        )


def _workload_to_dict(workload: WorkloadConfig) -> dict:
    """JSON-native form of a :class:`WorkloadConfig` (all scalar fields)."""
    return {
        "num_sfcs": workload.num_sfcs,
        "num_types": workload.num_types,
        "avg_chain_length": workload.avg_chain_length,
        "chain_length_spread": workload.chain_length_spread,
        "rules_min": workload.rules_min,
        "rules_max": workload.rules_max,
        "mean_bandwidth_gbps": workload.mean_bandwidth_gbps,
        "bandwidth_sigma": workload.bandwidth_sigma,
        "min_bandwidth_gbps": workload.min_bandwidth_gbps,
        "max_bandwidth_gbps": workload.max_bandwidth_gbps,
    }


def _workload_from_dict(record: dict) -> WorkloadConfig:
    """Inverse of :func:`_workload_to_dict`."""
    return WorkloadConfig(**record)


@dataclass(frozen=True)
class ScenarioSpec:
    """A full campaign: name, seed, fabric topology, chain workload,
    partitioner, and the ordered phases.  Fault schedules are validated
    against the topology's switch names at construction time."""

    name: str
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    phases: tuple[PhaseSpec, ...] = ()
    seed: int = 0
    partitioner: str = "hash"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ScenarioError("scenarios need a non-empty name")
        object.__setattr__(self, "phases", tuple(self.phases))
        if not self.phases:
            raise ScenarioError(f"scenario {self.name!r} has no phases")
        names = {p.name for p in self.phases}
        if len(names) != len(self.phases):
            raise ScenarioError(f"scenario {self.name!r}: phase names repeat")
        valid = set(self.topology.switch_names)
        for phase in self.phases:
            for action in phase.faults:
                if action.switch and action.switch not in valid:
                    raise ScenarioError(
                        f"scenario {self.name!r}, phase {phase.name!r}: fault "
                        f"targets unknown switch {action.switch!r}"
                    )

    @property
    def duration_s(self) -> float:
        """Total campaign horizon (sum of phase durations)."""
        return sum(p.duration_s for p in self.phases)

    def phase_bounds(self) -> list[tuple[str, float, float]]:
        """``(name, start_s, end_s)`` per phase, in campaign time."""
        bounds = []
        t = 0.0
        for phase in self.phases:
            bounds.append((phase.name, t, t + phase.duration_s))
            t += phase.duration_s
        return bounds

    def shrunk(self, time_scale: float) -> "ScenarioSpec":
        """A proportionally shorter copy — every phase duration, fault
        offset, burst offset and sine period multiplied by ``time_scale``
        (rates untouched, so ``--smoke`` runs compress wall time while
        keeping the campaign's shape)."""
        if time_scale <= 0:
            raise ScenarioError("time_scale must be positive")
        phases = []
        for phase in self.phases:
            load = phase.load
            if load.period_s is not None:
                load = replace(load, period_s=load.period_s * time_scale)
            phases.append(
                replace(
                    phase,
                    duration_s=phase.duration_s * time_scale,
                    load=load,
                    mean_lifetime_s=phase.mean_lifetime_s * time_scale,
                    faults=tuple(
                        replace(a, at_s=a.at_s * time_scale)
                        for a in phase.faults
                    ),
                    bursts=tuple(
                        replace(b, at_s=b.at_s * time_scale)
                        for b in phase.bursts
                    ),
                )
            )
        return replace(self, phases=tuple(phases))

    def to_dict(self) -> dict:
        """JSON-native form (exact ``from_dict`` inverse)."""
        return {
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "partitioner": self.partitioner,
            "topology": self.topology.to_dict(),
            "workload": _workload_to_dict(self.workload),
            "phases": [p.to_dict() for p in self.phases],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=record["name"],
            description=record.get("description", ""),
            seed=record.get("seed", 0),
            partitioner=record.get("partitioner", "hash"),
            topology=TopologySpec.from_dict(record["topology"]),
            workload=_workload_from_dict(record["workload"]),
            phases=tuple(PhaseSpec.from_dict(p) for p in record["phases"]),
        )

    def to_json(self) -> str:
        """Canonical JSON text (sorted keys, 2-space indent)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Inverse of :meth:`to_json`."""
        try:
            record = json.loads(text)
        except ValueError as exc:
            raise ScenarioError(f"unparseable scenario JSON: {exc}") from exc
        return cls.from_dict(record)


def _is_yaml_path(path: Path) -> bool:
    return path.suffix.lower() in (".yaml", ".yml")


def _require_yaml(path: Path):
    if _yaml is None:
        raise ScenarioError(
            f"{path} is a YAML spec but PyYAML is not installed; "
            "use a .json spec or install pyyaml"
        )
    return _yaml


def save_spec(path: str | Path, spec: ScenarioSpec) -> None:
    """Write ``spec`` to ``path`` — YAML for ``.yaml``/``.yml`` suffixes
    (requires PyYAML), canonical JSON otherwise."""
    path = Path(path)
    if _is_yaml_path(path):
        yaml = _require_yaml(path)
        text = yaml.safe_dump(spec.to_dict(), sort_keys=True)
    else:
        text = spec.to_json()
    path.write_text(text, encoding="utf-8")


def load_spec(path: str | Path) -> ScenarioSpec:
    """Read a spec written by :func:`save_spec` (or by hand)."""
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if _is_yaml_path(path):
        yaml = _require_yaml(path)
        try:
            record = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(f"unparseable YAML spec {path}: {exc}") from exc
        if not isinstance(record, dict):
            raise ScenarioError(f"YAML spec {path} is not a mapping")
        return ScenarioSpec.from_dict(record)
    return ScenarioSpec.from_json(text)
