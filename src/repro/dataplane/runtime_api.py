"""A P4Runtime-style control API over the pipeline.

The control plane talks to the switch through batched write requests of
INSERT / MODIFY / DELETE operations on named tables, mirroring the
P4Runtime ``Write(WriteRequest)`` RPC.  Batches are atomic: if any operation
fails validation or resources, the whole batch is rolled back — which is
what lets the runtime-update engine (§V-E) swap tenant rule sets safely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.errors import DataPlaneError, ResourceExhaustedError
from repro.telemetry.spans import Tracer


class OpType(enum.Enum):
    INSERT = "insert"
    MODIFY = "modify"
    DELETE = "delete"


@dataclass(frozen=True)
class WriteOp:
    """One table operation inside a batch."""

    op: OpType
    table: str
    entry: TableEntry
    #: For MODIFY: the replacement entry (same match, new action/params).
    replacement: TableEntry | None = None


@dataclass
class WriteResult:
    """Outcome of a batch write."""

    applied: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors


class RuntimeAPI:
    """Batched entry CRUD with rollback, plus simple read RPCs."""

    def __init__(self, pipeline: SwitchPipeline) -> None:
        self.pipeline = pipeline
        self.writes_total = 0
        self.batches_total = 0
        #: Optional control-plane tracer: every :meth:`write` batch becomes
        #: a ``runtime.write`` span (child of the caller's open span).
        self.tracer: Tracer | None = None

    # -- reads ------------------------------------------------------------
    def read_entries(self, table_name: str) -> list[TableEntry]:
        """All entries currently installed in ``table_name`` (Read RPC)."""
        _stage, table = self.pipeline.find_table(table_name)
        return list(table.entries)  # type: ignore[attr-defined]

    def table_stats(self, table_name: str) -> dict[str, int]:
        """Entry count and hit/miss counters for ``table_name``."""
        _stage, table = self.pipeline.find_table(table_name)
        return {
            "entries": table.num_entries,       # type: ignore[attr-defined]
            "hits": table.hits,                 # type: ignore[attr-defined]
            "misses": table.misses,             # type: ignore[attr-defined]
        }

    # -- writes ------------------------------------------------------------
    def _apply_one(self, op: WriteOp) -> None:
        """Apply one op (no rollback bookkeeping: :meth:`write` restores
        whole-table snapshots on failure)."""
        stage, table = self.pipeline.find_table(op.table)
        if op.op is OpType.INSERT:
            stage.resources.charge_entries(op.table, 1)
            table.insert(op.entry)  # type: ignore[attr-defined]
            return
        if op.op is OpType.DELETE:
            table.delete(op.entry)  # type: ignore[attr-defined]
            stage.resources.refund_entries(op.table, 1)
            return
        if op.op is OpType.MODIFY:
            if op.replacement is None:
                raise DataPlaneError("MODIFY needs a replacement entry")
            table.delete(op.entry)  # type: ignore[attr-defined]
            table.insert(op.replacement)  # type: ignore[attr-defined]
            return
        raise DataPlaneError(f"unhandled op {op.op}")  # pragma: no cover

    def write(self, ops: list[WriteOp]) -> WriteResult:
        """Apply a batch atomically; on any failure undo what was applied
        and report the error.

        Rollback restores per-table *snapshots* rather than replaying
        inverse ops: re-inserting a deleted entry would append it at the
        end of the table, silently changing insertion-order tie-breaks
        between equal-priority overlapping entries.  The snapshot restore
        rebuilds each touched table (and its lookup index) exactly as it
        was before the batch, resource reservations included.

        With a :attr:`tracer` attached each batch is timed as a
        ``runtime.write`` span annotated with op and applied counts.
        """
        if self.tracer is None:
            return self._write(ops)
        with self.tracer.span(
            "runtime.write", switch=self.pipeline.name, ops=len(ops)
        ) as span:
            result = self._write(ops)
            span.set(applied=result.applied, ok=result.ok)
            return result

    def _write(self, ops: list[WriteOp]) -> WriteResult:
        """The untraced batch application :meth:`write` wraps."""
        result = WriteResult()
        self.batches_total += 1
        #: table name -> (stage, table, entries snapshot, reservation state,
        #: pre-batch generation), captured on first touch.
        touched: dict[str, tuple] = {}
        #: table name -> entries written (insert/delete targets and MODIFY
        #: replacements), reported to an attached fast-path engine so it
        #: can invalidate exactly the affected tenants' compiled plans.
        written: dict[str, list[TableEntry]] = {}
        for op in ops:
            try:
                if op.table not in touched:
                    stage, table = self.pipeline.find_table(op.table)
                    touched[op.table] = (
                        stage,
                        table,
                        table.snapshot(),  # type: ignore[attr-defined]
                        stage.resources.reservation_state(op.table),
                        getattr(table, "generation", 0),
                    )
                self._apply_one(op)
            except (DataPlaneError, ResourceExhaustedError) as exc:
                result.errors.append(f"{op.op.value} {op.table}: {exc}")
                for name, (stage, table, entries, reservation, pre_gen) in touched.items():
                    table.restore(entries)  # type: ignore[attr-defined]
                    stage.resources.restore_reservation_state(name, reservation)
                engine = getattr(self.pipeline, "fastpath", None)
                if engine is not None:
                    # The rollback restored the snapshots: content is back
                    # to the pre-batch state, only generations moved.
                    for name, (stage, table, entries, reservation, pre_gen) in touched.items():
                        engine.notify_reverted(
                            table, pre_gen, getattr(table, "generation", 0)
                        )
                result.applied = 0
                return result
            batch = written.setdefault(op.table, [])
            batch.append(op.entry)
            if op.replacement is not None:
                batch.append(op.replacement)
            result.applied += 1
            self.writes_total += 1
        engine = getattr(self.pipeline, "fastpath", None)
        if engine is not None:
            for name, entries in written.items():
                _stage, table, _snap, _reservation, pre_gen = touched[name]
                engine.notify_write(
                    table, entries, pre_gen, getattr(table, "generation", 0)
                )
        return result

    # -- conveniences ------------------------------------------------------
    def insert(self, table: str, entry: TableEntry) -> WriteResult:
        """Single-op INSERT batch."""
        return self.write([WriteOp(OpType.INSERT, table, entry)])

    def delete(self, table: str, entry: TableEntry) -> WriteResult:
        """Single-op DELETE batch."""
        return self.write([WriteOp(OpType.DELETE, table, entry)])

    def modify(self, table: str, entry: TableEntry, replacement: TableEntry) -> WriteResult:
        """Single-op MODIFY batch (same match, new action/params)."""
        return self.write([WriteOp(OpType.MODIFY, table, entry, replacement=replacement)])
