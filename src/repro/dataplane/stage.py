"""MAU stages.

A :class:`Stage` hosts the physical NF tables installed on it and owns the
stage's SRAM (:class:`~repro.dataplane.resources.StageResources`).  Applying
a stage to a packet runs every resident table in installation order; a table
whose key does not match falls through to its default ``no_op`` — exactly the
paper's "default rule: not processing packets but forwarding them to the
next stage".
"""

from __future__ import annotations

from repro.dataplane.action import ActionRegistry
from repro.dataplane.packet import Packet
from repro.dataplane.resources import StageResources
from repro.dataplane.table import MatchActionTable
from repro.errors import DataPlaneError


class Stage:
    """One physical pipeline stage (MAU)."""

    def __init__(
        self,
        index: int,
        resources: StageResources | None = None,
        owner=None,
    ) -> None:
        if index < 0:
            raise DataPlaneError("stage index must be >= 0")
        self.index = index
        self.resources = resources if resources is not None else StageResources()
        self.tables: list[MatchActionTable] = []
        #: Owning :class:`~repro.dataplane.pipeline.SwitchPipeline` (when
        #: any): table install/remove bumps its ``structure_generation`` so
        #: compiled fast-path plans see the pipeline's table walk changed.
        self.owner = owner

    def _bump_structure(self) -> None:
        if self.owner is not None:
            self.owner.structure_generation += 1

    def install_table(self, table: MatchActionTable, reserve_blocks: int = 1) -> None:
        """Install a physical NF's table, reserving its boot-time block(s)."""
        if any(t.name == table.name for t in self.tables):
            raise DataPlaneError(
                f"stage {self.index}: table {table.name!r} already installed"
            )
        self.resources.reserve(table.name, blocks=reserve_blocks)
        self.tables.append(table)
        self._bump_structure()

    def remove_table(self, name: str) -> MatchActionTable:
        """Uninstall a physical NF (reconfiguration), releasing its blocks."""
        for i, table in enumerate(self.tables):
            if table.name == name:
                self.resources.release(name)
                self._bump_structure()
                return self.tables.pop(i)
        raise DataPlaneError(f"stage {self.index}: no table named {name!r}")

    def table(self, name: str) -> MatchActionTable:
        """The resident table called ``name``; raises if absent."""
        for t in self.tables:
            if t.name == name:
                return t
        raise DataPlaneError(f"stage {self.index}: no table named {name!r}")

    def apply(
        self,
        packet: Packet,
        actions: ActionRegistry,
        pass_id: int,
        trace: list[tuple[int, int, str, str]] | None = None,
        resolved: dict | None = None,
        card=None,
    ) -> None:
        """Run the stage's tables against ``packet`` (stops if dropped).

        ``resolved`` is an optional name -> :class:`ActionCall` memo shared
        across a batch (:meth:`SwitchPipeline.process_batch`): registry
        resolution happens once per distinct action instead of once per
        packet per table.

        ``card`` is an optional
        :class:`~repro.telemetry.postcards.PacketPostcard` under
        construction: each table application appends one hop (stage, table,
        hit/miss, matched rule id, action) — the INT-style telemetry hook
        the pipeline arms for traced or sampled packets.
        """
        for table in self.tables:
            if packet.dropped:
                return
            entry, action_name, params = table.lookup(packet)
            if resolved is None:
                call = actions.resolve(action_name)
            else:
                call = resolved.get(action_name)
                if call is None:
                    call = actions.resolve(action_name)
                    resolved[action_name] = call
            call.fn(packet, params)
            if trace is not None:
                trace.append((pass_id, self.index, table.name, action_name))
            if card is not None:
                card.add_hop(
                    pass_id,
                    self.index,
                    table.name,
                    action_name,
                    hit=entry is not None,
                    rule_id=None if entry is None else table.entry_id(entry),
                )

    def __repr__(self) -> str:
        return (
            f"Stage({self.index}, tables={[t.name for t in self.tables]}, "
            f"blocks={self.resources.blocks_used}/{self.resources.blocks_total})"
        )
