"""The table lookup engine: match semantics and the indexed fast path.

This module owns the two halves of rule matching:

* the *reference semantics* — :class:`MatchKind`, :class:`MatchField` and
  :func:`_match_one`, the per-field predicates every lookup path agrees on;
* :class:`LookupIndex`, a tuple-space-search style index that answers
  "which installed entry wins for this packet" in time proportional to the
  number of distinct match *shapes* rather than the number of entries.

Real switch ASICs classify at line rate with TCAM/hash units; a Python
simulator that linearly scans every resident entry per packet per stage per
pass cannot approximate that under the paper's multi-tenant scale, where one
physical table holds the rules of thousands of tenants prefixed with
``(tenant_id, pass_id)`` exact fields (Fig. 3).  The index exploits exactly
that structure:

* Entries without range specs are grouped by **shape** — which key fields
  they constrain and with what mask: an exact field contributes its value,
  an LPM field its ``(prefix & mask)`` under the prefix mask, a ternary
  field its ``(want & mask)``.  Within a shape, a single dict probe on the
  packet's masked field values yields *only fully matching* entries (masked
  equality is the match predicate for all three kinds), kept sorted by the
  table's ranking so the bucket head is the bucket's winner.  Per-tenant
  rules all share a handful of shapes, so a million-entry table still costs
  a few dict probes.
* Entries with range specs (and only those) form the **residue**: a list
  sorted by rank, scanned with early exit — the scan stops as soon as the
  best indexed candidate already outranks every remaining residue entry.

The ranking is identical to the reference linear scan: priority descending,
then total LPM prefix length descending (standard P4 longest-prefix
semantics), then insertion order.  ``order`` is a monotonically increasing
sequence number assigned by the owning table; the index never invents
tie-breaks of its own, which is what lets the differential harness
(``tests/dataplane/test_differential_lookup.py``) assert bit-for-bit
agreement with the linear oracle.
"""

from __future__ import annotations

import enum
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Sequence

from repro.dataplane.packet import MATCHABLE_FIELDS, Packet
from repro.errors import DataPlaneError


class MatchKind(enum.Enum):
    """P4 match kinds supported by the MAU model."""

    EXACT = "exact"
    TERNARY = "ternary"  # value/mask
    LPM = "lpm"          # value/prefix_len over 32-bit fields
    RANGE = "range"      # [lo, hi] inclusive


@dataclass(frozen=True)
class MatchField:
    """One component of a table's match key."""

    name: str
    kind: MatchKind

    def __post_init__(self) -> None:
        if self.name not in MATCHABLE_FIELDS:
            raise DataPlaneError(f"unknown match field {self.name!r}")


def validate_spec(kind: MatchKind, spec) -> None:
    """Reject a malformed match spec at install time.

    Lookup is the per-packet hot path; a bad spec must fail when the rule is
    written (the control plane's mistake), not explode mid-traffic.  ``None``
    wildcards any kind and is always valid.
    """
    if spec is None:
        return
    if kind is MatchKind.EXACT:
        try:
            int(spec)
        except (TypeError, ValueError):
            raise DataPlaneError(
                f"exact spec must be an integer, got {spec!r}"
            ) from None
        return
    try:
        a, b = spec
        a, b = int(a), int(b)
    except (TypeError, ValueError):
        raise DataPlaneError(
            f"{kind.value} spec must be a pair of integers, got {spec!r}"
        ) from None
    if kind is MatchKind.LPM and not 0 <= b <= 32:
        raise DataPlaneError(f"LPM prefix length {b} outside [0, 32]")


def _match_one(kind: MatchKind, spec, value: int) -> bool:
    """Does ``value`` satisfy one field's match spec?

    Spec encodings: EXACT -> int (or None = wildcard); TERNARY ->
    ``(value, mask)``; LPM -> ``(prefix, prefix_len)``; RANGE -> ``(lo, hi)``.
    ``None`` wildcards any kind.  Specs are validated once at insert time
    (:func:`validate_spec`), so this predicate stays branch-light.
    """
    if spec is None:
        return True
    if kind is MatchKind.EXACT:
        return value == int(spec)
    if kind is MatchKind.TERNARY:
        want, mask = spec
        return (value & mask) == (want & mask)
    if kind is MatchKind.LPM:
        prefix, length = spec
        if length == 0:
            return True
        mask = ((1 << length) - 1) << (32 - length)
        return (value & mask) == (prefix & mask)
    if kind is MatchKind.RANGE:
        lo, hi = spec
        return lo <= value <= hi
    raise DataPlaneError(f"unhandled match kind {kind}")  # pragma: no cover


class _ShapeGroup:
    """All indexed entries sharing one match shape.

    ``extractors`` holds ``(field_position, mask)`` pairs for the fields the
    shape constrains — ``mask is None`` means exact (compare the raw value).
    ``buckets`` maps the tuple of masked packet values to the entries whose
    masked specs equal it, sorted ascending by sort key (best rank first).
    """

    __slots__ = ("extractors", "buckets")

    def __init__(self, extractors: tuple) -> None:
        self.extractors = extractors
        self.buckets: dict[tuple, list] = {}


class LookupIndex:
    """Incremental fast-path index over one table's entries.

    The owning table calls :meth:`add` / :meth:`remove` with the entry's
    insertion-order sequence number on every mutation and :meth:`lookup` per
    packet; :meth:`clear` supports wholesale rebuilds (rollback restore).
    """

    def __init__(self, key: Sequence[MatchField]) -> None:
        self.key = tuple(key)
        #: shape (= extractor tuple) -> group of hash buckets.
        self._groups: dict[tuple, _ShapeGroup] = {}
        #: Range-constrained entries as ``(sortkey, entry)``, rank-sorted.
        self._residue: list = []

    # -- classification ----------------------------------------------------
    def _classify(self, entry) -> tuple[tuple, tuple] | None:
        """``(extractors, masked_values)`` for a hashable entry, ``None`` if
        the entry carries a range spec and must live in the residue."""
        extractors = []
        values = []
        for pos, f in enumerate(self.key):
            spec = entry.match.get(f.name)
            if spec is None:
                continue
            if f.kind is MatchKind.EXACT:
                extractors.append((pos, None))
                values.append(int(spec))
            elif f.kind is MatchKind.LPM:
                prefix, length = spec
                if length == 0:
                    continue  # /0 matches everything: a wildcard
                mask = ((1 << length) - 1) << (32 - length)
                extractors.append((pos, mask))
                values.append(prefix & mask)
            elif f.kind is MatchKind.TERNARY:
                want, mask = spec
                if mask == 0:
                    continue  # mask 0 matches everything: a wildcard
                extractors.append((pos, mask))
                values.append(want & mask)
            else:  # RANGE: not expressible as masked equality
                return None
        return tuple(extractors), tuple(values)

    def _lpm_specificity(self, entry) -> int:
        total = 0
        for f in self.key:
            if f.kind is MatchKind.LPM:
                spec = entry.match.get(f.name)
                if spec is not None:
                    total += int(spec[1])
        return total

    def _sortkey(self, entry, order: int) -> tuple[int, int, int]:
        """Ascending sort key mirroring the rank ``(priority desc, LPM
        specificity desc, insertion order asc)``; unique per ``order``."""
        return (-int(entry.priority), -self._lpm_specificity(entry), order)

    # -- maintenance -------------------------------------------------------
    def add(self, entry, order: int) -> None:
        """Index ``entry`` installed with sequence number ``order``."""
        item = (self._sortkey(entry, order), entry)
        classified = self._classify(entry)
        if classified is None:
            insort(self._residue, item)
            return
        extractors, values = classified
        group = self._groups.get(extractors)
        if group is None:
            group = _ShapeGroup(extractors)
            self._groups[extractors] = group
        insort(group.buckets.setdefault(values, []), item)

    def remove(self, entry, order: int) -> None:
        """Un-index the entry previously added with ``order``."""
        sortkey = self._sortkey(entry, order)
        classified = self._classify(entry)
        if classified is None:
            self._del_from(self._residue, sortkey, entry)
            return
        extractors, values = classified
        group = self._groups.get(extractors)
        bucket = group.buckets.get(values) if group is not None else None
        if bucket is None:
            raise DataPlaneError("index out of sync: entry not indexed")
        self._del_from(bucket, sortkey, entry)
        if not bucket:
            del group.buckets[values]
            if not group.buckets:
                del self._groups[extractors]

    @staticmethod
    def _del_from(items: list, sortkey: tuple, entry) -> None:
        i = bisect_left(items, (sortkey,))
        if i < len(items) and items[i][0] == sortkey and items[i][1] is entry:
            del items[i]
            return
        raise DataPlaneError("index out of sync: entry not indexed")

    def clear(self) -> None:
        """Drop every indexed entry (rebuild support)."""
        self._groups.clear()
        self._residue.clear()

    # -- lookup ------------------------------------------------------------
    def lookup(self, packet: Packet):
        """The winning entry for ``packet``, or ``None`` on a table miss.

        One dict probe per shape, then a rank-ordered residue scan that
        stops as soon as the indexed candidate outranks what's left.
        """
        values = [packet.get_field(f.name) for f in self.key]
        best_key = None
        best_entry = None
        for group in self._groups.values():
            probe = tuple(
                values[pos] if mask is None else values[pos] & mask
                for pos, mask in group.extractors
            )
            bucket = group.buckets.get(probe)
            if bucket:
                sortkey, entry = bucket[0]
                if best_key is None or sortkey < best_key:
                    best_key, best_entry = sortkey, entry
        for sortkey, entry in self._residue:
            if best_key is not None and sortkey >= best_key:
                break  # rank-sorted: nothing further can win
            ok = True
            for pos, f in enumerate(self.key):
                if not _match_one(f.kind, entry.match.get(f.name), values[pos]):
                    ok = False
                    break
            if ok:
                best_key, best_entry = sortkey, entry
                break  # first residue match is the best residue match
        return best_entry

    # -- introspection -----------------------------------------------------
    @property
    def num_shapes(self) -> int:
        return len(self._groups)

    @property
    def residue_size(self) -> int:
        return len(self._residue)

    def __len__(self) -> int:
        return len(self._residue) + sum(
            len(b) for g in self._groups.values() for b in g.buckets.values()
        )
