"""Calibrated ASIC performance model.

The functional pipeline decides *what* happens to packets; this model
supplies the *how fast*, calibrated to the paper's testbed numbers (§VI-B):

* 4-NF chain, one pass: **≈341 ns** average processing latency;
* three recirculations add **≈35 ns** total (the paper's key observation:
  latency tracks SFC complexity, not recirculation count, because each
  recirculated pass applies fewer NFs);
* throughput: the ASIC is never pps-bound at port speeds — a Tofino-class
  pipeline sustains billions of packets per second, so a 100 Gbps port
  saturates at every packet size (Fig. 4's flat SFP line).

Defaults: parser 70 ns + deparser 71 ns + 8 stages x 25 ns = 341 ns, and
11.7 ns per recirculation (3 x 11.7 ≈ 35 ns).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.core.spec import SwitchSpec
from repro.errors import DataPlaneError


@dataclass(frozen=True)
class AsicModel:
    """Latency/throughput model of the switching ASIC."""

    stages: int = 8
    parser_ns: float = 70.0
    deparser_ns: float = 71.0
    stage_ns: float = 25.0
    recirculation_ns: float = 11.7
    #: Aggregate pipeline packet rate (packets/s) — Tofino-class ASICs
    #: process a packet per clock per pipe (> 10^9 pps).
    pipeline_pps: float = 4.8e9
    #: Single-port line rate (the testbed's 100 Gbps ports).
    port_gbps: float = 100.0

    def __post_init__(self) -> None:
        if self.stages < 1:
            raise DataPlaneError("stages must be >= 1")
        if min(self.parser_ns, self.deparser_ns, self.stage_ns) < 0:
            raise DataPlaneError("latency components must be non-negative")

    @classmethod
    def from_spec(cls, spec: SwitchSpec) -> "AsicModel":
        return cls(
            stages=spec.stages,
            stage_ns=spec.stage_latency_ns,
            recirculation_ns=spec.recirculation_latency_ns,
        )

    # ------------------------------------------------------------------
    def latency_ns(self, passes: int = 1) -> float:
        """Processing latency of one packet making ``passes`` traversals."""
        if passes < 1:
            raise DataPlaneError("passes must be >= 1")
        return (
            self.parser_ns
            + self.deparser_ns
            + self.stages * self.stage_ns
            + (passes - 1) * self.recirculation_ns
        )

    # ------------------------------------------------------------------
    def max_pps(self, passes: int = 1) -> float:
        """Packet rate the pipeline sustains when each packet consumes
        ``passes`` slots (recirculated traffic competes with inbound)."""
        if passes < 1:
            raise DataPlaneError("passes must be >= 1")
        return self.pipeline_pps / passes

    def throughput_gbps(
        self, offered_gbps: float, packet_bytes: int, passes: int = 1
    ) -> float:
        """Achieved throughput for ``offered_gbps`` of ``packet_bytes``
        packets: bounded by the port line rate and (in principle) the
        pipeline's packet rate, which never binds at port speeds."""
        if offered_gbps < 0:
            raise DataPlaneError("offered load must be >= 0")
        offered_pps = units.gbps_to_pps(offered_gbps, packet_bytes)
        achieved_pps = min(offered_pps, self.max_pps(passes))
        return min(
            units.pps_to_gbps(achieved_pps, packet_bytes),
            offered_gbps,
            self.port_gbps,
        )
