"""Per-stage SRAM resource accounting.

A stage owns ``blocks_total`` uniform SRAM blocks of ``entries_per_block``
rule entries each (the paper's ``B`` blocks of ``E/b`` entries).  Physical
NFs reserve whole blocks; tenant rules consume entries inside the owning
NF's reservation, growing it block-by-block.  This mirrors the consolidated
memory accounting of Eq. (24): all tenants' rules for one NF share its
blocks, so fragmentation only occurs at NF granularity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ResourceExhaustedError


@dataclass
class Reservation:
    """One physical NF's slice of a stage's SRAM."""

    owner: str
    blocks: int = 1
    entries_used: int = 0


@dataclass
class StageResources:
    """SRAM block allocator for one MAU stage."""

    blocks_total: int = 20
    entries_per_block: int = 1000
    reservations: dict[str, Reservation] = field(default_factory=dict)

    @property
    def blocks_used(self) -> int:
        return sum(r.blocks for r in self.reservations.values())

    @property
    def blocks_free(self) -> int:
        return self.blocks_total - self.blocks_used

    @property
    def entries_used(self) -> int:
        return sum(r.entries_used for r in self.reservations.values())

    @property
    def entry_utilization(self) -> float:
        used_blocks = self.blocks_used
        if used_blocks == 0:
            return 0.0
        return self.entries_used / (used_blocks * self.entries_per_block)

    def reserve(self, owner: str, blocks: int = 1) -> Reservation:
        """Reserve the initial block(s) for a physical NF at boot."""
        if owner in self.reservations:
            raise ResourceExhaustedError(f"{owner!r} already holds a reservation")
        if blocks < 1:
            raise ResourceExhaustedError("must reserve at least one block")
        if blocks > self.blocks_free:
            raise ResourceExhaustedError(
                f"stage has {self.blocks_free} free blocks, {owner!r} wants {blocks}"
            )
        reservation = Reservation(owner=owner, blocks=blocks)
        self.reservations[owner] = reservation
        return reservation

    def release(self, owner: str) -> None:
        """Return a physical NF's blocks (switch reconfiguration only)."""
        if owner not in self.reservations:
            raise ResourceExhaustedError(f"no reservation for {owner!r}")
        del self.reservations[owner]

    def reservation_state(self, owner: str) -> tuple[int, int]:
        """``(entries_used, blocks)`` snapshot of ``owner``'s reservation —
        rollback support for atomic batch writes."""
        reservation = self.reservations.get(owner)
        if reservation is None:
            raise ResourceExhaustedError(f"no reservation for {owner!r}")
        return (reservation.entries_used, reservation.blocks)

    def restore_reservation_state(self, owner: str, state: tuple[int, int]) -> None:
        """Reset ``owner``'s reservation to a prior :meth:`reservation_state`
        snapshot.  No feasibility check: the snapshot was feasible when
        taken, and a rollback restores every touched reservation."""
        reservation = self.reservations.get(owner)
        if reservation is None:
            raise ResourceExhaustedError(f"no reservation for {owner!r}")
        reservation.entries_used, reservation.blocks = state

    def charge_entries(self, owner: str, count: int) -> None:
        """Account ``count`` new rule entries to ``owner``, growing its
        reservation by whole blocks as needed."""
        reservation = self.reservations.get(owner)
        if reservation is None:
            raise ResourceExhaustedError(f"no reservation for {owner!r}")
        if count < 0:
            raise ResourceExhaustedError(f"cannot charge {count} entries")
        new_entries = reservation.entries_used + count
        needed_blocks = max(1, math.ceil(new_entries / self.entries_per_block))
        growth = needed_blocks - reservation.blocks
        if growth > self.blocks_free:
            raise ResourceExhaustedError(
                f"{owner!r} needs {growth} more blocks, stage has {self.blocks_free}"
            )
        reservation.blocks = max(reservation.blocks, needed_blocks)
        reservation.entries_used = new_entries

    def refund_entries(self, owner: str, count: int) -> None:
        """Release ``count`` entries (tenant departure); shrinks the
        reservation down to the blocks still needed (min 1: the physical NF
        keeps its boot-time block)."""
        reservation = self.reservations.get(owner)
        if reservation is None:
            raise ResourceExhaustedError(f"no reservation for {owner!r}")
        if count < 0 or count > reservation.entries_used:
            raise ResourceExhaustedError(
                f"cannot refund {count} of {reservation.entries_used} entries"
            )
        reservation.entries_used -= count
        reservation.blocks = max(
            1, math.ceil(reservation.entries_used / self.entries_per_block)
        )
