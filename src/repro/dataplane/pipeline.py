"""The multi-pass switch pipeline.

Processing semantics (paper §IV): a packet enters at pass 1 and traverses all
stages in order; if any matched rule carried the REC argument, the packet is
recirculated — ``pass_id`` is incremented and the packet re-enters at stage
0 — up to ``max_passes`` total traversals.  Virtualized rules match on
``(tenant_id, pass_id)``, so each pass executes a different slice of the
tenant's folded SFC.
"""

from __future__ import annotations

from repro.core.spec import SwitchSpec
from repro.dataplane.action import ActionRegistry, default_actions
from repro.dataplane.latency import AsicModel
from repro.dataplane.packet import Packet, PacketResult
from repro.dataplane.resources import StageResources
from repro.dataplane.stage import Stage
from repro.errors import DataPlaneError
from repro.telemetry.postcards import PacketPostcard, PostcardCollector


class SwitchPipeline:
    """A programmable ingress pipeline of ``num_stages`` MAUs."""

    def __init__(
        self,
        spec: SwitchSpec | None = None,
        max_passes: int = 4,
        actions: ActionRegistry | None = None,
        latency_model: AsicModel | None = None,
        name: str = "switch",
    ) -> None:
        self.spec = spec if spec is not None else SwitchSpec()
        #: Label distinguishing this pipeline when several run side by side
        #: (the fabric orchestrator instantiates one per fabric switch).
        self.name = name
        if max_passes < 1:
            raise DataPlaneError("max_passes must be >= 1")
        self.max_passes = max_passes
        self.actions = actions if actions is not None else default_actions()
        self.latency_model = (
            latency_model if latency_model is not None else AsicModel.from_spec(self.spec)
        )
        #: Bumped whenever the set (or order) of resident tables changes
        #: anywhere in the pipeline — the coarse invalidation key compiled
        #: fast-path plans check before trusting their step walk.
        self.structure_generation = 0
        self.stages = [
            Stage(
                index=s,
                resources=StageResources(
                    blocks_total=self.spec.blocks_per_stage,
                    entries_per_block=self.spec.entries_per_block,
                ),
                owner=self,
            )
            for s in range(self.spec.stages)
        ]
        #: Packets that exhausted max_passes while still asking to recirculate.
        self.recirculation_overflows = 0
        #: Opt-in INT-style telemetry: attach a
        #: :class:`~repro.telemetry.postcards.PostcardCollector` and every
        #: 1-in-N packet accumulates a per-hop postcard (``None`` = off; the
        #: cost of the disabled hook is one branch per packet).
        self.telemetry: PostcardCollector | None = None
        #: Opt-in compiled fast path: attach a
        #: :class:`~repro.fastpath.engine.FastPathEngine` (via
        #: ``FastPathEngine.attach(pipeline)``) and :meth:`process_batch`
        #: executes per-tenant compiled plans on columnar kernels, with the
        #: interpreter below kept as the differential oracle (``None`` =
        #: every batch takes the interpreted path).
        self.fastpath = None

    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def stage(self, index: int) -> Stage:
        """The MAU at ``index``; raises on out-of-range indices."""
        if not 0 <= index < self.num_stages:
            raise DataPlaneError(f"stage index {index} outside [0, {self.num_stages})")
        return self.stages[index]

    def find_table(self, name: str) -> tuple[Stage, "object"]:
        """Locate a table by name anywhere in the pipeline."""
        for stage in self.stages:
            for table in stage.tables:
                if table.name == name:
                    return stage, table
        raise DataPlaneError(f"no table named {name!r} in the pipeline")

    # ------------------------------------------------------------------
    def process(
        self,
        packet: Packet,
        trace: bool = False,
        _resolved: dict | None = None,
        _sampled: bool | None = None,
    ) -> PacketResult:
        """Push one packet through the pipeline (with recirculation).

        ``trace=True`` forces a full per-hop postcard (the legacy trace
        rows on the result are derived from it); independently, an attached
        :attr:`telemetry` collector samples 1-in-N packets into postcards
        of its own.  Either way the card rides on ``result.postcard``.

        ``_sampled`` pre-decides the telemetry sampling draw: the fast-path
        engine reserves the collector's counter range for a whole batch up
        front (one lock instead of one per packet) and routes the sampled
        packets here with their decision already made — passing it skips
        the per-packet ``should_sample`` counter advance.
        """
        collector = self.telemetry
        if _sampled is None:
            sampled = collector is not None and collector.should_sample()
        else:
            sampled = _sampled
        card: PacketPostcard | None = None
        if trace or sampled:
            card = PacketPostcard(
                switch=self.name,
                tenant_id=packet.tenant_id,
                stage_ns=self.latency_model.stage_ns,
            )
        passes = 0
        while True:
            passes += 1
            packet.recirculate = False
            for stage in self.stages:
                if packet.dropped:
                    break
                stage.apply(
                    packet, self.actions, packet.pass_id,
                    resolved=_resolved, card=card,
                )
            if packet.dropped or not packet.recirculate:
                break
            if passes >= self.max_passes:
                self.recirculation_overflows += 1
                break
            # End-of-pipeline recirculation: REC consumed, pass counter bumped.
            packet.pass_id += 1
        result = PacketResult(packet=packet, passes=passes)
        result.latency_ns = self.latency_model.latency_ns(passes=passes)
        if card is not None:
            card.finish(
                passes=passes, latency_ns=result.latency_ns,
                dropped=packet.dropped,
            )
            result.postcard = card
            if trace:
                result.trace = card.trace_rows()
            if sampled:
                collector.record(card)
        return result

    def process_batch(self, packets: list[Packet], trace: bool = False) -> list[PacketResult]:
        """Process packets independently (the functional model has no
        cross-packet contention; throughput is the latency model's job).

        With a :attr:`fastpath` engine attached the batch executes on
        per-tenant compiled plans (columnar kernels); otherwise — and for
        any packet the engine cannot or must not compile — the interpreted
        walk below runs, making it the always-available differential
        oracle for the compiled path.
        """
        if self.fastpath is not None:
            return self.fastpath.process_batch(packets, trace=trace)
        return self.process_batch_interpreted(packets, trace=trace)

    def process_batch_interpreted(
        self, packets: list[Packet], trace: bool = False
    ) -> list[PacketResult]:
        """The reference per-packet interpreter over a batch (the oracle
        the compiled fast path is differentially tested against).

        Batch fast path: one action-resolution memo is shared across the
        whole batch, so each distinct action name hits the registry once.
        """
        resolved: dict = {}
        return [self.process(p, trace=trace, _resolved=resolved) for p in packets]

    # ------------------------------------------------------------------
    def total_entries(self) -> int:
        """Rule entries installed across all stages' tables."""
        return sum(t.num_entries for s in self.stages for t in s.tables)

    def blocks_used_by_stage(self) -> list[int]:
        """SRAM blocks in use per stage (boot reserves + rule growth)."""
        return [s.resources.blocks_used for s in self.stages]

    def __repr__(self) -> str:
        return (
            f"SwitchPipeline({self.name!r}, stages={self.num_stages}, "
            f"max_passes={self.max_passes}, "
            f"tables={sum(len(s.tables) for s in self.stages)})"
        )
