"""Stateful switch primitives: register arrays, counters, and meters.

Programmable switches keep per-flow state in SRAM register arrays read and
written by the ALUs (§II-A "memory to store persistent states"; §VII "NF
states are stored in SRAM together with MATs").  This module models the
three P4 externs the NF library needs:

* :class:`RegisterArray` — fixed-size array of bounded integers with
  read/modify/write,
* :class:`CounterArray` — packet/byte counters,
* :class:`MeterArray` — two-rate token buckets driven by packet timestamps
  (the real rate limiter, replacing the simplified scratch-space bucket).

Sizes are fixed at allocation time and charged against the owning stage's
SRAM (§VII: "NF states whose size should be fixed as well as MATs before
compilation").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import DataPlaneError


class RegisterArray:
    """A P4 ``register`` extern: N cells of ``width_bits`` unsigned ints."""

    def __init__(self, name: str, size: int, width_bits: int = 32) -> None:
        if size < 1:
            raise DataPlaneError(f"register {name!r}: size must be >= 1")
        if not 1 <= width_bits <= 64:
            raise DataPlaneError(f"register {name!r}: width must be in [1, 64]")
        self.name = name
        self.width_bits = width_bits
        self._mask = (1 << width_bits) - 1
        self._cells = np.zeros(size, dtype=np.uint64)

    @property
    def size(self) -> int:
        return int(self._cells.shape[0])

    @property
    def total_bits(self) -> int:
        """SRAM footprint, for resource accounting."""
        return self.size * self.width_bits

    def _check(self, index: int) -> None:
        if not 0 <= index < self.size:
            raise DataPlaneError(
                f"register {self.name!r}: index {index} outside [0, {self.size})"
            )

    def read(self, index: int) -> int:
        """Current value of cell ``index``."""
        self._check(index)
        return int(self._cells[index])

    def write(self, index: int, value: int) -> None:
        """Store ``value`` (masked to the register width) at ``index``."""
        self._check(index)
        self._cells[index] = np.uint64(value & self._mask)

    def read_modify_write(self, index: int, fn) -> int:
        """Atomic RMW as a single-stage ALU would do; returns the new value."""
        self._check(index)
        new = fn(int(self._cells[index])) & self._mask
        self._cells[index] = np.uint64(new)
        return new

    def clear(self) -> None:
        """Zero every cell (switch reset)."""
        self._cells[:] = 0


class CounterArray:
    """A P4 ``counter`` extern: per-index packet and byte counts."""

    def __init__(self, name: str, size: int) -> None:
        if size < 1:
            raise DataPlaneError(f"counter {name!r}: size must be >= 1")
        self.name = name
        self.packets = np.zeros(size, dtype=np.int64)
        self.bytes = np.zeros(size, dtype=np.int64)

    @property
    def size(self) -> int:
        return int(self.packets.shape[0])

    def count(self, index: int, size_bytes: int) -> None:
        """Charge one packet of ``size_bytes`` to slot ``index``."""
        if not 0 <= index < self.size:
            raise DataPlaneError(
                f"counter {self.name!r}: index {index} outside [0, {self.size})"
            )
        self.packets[index] += 1
        self.bytes[index] += size_bytes

    def read(self, index: int) -> tuple[int, int]:
        """``(packets, bytes)`` accumulated at slot ``index``."""
        if not 0 <= index < self.size:
            raise DataPlaneError(
                f"counter {self.name!r}: index {index} outside [0, {self.size})"
            )
        return int(self.packets[index]), int(self.bytes[index])


class MeterColor(enum.Enum):
    GREEN = "green"
    YELLOW = "yellow"
    RED = "red"


@dataclass
class _Bucket:
    tokens_c: float  # committed bucket
    tokens_p: float  # peak bucket
    last_ns: float


class MeterArray:
    """A P4 ``meter`` extern: srTCM-style two-bucket coloring per index.

    ``execute`` charges ``size_bytes`` at packet timestamp ``now_ns`` and
    returns GREEN (within committed rate), YELLOW (within peak rate) or RED
    (exceeds peak; the caller usually drops).
    """

    def __init__(
        self,
        name: str,
        size: int,
        committed_bps: float,
        peak_bps: float | None = None,
        burst_bytes: float = 16_000.0,
    ) -> None:
        if size < 1:
            raise DataPlaneError(f"meter {name!r}: size must be >= 1")
        if committed_bps <= 0:
            raise DataPlaneError(f"meter {name!r}: committed rate must be positive")
        peak_bps = peak_bps if peak_bps is not None else 2 * committed_bps
        if peak_bps < committed_bps:
            raise DataPlaneError(f"meter {name!r}: peak rate below committed rate")
        self.name = name
        self.committed_Bps = committed_bps / 8.0
        self.peak_Bps = peak_bps / 8.0
        self.burst_bytes = float(burst_bytes)
        self._buckets = [
            _Bucket(tokens_c=self.burst_bytes, tokens_p=self.burst_bytes, last_ns=0.0)
            for _ in range(size)
        ]

    @property
    def size(self) -> int:
        return len(self._buckets)

    def execute(self, index: int, size_bytes: int, now_ns: float) -> MeterColor:
        """Charge a packet at time ``now_ns`` and return its color."""
        if not 0 <= index < self.size:
            raise DataPlaneError(
                f"meter {self.name!r}: index {index} outside [0, {self.size})"
            )
        bucket = self._buckets[index]
        if now_ns < bucket.last_ns:
            raise DataPlaneError(
                f"meter {self.name!r}: time went backwards "
                f"({now_ns} < {bucket.last_ns})"
            )
        elapsed_s = (now_ns - bucket.last_ns) / 1e9
        bucket.tokens_c = min(
            self.burst_bytes, bucket.tokens_c + elapsed_s * self.committed_Bps
        )
        bucket.tokens_p = min(
            self.burst_bytes, bucket.tokens_p + elapsed_s * self.peak_Bps
        )
        bucket.last_ns = now_ns
        if bucket.tokens_p < size_bytes:
            return MeterColor.RED
        bucket.tokens_p -= size_bytes
        if bucket.tokens_c < size_bytes:
            return MeterColor.YELLOW
        bucket.tokens_c -= size_bytes
        return MeterColor.GREEN
