"""Action primitives.

Actions are the ALU side of a match-action unit.  Each is a named callable
``(packet, params) -> None`` mutating the packet; the registry maps the
action names used in :class:`~repro.dataplane.table.TableEntry` bindings to
implementations.

Every action accepts the SFP-specific ``rec`` parameter (the paper's REC
argument, §IV): when truthy and the packet is in its final stage, the
pipeline recirculates it and bumps ``pass_id``.  The flag is recorded here;
the pipeline consumes it at end of pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.dataplane.packet import Packet
from repro.errors import DataPlaneError

ActionFn = Callable[[Packet, Mapping[str, object]], None]


def _apply_rec(packet: Packet, params: Mapping[str, object]) -> None:
    """Honor the REC argument appended to every last-stage action (§IV)."""
    if params.get("rec"):
        packet.recirculate = True


def act_no_op(packet: Packet, params: Mapping[str, object]) -> None:
    """Default physical-NF rule: forward to the next stage unchanged."""
    _apply_rec(packet, params)


def act_drop(packet: Packet, params: Mapping[str, object]) -> None:
    """Firewall deny."""
    packet.dropped = True


def act_permit(packet: Packet, params: Mapping[str, object]) -> None:
    """Firewall allow (explicit, so ACL hit stats distinguish from miss)."""
    _apply_rec(packet, params)


def act_set_tenant(packet: Packet, params: Mapping[str, object]) -> None:
    """Controller indirection (§V-E): rewrite the packet's outer tenant ID to
    the epoch-qualified *wire* ID (param ``wire_id``) that the tenant's
    currently-active rule generation matches on.  The rewrite survives
    recirculation, so every pass of a chain executes the same generation."""
    packet.set_field("tenant_id", int(params["wire_id"]))
    _apply_rec(packet, params)


def act_set_dscp(packet: Packet, params: Mapping[str, object]) -> None:
    """Traffic classifier: mark the DSCP codepoint (param ``dscp``)."""
    packet.set_field("dscp", int(params["dscp"]))
    _apply_rec(packet, params)


def act_set_dst(packet: Packet, params: Mapping[str, object]) -> None:
    """Load balancer: rewrite destination to a backend (params ``dst_ip``,
    optional ``dst_port``)."""
    packet.set_field("dst_ip", int(params["dst_ip"]))
    if "dst_port" in params:
        packet.set_field("dst_port", int(params["dst_port"]))
    _apply_rec(packet, params)


def act_snat(packet: Packet, params: Mapping[str, object]) -> None:
    """NAT: rewrite source address/port (params ``src_ip``, opt ``src_port``)."""
    packet.set_field("src_ip", int(params["src_ip"]))
    if "src_port" in params:
        packet.set_field("src_port", int(params["src_port"]))
    _apply_rec(packet, params)


def act_forward(packet: Packet, params: Mapping[str, object]) -> None:
    """Router: choose the egress port (param ``port``)."""
    packet.egress_port = int(params["port"])
    _apply_rec(packet, params)


def act_rate_limit(packet: Packet, params: Mapping[str, object]) -> None:
    """Rate limiter: charge a token bucket kept in ``scratch`` (params
    ``bucket`` name, ``rate_pps`` refill, ``burst`` depth).  The functional
    model charges one token per packet and drops on empty."""
    bucket = str(params.get("bucket", "default"))
    burst = int(params.get("burst", 1000))
    buckets = packet.scratch.setdefault("_buckets", {})
    tokens = buckets.get(bucket, burst)
    if tokens <= 0:
        packet.dropped = True
        return
    buckets[bucket] = tokens - 1
    _apply_rec(packet, params)


def act_meter_police(packet: Packet, params: Mapping[str, object]) -> None:
    """Rate limiter backed by a real :class:`~repro.dataplane.registers.MeterArray`
    extern (params: ``meter`` — the array, ``index``).  RED packets drop;
    YELLOW packets are demoted to best-effort DSCP 0; GREEN passes."""
    from repro.dataplane.registers import MeterColor

    meter = params["meter"]
    index = int(params.get("index", 0))
    color = meter.execute(index, packet.size_bytes, packet.timestamp_ns)
    if color is MeterColor.RED:
        packet.dropped = True
        return
    if color is MeterColor.YELLOW:
        packet.set_field("dscp", 0)
    _apply_rec(packet, params)


def act_count_extern(packet: Packet, params: Mapping[str, object]) -> None:
    """Monitor backed by a :class:`~repro.dataplane.registers.CounterArray`
    extern (params: ``counter`` — the array, ``index``)."""
    counter = params["counter"]
    counter.count(int(params.get("index", 0)), packet.size_bytes)
    _apply_rec(packet, params)


def act_count(packet: Packet, params: Mapping[str, object]) -> None:
    """Monitor: bump a named counter in ``scratch`` (param ``counter``)."""
    counter = str(params.get("counter", "default"))
    counters = packet.scratch.setdefault("_counters", {})
    counters[counter] = counters.get(counter, 0) + 1
    _apply_rec(packet, params)


@dataclass(frozen=True)
class ActionCall:
    """A resolved action about to run (kept for tracing/debugging)."""

    name: str
    fn: ActionFn


class ActionRegistry:
    """Name -> implementation map the pipeline resolves actions through."""

    def __init__(self) -> None:
        self._actions: dict[str, ActionFn] = {}

    def register(self, name: str, fn: ActionFn) -> None:
        """Add an action implementation under a unique name."""
        if name in self._actions:
            raise DataPlaneError(f"action {name!r} already registered")
        self._actions[name] = fn

    def resolve(self, name: str) -> ActionCall:
        """Look up an action by name; raises on unknown actions."""
        fn = self._actions.get(name)
        if fn is None:
            raise DataPlaneError(f"unknown action {name!r}")
        return ActionCall(name=name, fn=fn)

    def names(self) -> list[str]:
        """All registered action names, sorted."""
        return sorted(self._actions)


def default_actions() -> ActionRegistry:
    """The registry with every built-in action installed."""
    registry = ActionRegistry()
    for name, fn in [
        ("no_op", act_no_op),
        ("drop", act_drop),
        ("permit", act_permit),
        ("set_tenant", act_set_tenant),
        ("set_dscp", act_set_dscp),
        ("set_dst", act_set_dst),
        ("snat", act_snat),
        ("forward", act_forward),
        ("rate_limit", act_rate_limit),
        ("meter_police", act_meter_police),
        ("count_extern", act_count_extern),
        ("count", act_count),
    ]:
        registry.register(name, fn)
    return registry
