"""Packets and per-packet metadata.

A :class:`Packet` is the parsed form the pipeline operates on: standard
5-tuple header fields plus the outer encapsulation's tenant ID (the paper
assumes tenant traffic is classifiable by VLAN/VxLAN/GRE headers, uniformly
called *tenant ID*), and the SFP metadata — most importantly ``pass_id``, the
recirculation pass counter every virtualized rule matches on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import DataPlaneError

if TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.postcards import PacketPostcard

#: Header/metadata fields a match key may reference.
MATCHABLE_FIELDS = (
    "tenant_id",
    "pass_id",
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "protocol",
    "dscp",
)


@dataclass
class Packet:
    """A parsed packet traversing the pipeline (mutable: actions rewrite it)."""

    tenant_id: int = 0
    src_ip: int = 0
    dst_ip: int = 0
    src_port: int = 0
    dst_port: int = 0
    protocol: int = 6
    dscp: int = 0
    size_bytes: int = 64
    #: Arrival time (ns) — drives time-dependent externs (meters).
    timestamp_ns: float = 0.0
    # --- SFP metadata -------------------------------------------------
    #: Recirculation pass, 1-based ("pass" in Fig. 3's match keys).
    pass_id: int = 1
    #: Set by a matched rule's REC argument; consumed at end of pipeline.
    recirculate: bool = False
    #: Set by a drop action; stops processing.
    dropped: bool = False
    #: Egress port chosen by forwarding actions (None = not yet routed).
    egress_port: int | None = None
    #: Free-form scratch for NF state interactions (e.g. LB pool pick).
    scratch: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise DataPlaneError(f"packet size must be positive, got {self.size_bytes}")
        if self.pass_id < 1:
            raise DataPlaneError("pass_id is 1-based")

    def get_field(self, name: str) -> int:
        """Read a matchable field by name (match-key evaluation)."""
        if name not in MATCHABLE_FIELDS:
            raise DataPlaneError(f"unknown match field {name!r}")
        return int(getattr(self, name))

    def set_field(self, name: str, value: int) -> None:
        """Write a header field (action execution).  Metadata fields that
        actions must not touch directly (pass_id) are rejected."""
        if name not in MATCHABLE_FIELDS or name == "pass_id":
            raise DataPlaneError(f"field {name!r} is not writable by actions")
        setattr(self, name, int(value))

    def five_tuple(self) -> tuple[int, int, int, int, int]:
        """The classic (src, dst, sport, dport, proto) flow key."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.protocol)


@dataclass
class PacketResult:
    """Outcome of pushing one packet through the pipeline."""

    packet: Packet
    #: Pipeline passes consumed (1 = no recirculation).
    passes: int
    #: ``(pass, stage, table, action)`` application trace, in order.
    trace: list[tuple[int, int, str, str]] = field(default_factory=list)
    #: Modeled processing latency (ns), filled by the latency model.
    latency_ns: float = 0.0
    #: The INT-style per-hop record, present when the packet was traced or
    #: sampled by the pipeline's :class:`PostcardCollector` (``trace`` above
    #: is derived from it — the legacy flag is a thin wrapper).
    postcard: "PacketPostcard | None" = None

    @property
    def delivered(self) -> bool:
        return not self.packet.dropped

    @property
    def recirculations(self) -> int:
        return self.passes - 1

    def applied_tables(self) -> list[str]:
        """Names of tables whose non-default actions fired, in order."""
        return [t for (_, _, t, a) in self.trace if a != "no_op"]
