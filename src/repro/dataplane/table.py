"""Match-action tables.

A :class:`MatchActionTable` models one P4 table as installed in an MAU:
a typed match key (exact / ternary / LPM / range per field), prioritized
entries, and a default action.  This is the unit the SFP data plane
virtualizes: physical NFs prepend ``tenant_id`` (exact) and ``pass_id``
(exact) fields to their match key so one physical table hosts many tenants'
logical NFs (Fig. 3).

Lookups run on an indexed fast path by default — a tuple-space-search index
(:mod:`repro.dataplane.lookup_index`) maintained incrementally through every
mutation — while :meth:`MatchActionTable.lookup_reference` keeps the naive
linear scan alive as the semantic oracle the differential test harness
checks the index against.  Construct with ``indexed=False`` to force a table
onto the reference path wholesale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.dataplane.lookup_index import (  # re-exported: historical home
    LookupIndex,
    MatchField,
    MatchKind,
    _match_one,
    validate_spec,
)
from repro.dataplane.packet import Packet
from repro.errors import DataPlaneError

__all__ = [
    "MatchActionTable",
    "MatchField",
    "MatchKind",
    "TableEntry",
    "validate_spec",
]


@dataclass(frozen=True)
class TableEntry:
    """One rule: per-field match specs, a priority, and an action binding.

    ``match`` maps field name -> spec (see
    :func:`~repro.dataplane.lookup_index._match_one`); fields omitted from
    the mapping are wildcards.  Higher ``priority`` wins; among equal
    priorities, for LPM fields the longest prefix wins (standard P4
    semantics), then insertion order.
    """

    match: Mapping[str, object]
    action: str
    params: Mapping[str, object] = field(default_factory=dict)
    priority: int = 0

    def lpm_specificity(self, key: Sequence[MatchField]) -> int:
        """Total LPM prefix length (tie-break for equal priorities)."""
        total = 0
        for f in key:
            spec = self.match.get(f.name)
            if f.kind is MatchKind.LPM and spec is not None:
                total += int(spec[1])
        return total


class MatchActionTable:
    """A physical table instance resident in one MAU stage."""

    def __init__(
        self,
        name: str,
        key: Sequence[MatchField],
        default_action: str = "no_op",
        default_params: Mapping[str, object] | None = None,
        max_entries: int | None = None,
        indexed: bool = True,
    ) -> None:
        if not name:
            raise DataPlaneError("table needs a name")
        names = [f.name for f in key]
        if len(set(names)) != len(names):
            raise DataPlaneError(f"table {name!r}: duplicate match fields {names}")
        self.name = name
        self.key = tuple(key)
        self.default_action = default_action
        self.default_params = dict(default_params or {})
        self.max_entries = max_entries
        self.entries: list[TableEntry] = []
        #: Lookup statistics (hit = entry matched, miss = default action).
        self.hits = 0
        self.misses = 0
        #: Whether lookups take the indexed fast path (False = oracle mode).
        self.indexed = bool(indexed)
        self._index: LookupIndex | None = (
            LookupIndex(self.key) if self.indexed else None
        )
        #: Monotonic rule-churn counter: bumped on every entry mutation
        #: (insert, delete, restore).  The compiled fast path
        #: (:mod:`repro.fastpath`) keys its per-tenant plan cache on this —
        #: a plan compiled against generation G is provably stale the
        #: moment the table reports G' != G.
        self.generation = 0
        #: Monotonic sequence assigned per insert; the rank tie-break.
        self._seq = 0
        #: id(entry) -> its live sequence numbers, oldest first (an entry
        #: object may legitimately be installed more than once).
        self._orders: dict[int, list[int]] = {}

    @property
    def key_fields(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.key)

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def _validate(self, entry: TableEntry) -> None:
        by_name = {f.name: f for f in self.key}
        for fname, spec in entry.match.items():
            f = by_name.get(fname)
            if f is None:
                raise DataPlaneError(
                    f"table {self.name!r}: entry matches unknown field {fname!r} "
                    f"(key = {self.key_fields})"
                )
            try:
                validate_spec(f.kind, spec)
            except DataPlaneError as exc:
                raise DataPlaneError(
                    f"table {self.name!r}: bad {fname!r} spec: {exc}"
                ) from None

    # -- mutation ----------------------------------------------------------
    def _append(self, entry: TableEntry) -> None:
        """Install a validated, capacity-checked entry (list + index)."""
        self.generation += 1
        self.entries.append(entry)
        order = self._seq
        self._seq += 1
        self._orders.setdefault(id(entry), []).append(order)
        if self._index is not None:
            self._index.add(entry, order)

    def _forget(self, entry: TableEntry) -> None:
        """Drop the oldest installed copy of ``entry`` from the index and
        order bookkeeping (the caller already removed it from ``entries``)."""
        self.generation += 1
        orders = self._orders[id(entry)]
        order = orders.pop(0)
        if not orders:
            del self._orders[id(entry)]
        if self._index is not None:
            self._index.remove(entry, order)

    def insert(self, entry: TableEntry) -> None:
        """Install a rule (P4Runtime INSERT).

        Malformed match specs are rejected here, once, rather than on the
        per-packet lookup path.
        """
        self._validate(entry)
        if self.max_entries is not None and self.num_entries >= self.max_entries:
            raise DataPlaneError(
                f"table {self.name!r} full ({self.max_entries} entries)"
            )
        self._append(entry)

    def insert_many(self, entries: Sequence[TableEntry]) -> None:
        """Install several rules in order, atomically: validation and the
        capacity check run up front, so a bad batch leaves the table (and
        its index) untouched."""
        entries = list(entries)
        for entry in entries:
            self._validate(entry)
        if (
            self.max_entries is not None
            and self.num_entries + len(entries) > self.max_entries
        ):
            raise DataPlaneError(
                f"table {self.name!r} full ({self.max_entries} entries)"
            )
        for entry in entries:
            self._append(entry)

    def delete(self, entry: TableEntry) -> None:
        """Remove a previously installed rule (P4Runtime DELETE).

        Prefers removing the *identical* object (what install bookkeeping
        holds), falling back to the first equal entry — so deleting a
        specific duplicate never disturbs the insertion-order tie-break of
        the entries before it.
        """
        for i, existing in enumerate(self.entries):
            if existing is entry:
                del self.entries[i]
                self._forget(existing)
                return
        for i, existing in enumerate(self.entries):
            if existing == entry:
                del self.entries[i]
                self._forget(existing)
                return
        raise DataPlaneError(f"table {self.name!r}: entry not present for delete")

    def delete_where(self, **match_fields: object) -> int:
        """Delete all entries whose match spec contains the given field
        values exactly (used for per-tenant teardown); returns the count."""
        kept: list[TableEntry] = []
        removed: list[TableEntry] = []
        for e in self.entries:
            if all(e.match.get(k) == v for k, v in match_fields.items()):
                removed.append(e)
            else:
                kept.append(e)
        self.entries = kept
        for e in removed:
            self._forget(e)
        return len(removed)

    # -- rollback support --------------------------------------------------
    def snapshot(self) -> tuple[TableEntry, ...]:
        """The installed entries, in order, for later :meth:`restore`."""
        return tuple(self.entries)

    def restore(self, snapshot: Iterable[TableEntry]) -> None:
        """Reset the table to a prior :meth:`snapshot`, rebuilding the index
        so insertion-order tie-breaks are exactly as captured.  Hit/miss
        counters are left alone (traffic really happened)."""
        self.generation += 1
        self.entries = []
        self._seq = 0
        self._orders = {}
        if self._index is not None:
            self._index.clear()
        for entry in snapshot:
            self._append(entry)

    def entry_id(self, entry: TableEntry) -> int | None:
        """The stable per-table rule id of an installed entry: its insert
        sequence number (oldest copy when installed more than once), the
        same order the lookup tie-break ranks on.  ``None`` when the entry
        is not installed — telemetry postcards record this as the matched
        rule id."""
        orders = self._orders.get(id(entry))
        return orders[0] if orders else None

    # -- lookup ------------------------------------------------------------
    def lookup(self, packet: Packet) -> tuple[TableEntry | None, str, Mapping[str, object]]:
        """Find the winning entry for ``packet``.

        Returns ``(entry, action, params)``; ``entry`` is ``None`` on a miss
        (default action).  Match semantics: all key fields must match;
        priority desc, then LPM specificity desc, then insertion order.
        Runs on the index when enabled; :meth:`lookup_reference` is the
        always-available linear oracle with identical semantics.
        """
        if self._index is None:
            return self.lookup_reference(packet)
        best = self._index.lookup(packet)
        if best is None:
            self.misses += 1
            return None, self.default_action, self.default_params
        self.hits += 1
        return best, best.action, best.params

    def lookup_reference(self, packet: Packet) -> tuple[TableEntry | None, str, Mapping[str, object]]:
        """The reference linear scan (the oracle the index is tested
        against).  Updates the same hit/miss counters as :meth:`lookup`."""
        best: TableEntry | None = None
        best_rank: tuple[int, int, int] | None = None
        for order, entry in enumerate(self.entries):
            ok = True
            for f in self.key:
                if not _match_one(f.kind, entry.match.get(f.name), packet.get_field(f.name)):
                    ok = False
                    break
            if not ok:
                continue
            rank = (entry.priority, entry.lpm_specificity(self.key), -order)
            if best_rank is None or rank > best_rank:
                best, best_rank = entry, rank
        if best is None:
            self.misses += 1
            return None, self.default_action, self.default_params
        self.hits += 1
        return best, best.action, best.params

    def __repr__(self) -> str:
        return (
            f"MatchActionTable({self.name!r}, key={list(self.key_fields)}, "
            f"entries={self.num_entries})"
        )
