"""Match-action tables.

A :class:`MatchActionTable` models one P4 table as installed in an MAU:
a typed match key (exact / ternary / LPM / range per field), prioritized
entries, and a default action.  This is the unit the SFP data plane
virtualizes: physical NFs prepend ``tenant_id`` (exact) and ``pass_id``
(exact) fields to their match key so one physical table hosts many tenants'
logical NFs (Fig. 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.dataplane.packet import MATCHABLE_FIELDS, Packet
from repro.errors import DataPlaneError


class MatchKind(enum.Enum):
    """P4 match kinds supported by the MAU model."""

    EXACT = "exact"
    TERNARY = "ternary"  # value/mask
    LPM = "lpm"          # value/prefix_len over 32-bit fields
    RANGE = "range"      # [lo, hi] inclusive


@dataclass(frozen=True)
class MatchField:
    """One component of a table's match key."""

    name: str
    kind: MatchKind

    def __post_init__(self) -> None:
        if self.name not in MATCHABLE_FIELDS:
            raise DataPlaneError(f"unknown match field {self.name!r}")


def _match_one(kind: MatchKind, spec, value: int) -> bool:
    """Does ``value`` satisfy one field's match spec?

    Spec encodings: EXACT -> int (or None = wildcard); TERNARY ->
    ``(value, mask)``; LPM -> ``(prefix, prefix_len)``; RANGE -> ``(lo, hi)``.
    ``None`` wildcards any kind.
    """
    if spec is None:
        return True
    if kind is MatchKind.EXACT:
        return value == int(spec)
    if kind is MatchKind.TERNARY:
        want, mask = spec
        return (value & mask) == (want & mask)
    if kind is MatchKind.LPM:
        prefix, length = spec
        if not 0 <= length <= 32:
            raise DataPlaneError(f"LPM prefix length {length} outside [0, 32]")
        if length == 0:
            return True
        mask = ((1 << length) - 1) << (32 - length)
        return (value & mask) == (prefix & mask)
    if kind is MatchKind.RANGE:
        lo, hi = spec
        return lo <= value <= hi
    raise DataPlaneError(f"unhandled match kind {kind}")  # pragma: no cover


@dataclass(frozen=True)
class TableEntry:
    """One rule: per-field match specs, a priority, and an action binding.

    ``match`` maps field name -> spec (see :func:`_match_one`); fields
    omitted from the mapping are wildcards.  Higher ``priority`` wins; among
    equal priorities, for LPM fields the longest prefix wins (standard P4
    semantics), then insertion order.
    """

    match: Mapping[str, object]
    action: str
    params: Mapping[str, object] = field(default_factory=dict)
    priority: int = 0

    def lpm_specificity(self, key: Sequence[MatchField]) -> int:
        """Total LPM prefix length (tie-break for equal priorities)."""
        total = 0
        for f in key:
            spec = self.match.get(f.name)
            if f.kind is MatchKind.LPM and spec is not None:
                total += int(spec[1])
        return total


class MatchActionTable:
    """A physical table instance resident in one MAU stage."""

    def __init__(
        self,
        name: str,
        key: Sequence[MatchField],
        default_action: str = "no_op",
        default_params: Mapping[str, object] | None = None,
        max_entries: int | None = None,
    ) -> None:
        if not name:
            raise DataPlaneError("table needs a name")
        names = [f.name for f in key]
        if len(set(names)) != len(names):
            raise DataPlaneError(f"table {name!r}: duplicate match fields {names}")
        self.name = name
        self.key = tuple(key)
        self.default_action = default_action
        self.default_params = dict(default_params or {})
        self.max_entries = max_entries
        self.entries: list[TableEntry] = []
        #: Lookup statistics (hit = entry matched, miss = default action).
        self.hits = 0
        self.misses = 0

    @property
    def key_fields(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.key)

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def _validate(self, entry: TableEntry) -> None:
        for fname in entry.match:
            if fname not in self.key_fields:
                raise DataPlaneError(
                    f"table {self.name!r}: entry matches unknown field {fname!r} "
                    f"(key = {self.key_fields})"
                )

    def insert(self, entry: TableEntry) -> None:
        """Install a rule (P4Runtime INSERT)."""
        self._validate(entry)
        if self.max_entries is not None and self.num_entries >= self.max_entries:
            raise DataPlaneError(
                f"table {self.name!r} full ({self.max_entries} entries)"
            )
        self.entries.append(entry)

    def insert_many(self, entries: Sequence[TableEntry]) -> None:
        """Install several rules in order (all-or-nothing is the
        RuntimeAPI's job; this is the raw table operation)."""
        for entry in entries:
            self.insert(entry)

    def delete(self, entry: TableEntry) -> None:
        """Remove a previously installed rule (P4Runtime DELETE).

        Prefers removing the *identical* object (what install bookkeeping
        holds), falling back to the first equal entry — so deleting a
        specific duplicate never disturbs the insertion-order tie-break of
        the entries before it.
        """
        for i, existing in enumerate(self.entries):
            if existing is entry:
                del self.entries[i]
                return
        try:
            self.entries.remove(entry)
        except ValueError:
            raise DataPlaneError(
                f"table {self.name!r}: entry not present for delete"
            ) from None

    def delete_where(self, **match_fields: object) -> int:
        """Delete all entries whose match spec contains the given field
        values exactly (used for per-tenant teardown); returns the count."""
        before = self.num_entries
        self.entries = [
            e
            for e in self.entries
            if not all(e.match.get(k) == v for k, v in match_fields.items())
        ]
        return before - self.num_entries

    def lookup(self, packet: Packet) -> tuple[TableEntry | None, str, Mapping[str, object]]:
        """Find the winning entry for ``packet``.

        Returns ``(entry, action, params)``; ``entry`` is ``None`` on a miss
        (default action).  Match semantics: all key fields must match;
        priority desc, then LPM specificity desc, then insertion order.
        """
        best: TableEntry | None = None
        best_rank: tuple[int, int, int] | None = None
        for order, entry in enumerate(self.entries):
            ok = True
            for f in self.key:
                if not _match_one(f.kind, entry.match.get(f.name), packet.get_field(f.name)):
                    ok = False
                    break
            if not ok:
                continue
            rank = (entry.priority, entry.lpm_specificity(self.key), -order)
            if best_rank is None or rank > best_rank:
                best, best_rank = entry, rank
        if best is None:
            self.misses += 1
            return None, self.default_action, self.default_params
        self.hits += 1
        return best, best.action, best.params

    def __repr__(self) -> str:
        return (
            f"MatchActionTable({self.name!r}, key={list(self.key_fields)}, "
            f"entries={self.num_entries})"
        )
