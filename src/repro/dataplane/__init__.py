"""Programmable-switch data plane simulator.

A functional model of a Tofino-class match-action pipeline, rich enough to
execute the paper's data-plane design end to end:

* packets with parsed header fields and per-packet metadata
  (:mod:`repro.dataplane.packet`),
* match-action tables with exact/ternary/LPM/range matching and priorities
  (:mod:`repro.dataplane.table`), backed by an indexed fast-path lookup
  engine (:mod:`repro.dataplane.lookup_index`), action primitives
  (:mod:`repro.dataplane.action`),
* MAU stages with SRAM block accounting (:mod:`repro.dataplane.stage`,
  :mod:`repro.dataplane.resources`),
* a multi-pass pipeline with recirculation (:mod:`repro.dataplane.pipeline`),
* the SFP virtualization layer that folds logical SFCs onto physical NFs with
  tenant-ID/pass match fields and REC actions
  (:mod:`repro.dataplane.virtualization`),
* a P4Runtime-style entry CRUD API (:mod:`repro.dataplane.runtime_api`),
* the calibrated ASIC latency/throughput model (:mod:`repro.dataplane.latency`).
"""

from repro.dataplane.action import ActionCall, default_actions
from repro.dataplane.latency import AsicModel
from repro.dataplane.lookup_index import LookupIndex, MatchField
from repro.dataplane.packet import Packet, PacketResult
from repro.dataplane.parser import build_frame, build_vxlan_frame, parse_packet
from repro.dataplane.registers import (
    CounterArray,
    MeterArray,
    MeterColor,
    RegisterArray,
)
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.resources import StageResources
from repro.dataplane.runtime_api import RuntimeAPI, WriteOp
from repro.dataplane.stage import Stage
from repro.dataplane.table import MatchActionTable, MatchKind, TableEntry
from repro.dataplane.virtualization import SFCVirtualizer, install_sfc

__all__ = [
    "ActionCall",
    "AsicModel",
    "CounterArray",
    "LookupIndex",
    "MatchActionTable",
    "MatchField",
    "MatchKind",
    "MeterArray",
    "MeterColor",
    "Packet",
    "PacketResult",
    "RegisterArray",
    "RuntimeAPI",
    "SFCVirtualizer",
    "Stage",
    "StageResources",
    "SwitchPipeline",
    "TableEntry",
    "WriteOp",
    "build_frame",
    "build_vxlan_frame",
    "default_actions",
    "install_sfc",
    "parse_packet",
]
