"""SFC virtualization: folding logical chains onto the physical pipeline.

This is the paper's §IV data-plane mechanism:

* physical NFs are static tables whose match key is prepended with
  ``tenant_id`` and ``pass_id``;
* installing a tenant's logical NF copies its rules into the physical table
  of the same type, with the tenant's ID and the assigned pass added to
  every rule's match;
* when a chain folds across passes, every rule of the **last NF of each
  non-final pass** gets the REC argument, so matching traffic recirculates
  and re-enters the pipeline with ``pass_id + 1``;
* tenant departure deletes all rules carrying that tenant ID and refunds
  the SRAM entries.

Two allocation paths are provided: :meth:`SFCVirtualizer.install_sfc` with an
explicit virtual-stage assignment (output of the control plane's placement
algorithms) and :meth:`SFCVirtualizer.allocate` implementing §IV's own
``currPass`` first-fit walk for control-plane-less operation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import MatchActionTable, TableEntry
from repro.errors import DataPlaneError, ResourceExhaustedError


def physical_table_name(nf_name: str, stage: int) -> str:
    """Naming convention binding an NF type to its per-stage physical table."""
    return f"{nf_name}@s{stage}"


@dataclass(frozen=True)
class LogicalNF:
    """One NF of a tenant's chain: the type name plus its configuration
    (rules *without* tenant/pass fields — the virtualizer adds those)."""

    nf_name: str
    rules: tuple[TableEntry, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))


@dataclass(frozen=True)
class LogicalSFC:
    """A tenant's chain as the data plane sees it."""

    tenant_id: int
    nfs: tuple[LogicalNF, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "nfs", tuple(self.nfs))
        if not self.nfs:
            raise DataPlaneError("an SFC needs at least one NF")


@dataclass
class InstalledRule:
    """Bookkeeping for one installed (augmented) rule."""

    stage_index: int
    table_name: str
    entry: TableEntry


@dataclass(frozen=True)
class CompiledNF:
    """One chain position compiled against its physical table: where the
    rules go and the fully augmented entries (tenant/pass match fields and
    the REC argument already applied)."""

    position: int
    stage_index: int
    pass_id: int
    table_name: str
    entries: tuple[TableEntry, ...]


def compile_sfc(
    sfc: LogicalSFC,
    assignment: tuple[int, ...],
    num_stages: int,
    max_passes: int,
) -> tuple[CompiledNF, ...]:
    """Compile a chain onto the physical pipeline *without installing it*.

    This is the pure half of §IV's install: validate the virtual-stage
    assignment, augment every rule's match with ``(tenant_id, pass_id)``,
    and attach the REC argument to the rules of the last NF of each
    non-final pass.  Both :meth:`SFCVirtualizer.install_sfc` and the
    controller's transactional installer consume the same compilation, so
    the rule format cannot drift between the two install paths.
    """
    if len(assignment) != len(sfc.nfs):
        raise DataPlaneError(
            f"assignment length {len(assignment)} != chain length {len(sfc.nfs)}"
        )
    if any(b <= a for a, b in zip(assignment, assignment[1:])):
        raise DataPlaneError(f"assignment {assignment} is not strictly increasing")
    if any(k < 1 for k in assignment):
        raise DataPlaneError(f"assignment {assignment} has stages < 1 (1-based)")
    total_passes = -(-assignment[-1] // num_stages)
    if total_passes > max_passes:
        raise ResourceExhaustedError(
            f"assignment needs {total_passes} passes, pipeline allows {max_passes}"
        )

    # Which chain positions are the last NF of a non-final pass? Those
    # rules carry REC.
    rec_positions = set()
    for j, k in enumerate(assignment):
        this_pass = -(-k // num_stages)
        next_pass = (
            -(-assignment[j + 1] // num_stages) if j + 1 < len(assignment) else this_pass
        )
        if next_pass > this_pass:
            rec_positions.add(j)

    compiled = []
    for j, (nf, k) in enumerate(zip(sfc.nfs, assignment)):
        stage_index = (k - 1) % num_stages
        pass_id = -(-k // num_stages)
        augmented = []
        for rule in nf.rules:
            params = dict(rule.params)
            if j in rec_positions:
                params["rec"] = True
            augmented.append(
                TableEntry(
                    match={
                        **dict(rule.match),
                        "tenant_id": sfc.tenant_id,
                        "pass_id": pass_id,
                    },
                    action=rule.action,
                    params=params,
                    priority=rule.priority,
                )
            )
        compiled.append(
            CompiledNF(
                position=j,
                stage_index=stage_index,
                pass_id=pass_id,
                table_name=physical_table_name(nf.nf_name, stage_index),
                entries=tuple(augmented),
            )
        )
    return tuple(compiled)


@dataclass
class InstalledSFC:
    """Everything needed to tear a tenant's chain back down."""

    sfc: LogicalSFC
    #: 1-based virtual stage per chain position.
    assignment: tuple[int, ...]
    rules: list[InstalledRule] = field(default_factory=list)

    @property
    def passes(self) -> int:
        return 0 if not self.assignment else -(-max(self.assignment) // self._stages)

    _stages: int = 1  # set by the virtualizer


class SFCVirtualizer:
    """Installs/uninstalls logical SFCs onto a pipeline's physical NFs."""

    def __init__(self, pipeline: SwitchPipeline) -> None:
        self.pipeline = pipeline
        self.installed: dict[int, InstalledSFC] = {}

    # ------------------------------------------------------------------
    def _physical_table(self, nf_name: str, stage: int) -> MatchActionTable:
        name = physical_table_name(nf_name, stage)
        return self.pipeline.stage(stage).table(name)

    def _has_physical(self, nf_name: str, stage: int) -> bool:
        try:
            self._physical_table(nf_name, stage)
            return True
        except DataPlaneError:
            return False

    # ------------------------------------------------------------------
    def plan_allocation(self, sfc: LogicalSFC) -> tuple[int, ...]:
        """§IV's ``currPass`` walk: sequentially match chain NFs against the
        physical pipeline, folding into the next pass when the remaining
        stages lack the needed type.  Returns 1-based virtual stages.

        Raises :class:`ResourceExhaustedError` when the chain cannot finish
        within the pipeline's recirculation budget.
        """
        S = self.pipeline.num_stages
        max_k = S * self.pipeline.max_passes
        assignment: list[int] = []
        k = 0  # last used virtual stage
        for nf in sfc.nfs:
            found = None
            for candidate in range(k + 1, max_k + 1):
                if self._has_physical(nf.nf_name, (candidate - 1) % S):
                    found = candidate
                    break
            if found is None:
                raise ResourceExhaustedError(
                    f"tenant {sfc.tenant_id}: NF {nf.nf_name!r} cannot be "
                    f"reached within {self.pipeline.max_passes} passes"
                )
            assignment.append(found)
            k = found
        return tuple(assignment)

    # ------------------------------------------------------------------
    def install_sfc(
        self, sfc: LogicalSFC, assignment: tuple[int, ...] | None = None
    ) -> InstalledSFC:
        """Copy the chain's rules into the physical tables.

        ``assignment`` gives the 1-based virtual stage per NF (from the
        control plane); omitted, the §IV first-fit walk decides.  The install
        is atomic: on any failure every already-copied rule is rolled back.
        """
        if sfc.tenant_id in self.installed:
            raise DataPlaneError(f"tenant {sfc.tenant_id} already has an SFC installed")
        if assignment is None:
            assignment = self.plan_allocation(sfc)
        S = self.pipeline.num_stages
        compiled = compile_sfc(
            sfc, tuple(assignment), S, self.pipeline.max_passes
        )

        record = InstalledSFC(sfc=sfc, assignment=tuple(assignment))
        record._stages = S
        try:
            for nf in compiled:
                table = self.pipeline.stage(nf.stage_index).table(nf.table_name)
                stage = self.pipeline.stage(nf.stage_index)
                stage.resources.charge_entries(table.name, len(nf.entries))
                try:
                    # Atomic per NF: a rejected batch leaves the table (and
                    # its lookup index) untouched, so only the charge above
                    # needs undoing here.
                    table.insert_many(nf.entries)
                except (DataPlaneError, ResourceExhaustedError):
                    stage.resources.refund_entries(table.name, len(nf.entries))
                    raise
                for entry in nf.entries:
                    record.rules.append(
                        InstalledRule(
                            stage_index=nf.stage_index,
                            table_name=nf.table_name,
                            entry=entry,
                        )
                    )
        except (DataPlaneError, ResourceExhaustedError):
            self._rollback(record)
            raise
        self.installed[sfc.tenant_id] = record
        return record

    def _rollback(self, record: InstalledSFC) -> None:
        refunds: dict[tuple[int, str], int] = {}
        for rule in record.rules:
            stage = self.pipeline.stage(rule.stage_index)
            stage.table(rule.table_name).delete(rule.entry)
            key = (rule.stage_index, rule.table_name)
            refunds[key] = refunds.get(key, 0) + 1
        for (stage_index, table_name), count in refunds.items():
            self.pipeline.stage(stage_index).resources.refund_entries(table_name, count)
        record.rules.clear()

    # ------------------------------------------------------------------
    def uninstall_sfc(self, tenant_id: int) -> LogicalSFC:
        """Tenant departure: remove every rule carrying its tenant ID and
        refund the SRAM entries."""
        record = self.installed.pop(tenant_id, None)
        if record is None:
            raise DataPlaneError(f"tenant {tenant_id} has no installed SFC")
        self._rollback(record)
        return record.sfc

    def retag_tenant(self, old_tenant: int, new_tenant: int) -> int:
        """§V-E: re-assign a live SFC's global tenant ID by rewriting the
        tenant-ID field of every installed rule in place (rule MODIFYs, no
        resource churn).  Returns the number of rules rewritten."""
        if new_tenant in self.installed:
            raise DataPlaneError(f"tenant {new_tenant} already has an SFC installed")
        record = self.installed.pop(old_tenant, None)
        if record is None:
            raise DataPlaneError(f"tenant {old_tenant} has no installed SFC")
        rewritten = 0
        for installed_rule in record.rules:
            table = self.pipeline.stage(installed_rule.stage_index).table(
                installed_rule.table_name
            )
            replacement = TableEntry(
                match={**dict(installed_rule.entry.match), "tenant_id": new_tenant},
                action=installed_rule.entry.action,
                params=installed_rule.entry.params,
                priority=installed_rule.entry.priority,
            )
            table.delete(installed_rule.entry)
            table.insert(replacement)
            installed_rule.entry = replacement
            rewritten += 1
        record.sfc = LogicalSFC(tenant_id=new_tenant, nfs=record.sfc.nfs)
        self.installed[new_tenant] = record
        return rewritten

    def tenant_passes(self, tenant_id: int) -> int:
        """Pipeline passes the tenant's traffic consumes (``R_l + 1``)."""
        record = self.installed.get(tenant_id)
        if record is None:
            raise DataPlaneError(f"tenant {tenant_id} has no installed SFC")
        return record.passes


def install_sfc(
    pipeline: SwitchPipeline,
    sfc: LogicalSFC,
    assignment: tuple[int, ...] | None = None,
) -> InstalledSFC:
    """One-shot convenience wrapper around :class:`SFCVirtualizer`."""
    return SFCVirtualizer(pipeline).install_sfc(sfc, assignment)
