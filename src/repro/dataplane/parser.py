"""Byte-level packet parser / deparser.

The paper assumes "tenant traffic can be classified by header fields ...
VLAN, VxLAN, GRE, etc." (§III).  This module grounds that assumption: it
parses real byte strings — Ethernet / (optional 802.1Q VLAN) / IPv4 /
(TCP | UDP), with UDP port 4789 recognized as VxLAN whose VNI becomes the
tenant ID, and an inner Ethernet/IPv4/L4 frame parsed as the tenant packet —
into the :class:`~repro.dataplane.packet.Packet` the pipeline matches on,
and deparses packets back to bytes (the egress side).

The parse graph mirrors a P4 parser: a state machine over header types with
explicit extract offsets; unknown ethertypes/protocols raise
:class:`~repro.errors.DataPlaneError` like a P4 parser reject.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.dataplane.packet import Packet
from repro.errors import DataPlaneError

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100
PROTO_TCP = 6
PROTO_UDP = 17
VXLAN_PORT = 4789

ETH_LEN = 14
VLAN_LEN = 4
IPV4_MIN_LEN = 20
UDP_LEN = 8
TCP_MIN_LEN = 20
VXLAN_LEN = 8


@dataclass(frozen=True)
class ParsedHeaders:
    """Which headers the parser walked, for tests and tracing."""

    stack: tuple[str, ...]
    vlan_id: int | None = None
    vni: int | None = None


def _require(data: bytes, offset: int, need: int, header: str) -> None:
    if len(data) < offset + need:
        raise DataPlaneError(
            f"truncated packet: {header} needs {need} bytes at offset "
            f"{offset}, only {len(data) - offset} available"
        )


def _parse_l4(data: bytes, offset: int, protocol: int) -> tuple[int, int, int]:
    """Returns (src_port, dst_port, next_offset)."""
    if protocol == PROTO_TCP:
        _require(data, offset, TCP_MIN_LEN, "tcp")
        src, dst = struct.unpack_from("!HH", data, offset)
        data_offset = (data[offset + 12] >> 4) * 4
        if data_offset < TCP_MIN_LEN:
            raise DataPlaneError(f"bad TCP data offset {data_offset}")
        return src, dst, offset + data_offset
    if protocol == PROTO_UDP:
        _require(data, offset, UDP_LEN, "udp")
        src, dst = struct.unpack_from("!HH", data, offset)
        return src, dst, offset + UDP_LEN
    raise DataPlaneError(f"unsupported IP protocol {protocol}")


def _parse_ipv4(data: bytes, offset: int) -> tuple[int, int, int, int, int, int]:
    """Returns (src_ip, dst_ip, protocol, dscp, ihl_end, total_len)."""
    _require(data, offset, IPV4_MIN_LEN, "ipv4")
    version_ihl = data[offset]
    if version_ihl >> 4 != 4:
        raise DataPlaneError(f"not IPv4 (version {version_ihl >> 4})")
    ihl = (version_ihl & 0x0F) * 4
    if ihl < IPV4_MIN_LEN:
        raise DataPlaneError(f"bad IPv4 IHL {ihl}")
    _require(data, offset, ihl, "ipv4 options")
    dscp = data[offset + 1] >> 2
    total_len = struct.unpack_from("!H", data, offset + 2)[0]
    protocol = data[offset + 9]
    src_ip, dst_ip = struct.unpack_from("!II", data, offset + 12)
    return src_ip, dst_ip, protocol, dscp, offset + ihl, total_len


def parse_packet(data: bytes, default_tenant: int = 0) -> tuple[Packet, ParsedHeaders]:
    """Parse wire bytes into a pipeline :class:`Packet`.

    Tenant classification (§III "we uniformly call these header fields
    tenant ID"), in priority order:

    1. VxLAN VNI, when the outer L4 is UDP :4789 — the inner frame's
       5-tuple populates the packet;
    2. 802.1Q VLAN ID;
    3. ``default_tenant`` otherwise.
    """
    _require(data, 0, ETH_LEN, "ethernet")
    ethertype = struct.unpack_from("!H", data, 12)[0]
    offset = ETH_LEN
    stack = ["ethernet"]
    vlan_id = None
    if ethertype == ETHERTYPE_VLAN:
        _require(data, offset, VLAN_LEN, "vlan")
        tci, ethertype = struct.unpack_from("!HH", data, offset)
        vlan_id = tci & 0x0FFF
        offset += VLAN_LEN
        stack.append("vlan")
    if ethertype != ETHERTYPE_IPV4:
        raise DataPlaneError(f"unsupported ethertype {ethertype:#06x}")

    src_ip, dst_ip, protocol, dscp, offset, _total = _parse_ipv4(data, offset)
    stack.append("ipv4")
    src_port, dst_port, offset = _parse_l4(data, offset, protocol)
    stack.append("tcp" if protocol == PROTO_TCP else "udp")

    vni = None
    if protocol == PROTO_UDP and dst_port == VXLAN_PORT:
        _require(data, offset, VXLAN_LEN, "vxlan")
        flags = data[offset]
        if not flags & 0x08:
            raise DataPlaneError("VxLAN header without valid-VNI flag")
        vni = int.from_bytes(data[offset + 4 : offset + 7], "big")
        offset += VXLAN_LEN
        stack.append("vxlan")
        # Inner frame: Ethernet / IPv4 / L4.
        _require(data, offset, ETH_LEN, "inner ethernet")
        inner_ethertype = struct.unpack_from("!H", data, offset + 12)[0]
        if inner_ethertype != ETHERTYPE_IPV4:
            raise DataPlaneError(
                f"unsupported inner ethertype {inner_ethertype:#06x}"
            )
        offset += ETH_LEN
        stack.append("inner_ethernet")
        src_ip, dst_ip, protocol, dscp, offset, _t = _parse_ipv4(data, offset)
        stack.append("inner_ipv4")
        src_port, dst_port, offset = _parse_l4(data, offset, protocol)
        stack.append("inner_tcp" if protocol == PROTO_TCP else "inner_udp")

    if vni is not None:
        tenant = vni
    elif vlan_id is not None:
        tenant = vlan_id
    else:
        tenant = default_tenant

    packet = Packet(
        tenant_id=tenant,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=dst_port,
        protocol=protocol,
        dscp=dscp,
        size_bytes=max(len(data), 1),
    )
    return packet, ParsedHeaders(stack=tuple(stack), vlan_id=vlan_id, vni=vni)


# ----------------------------------------------------------------------
# Deparser / frame builders (also used by tests and trace replay)
# ----------------------------------------------------------------------
def build_ipv4_l4(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    protocol: int = PROTO_TCP,
    dscp: int = 0,
    payload: bytes = b"",
) -> bytes:
    """IPv4 + TCP/UDP bytes (no Ethernet)."""
    if protocol == PROTO_TCP:
        l4 = struct.pack(
            "!HHIIBBHHH", src_port, dst_port, 0, 0, 5 << 4, 0, 8192, 0, 0
        )
    elif protocol == PROTO_UDP:
        l4 = struct.pack("!HHHH", src_port, dst_port, UDP_LEN + len(payload), 0)
    else:
        raise DataPlaneError(f"unsupported protocol {protocol}")
    total = IPV4_MIN_LEN + len(l4) + len(payload)
    ip = struct.pack(
        "!BBHHHBBHII",
        (4 << 4) | 5,
        dscp << 2,
        total,
        0,
        0,
        64,
        protocol,
        0,
        src_ip,
        dst_ip,
    )
    return ip + l4 + payload


def build_frame(
    src_ip: int,
    dst_ip: int,
    src_port: int,
    dst_port: int,
    protocol: int = PROTO_TCP,
    dscp: int = 0,
    vlan_id: int | None = None,
    payload: bytes = b"",
) -> bytes:
    """A full Ethernet frame, optionally 802.1Q tagged."""
    if vlan_id is not None:
        if not 0 <= vlan_id <= 0x0FFF:
            raise DataPlaneError(f"VLAN id {vlan_id} outside [0, 4095]")
        eth = b"\x02" * 6 + b"\x04" * 6 + struct.pack("!H", ETHERTYPE_VLAN)
        eth += struct.pack("!HH", vlan_id, ETHERTYPE_IPV4)
    else:
        eth = b"\x02" * 6 + b"\x04" * 6 + struct.pack("!H", ETHERTYPE_IPV4)
    return eth + build_ipv4_l4(src_ip, dst_ip, src_port, dst_port, protocol, dscp, payload)


def build_vxlan_frame(
    vni: int,
    inner: bytes | None = None,
    outer_src_ip: int = 0x0A000001,
    outer_dst_ip: int = 0x0A000002,
    **inner_fields,
) -> bytes:
    """An outer UDP/4789 VxLAN frame carrying ``inner`` (an Ethernet frame
    built with :func:`build_frame` when ``inner_fields`` are given)."""
    if not 0 <= vni < 2**24:
        raise DataPlaneError(f"VNI {vni} outside 24 bits")
    if inner is None:
        inner = build_frame(**inner_fields)
    vxlan = bytes([0x08, 0, 0, 0]) + vni.to_bytes(3, "big") + b"\x00"
    outer_payload = vxlan + inner
    outer = build_frame(
        src_ip=outer_src_ip,
        dst_ip=outer_dst_ip,
        src_port=49152,
        dst_port=VXLAN_PORT,
        protocol=PROTO_UDP,
        payload=outer_payload,
    )
    return outer


def deparse_packet(packet: Packet, vlan_id: int | None = None) -> bytes:
    """Serialize a pipeline packet back to an Ethernet frame (egress).

    The tenant encapsulation is re-applied as a VLAN tag when requested;
    re-encapsulating VxLAN is the underlay's job and out of scope here.
    """
    return build_frame(
        src_ip=packet.src_ip,
        dst_ip=packet.dst_ip,
        src_port=packet.src_port,
        dst_port=packet.dst_port,
        protocol=packet.protocol,
        dscp=packet.dscp,
        vlan_id=vlan_id,
    )
