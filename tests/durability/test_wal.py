"""Write-ahead log unit tests: LSN sequencing, CRC protection, torn-tail
truncation, fsync-policy durability windows, and header-based compaction."""

import json

import pytest

from repro.durability import (
    WalRecord,
    WriteAheadLog,
    corrupt_tail,
    lose_unsynced_tail,
    replay_iter,
    scan_wal,
    tear_tail,
)
from repro.durability.wal import HEADER_OP
from repro.errors import DurabilityError


def open_wal(tmp_path, **kwargs):
    return WriteAheadLog(tmp_path / "wal.jsonl", **kwargs)


def test_append_assigns_contiguous_lsns_and_survives_reopen(tmp_path):
    wal = open_wal(tmp_path)
    records = [wal.append("admit", {"tenant_id": t}) for t in range(5)]
    assert [r.lsn for r in records] == [1, 2, 3, 4, 5]
    wal.close()

    reopened = open_wal(tmp_path)
    assert reopened.last_lsn == 5
    assert reopened.open_problems == ()
    on_disk = reopened.records()
    assert on_disk == records
    assert reopened.append("evict", {"tenant_id": 0}).lsn == 6
    reopened.close()


def test_scan_of_missing_and_empty_file(tmp_path):
    assert scan_wal(tmp_path / "nope.jsonl").records == ()
    (tmp_path / "empty.jsonl").write_bytes(b"")
    scan = scan_wal(tmp_path / "empty.jsonl")
    assert scan.records == () and scan.dropped_bytes == 0


def test_header_op_is_reserved(tmp_path):
    wal = open_wal(tmp_path)
    with pytest.raises(DurabilityError):
        wal.append(HEADER_OP, {})
    wal.close()


def test_torn_tail_is_truncated_on_open(tmp_path):
    wal = open_wal(tmp_path)
    for t in range(4):
        wal.append("admit", {"tenant_id": t})
    wal.close()
    dropped = tear_tail(wal.path)
    assert dropped > 0

    reopened = open_wal(tmp_path)
    assert reopened.last_lsn == 3
    assert reopened.truncated_bytes > 0
    assert reopened.open_problems  # the torn line is reported
    assert [r.lsn for r in reopened.records()] == [1, 2, 3]
    # The log keeps sequencing from the surviving prefix.
    assert reopened.append("evict", {"tenant_id": 9}).lsn == 4
    reopened.close()


def test_crc_catches_corrupted_record(tmp_path):
    wal = open_wal(tmp_path)
    for t in range(3):
        wal.append("admit", {"tenant_id": t})
    wal.close()
    assert corrupt_tail(wal.path)

    scan = scan_wal(wal.path)
    assert [r.lsn for r in scan.records] == [1, 2]
    assert scan.dropped_bytes > 0
    reopened = open_wal(tmp_path)
    assert reopened.last_lsn == 2
    reopened.close()


def test_lsn_discontinuity_ends_the_valid_prefix(tmp_path):
    path = tmp_path / "wal.jsonl"
    wal = WriteAheadLog(path)
    wal.append("admit", {"tenant_id": 0})
    wal.close()
    # Append a record that skips an LSN (valid CRC, wrong sequence).
    with path.open("ab") as fh:
        fh.write(WalRecord(lsn=5, op="admit", data={}).to_line())
    scan = scan_wal(path)
    assert [r.lsn for r in scan.records] == [1]
    assert any("discontinuity" in p for p in scan.problems)


def test_wholly_corrupt_header_yields_empty_trusted_prefix(tmp_path):
    path = tmp_path / "wal.jsonl"
    path.write_text("not json at all\n", encoding="utf-8")
    scan = scan_wal(path)
    assert scan.records == ()
    assert scan.dropped_bytes > 0
    # Opening resets the file to a fresh header; appends restart at LSN 1.
    wal = WriteAheadLog(path)
    assert wal.append("admit", {}).lsn == 1
    wal.close()


def test_fsync_off_keeps_durable_offset_at_header(tmp_path):
    wal = open_wal(tmp_path, fsync="off")
    header_end = wal.offset
    for t in range(3):
        wal.append("admit", {"tenant_id": t})
    assert wal.offset > header_end
    assert wal.durable_offset == 0  # nothing synced since open
    wal.sync()
    assert wal.durable_offset == wal.offset
    wal.close()


def test_fsync_batch_syncs_every_n_appends(tmp_path):
    wal = open_wal(tmp_path, fsync="batch", batch_every=3)
    wal.append("a", {})
    wal.append("b", {})
    assert wal.durable_offset < wal.offset  # batch not full yet
    wal.append("c", {})
    assert wal.durable_offset == wal.offset  # third append hit the batch
    wal.abort()


def test_lose_unsynced_tail_drops_exactly_the_unsynced_records(tmp_path):
    wal = open_wal(tmp_path, fsync="batch", batch_every=2)
    wal.append("a", {"n": 1})
    wal.append("b", {"n": 2})  # batch boundary: synced here
    wal.append("c", {"n": 3})  # buffered + written, never fsynced
    durable = wal.durable_offset
    wal.abort()
    lose_unsynced_tail(wal.path, durable)

    reopened = open_wal(tmp_path)
    assert [r.op for r in reopened.records()] == ["a", "b"]
    reopened.close()


def test_fsync_always_makes_every_append_durable(tmp_path):
    wal = open_wal(tmp_path, fsync="always")
    wal.append("a", {})
    assert wal.durable_offset == wal.offset
    wal.abort()
    lose_unsynced_tail(wal.path, wal.durable_offset)  # no-op by construction
    reopened = open_wal(tmp_path)
    assert [r.op for r in reopened.records()] == ["a"]
    reopened.close()


def test_compaction_preserves_lsn_continuity(tmp_path):
    wal = open_wal(tmp_path)
    for t in range(6):
        wal.append("admit", {"tenant_id": t})
    dropped = wal.compact(upto_lsn=4)
    assert dropped == 4
    assert [r.lsn for r in wal.records()] == [5, 6]
    assert wal.last_lsn == 6
    # Appends continue the global sequence, and a reopen agrees.
    assert wal.append("evict", {}).lsn == 7
    wal.close()
    reopened = open_wal(tmp_path)
    assert reopened.last_lsn == 7
    assert [r.lsn for r in reopened.records()] == [5, 6, 7]
    reopened.close()


def test_compact_everything_leaves_base_at_last_lsn(tmp_path):
    wal = open_wal(tmp_path)
    for t in range(3):
        wal.append("admit", {"tenant_id": t})
    wal.compact(upto_lsn=3)
    assert wal.records() == []
    assert wal.last_lsn == 3
    assert wal.append("admit", {}).lsn == 4
    wal.close()


def test_record_line_format_is_crc_enveloped_jsonl(tmp_path):
    wal = open_wal(tmp_path)
    wal.append("admit", {"tenant_id": 7})
    wal.sync()
    lines = wal.path.read_bytes().decode("utf-8").splitlines()
    wal.close()
    assert len(lines) == 2  # header + record
    outer = json.loads(lines[1])
    assert set(outer) == {"crc", "rec"}
    assert outer["rec"]["lsn"] == 1
    assert outer["rec"]["op"] == "admit"
    assert outer["rec"]["data"] == {"tenant_id": 7}


def test_replay_iter_filters_by_lsn(tmp_path):
    wal = open_wal(tmp_path)
    for t in range(5):
        wal.append("admit", {"tenant_id": t})
    window = list(replay_iter(wal.records(), after_lsn=3))
    wal.close()
    assert [r.lsn for r in window] == [4, 5]


def test_constructor_validation(tmp_path):
    with pytest.raises(DurabilityError):
        open_wal(tmp_path, fsync="sometimes")
    with pytest.raises(DurabilityError):
        open_wal(tmp_path, batch_every=0)


def test_fault_hook_sites_fire_in_order(tmp_path):
    sites = []
    wal = open_wal(tmp_path, fsync="always", fault_hook=sites.append)
    wal.append("admit", {})
    wal.abort()
    assert sites == [
        "wal.before-append",
        "wal.after-append",
        "wal.before-fsync",
        "wal.after-fsync",
    ]
