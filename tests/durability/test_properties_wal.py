"""Property tests: WAL round-trips under arbitrary payloads, arbitrary
byte-level truncation always yields a clean record prefix, and replaying any
prefix of the log twice is a no-op (digest-identical to replaying it once)."""

import string

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.controller import ChurnEngine, SfcController, synthesize_churn
from repro.core.spec import ProblemInstance, SwitchSpec
from repro.durability import (
    ControllerDurability,
    RecoveryEngine,
    WriteAheadLog,
    scan_wal,
)
from repro.durability.recover import apply_controller_record
from tests.durability.conftest import SWEEP_CHURN, SWEEP_SEED

op_names = st.text(
    alphabet=string.ascii_lowercase + "-", min_size=1, max_size=12
).filter(lambda s: s != "_header")

json_scalars = st.none() | st.booleans() | st.integers(-(10**9), 10**9) | st.text(
    max_size=12
)

payloads = st.dictionaries(st.text(max_size=8), json_scalars, max_size=4)

op_lists = st.lists(st.tuples(op_names, payloads), min_size=0, max_size=20)


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=op_lists)
def test_append_reopen_roundtrip(tmp_path, ops):
    path = tmp_path / "prop.jsonl"
    path.unlink(missing_ok=True)
    wal = WriteAheadLog(path, fsync="always")
    written = [wal.append(op, data) for op, data in ops]
    wal.close()

    scan = scan_wal(path)
    assert list(scan.records) == written
    assert scan.problems == ()
    reopened = WriteAheadLog(path)
    assert reopened.last_lsn == len(ops)
    reopened.close()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(ops=op_lists, cut=st.integers(min_value=0, max_value=10_000))
def test_any_byte_truncation_yields_a_clean_prefix(tmp_path, ops, cut):
    path = tmp_path / "prop.jsonl"
    path.unlink(missing_ok=True)
    wal = WriteAheadLog(path, fsync="always")
    written = [wal.append(op, data) for op, data in ops]
    wal.close()

    body = path.read_bytes()
    path.write_bytes(body[: min(cut, len(body))])
    scan = scan_wal(path)
    # Whatever survives is an exact prefix of what was written — a torn
    # byte can cost the tail, never corrupt the middle.
    assert list(scan.records) == written[: len(scan.records)]
    # And opening on top of the wreckage yields a working log.
    reopened = WriteAheadLog(path)
    reopened.append("post-truncation", {})
    reopened.close()


@pytest.fixture(scope="module")
def journaled_run(tmp_path_factory):
    """A real controller run's WAL records plus the digest reached after
    each prefix (the single-replay reference)."""
    spec = SwitchSpec(
        stages=3, blocks_per_stage=4, block_bits=6400, rule_bits=64,
        capacity_gbps=10.0,
    )
    instance = ProblemInstance(
        switch=spec, sfcs=(), num_types=4, max_recirculations=1
    )
    directory = tmp_path_factory.mktemp("journaled")
    controller = SfcController(instance, with_dataplane=False)
    durability = ControllerDurability(directory, checkpoint_every=0)
    durability.attach(controller)
    events = synthesize_churn(SWEEP_CHURN, SWEEP_SEED)[:150]
    ChurnEngine(controller).replay(events)
    records = durability.wal.records()
    durability.close()
    assert len(records) >= 20

    reference = SfcController(instance, with_dataplane=False)
    prefix_digests = [reference.state.digest()]
    engine = RecoveryEngine(lambda r: apply_controller_record(reference, r))
    for record in records:
        engine.apply(record)
        prefix_digests.append(reference.state.digest())
    assert engine.problems == []
    return instance, records, prefix_digests


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_prefix_replayed_twice_is_digest_identical(journaled_run, data):
    instance, records, prefix_digests = journaled_run
    prefix = data.draw(st.integers(min_value=0, max_value=len(records)))

    fresh = SfcController(instance, with_dataplane=False)
    engine = RecoveryEngine(lambda r: apply_controller_record(fresh, r))
    engine.replay(records[:prefix])
    once = fresh.state.digest()
    engine.replay(records[:prefix])  # the double-apply attempt
    assert engine.problems == []
    assert engine.replayed == prefix
    assert engine.skipped == prefix
    assert fresh.state.digest() == once == prefix_digests[prefix]
