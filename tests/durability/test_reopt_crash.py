"""Crash-mid-migration recovery: seeded crashes at every WAL fault site
while a global re-optimization is journaling its ``reopt_step`` records
must always recover a fabric bit-identical to the uninterrupted run's
state at the same committed LSN — every *committed* migration step holds
(the tenant sits on its recorded target switches) and every uncommitted
step is absent, never half-applied.

The fragmentation recipe is deterministic (fillers to the bandwidth brim,
long chains that must stitch, one filler evicted per switch), so the
oracle run and every crash run journal the identical WAL prefix.  Fault
ordinals are not LSNs (shard-audit appends share the hook), so the oracle
run carries a never-firing :class:`FaultInjector` purely to measure each
site's visit count before and after the migration — the sweep then aims
crashes at the first, middle and last visits of that window.
"""

import pytest

from repro.durability import (
    DISK_MODES,
    CrashError,
    CrashPoint,
    FabricDurability,
    FaultInjector,
    mutilate,
    recover_fabric,
)
from repro.durability.faults import WAL_SITES
from tests.durability.conftest import chain, make_fabric

#: Filler bandwidth: 8 per switch = 57.6 of 60 Gbps, leaving 2.4 Gbps —
#: less than the 4.0 Gbps a len-5 chain needs single-home (two passes),
#: more than the 2.0 Gbps each stitched half needs (one pass each).
FILLER_BW = 7.2

#: Where inside the migration's fault-site window each sweep point lands.
POSITIONS = ("first", "mid", "last")

SWEEP = [(site, pos) for site in WAL_SITES for pos in POSITIONS]


def fragment(fabric) -> None:
    """Deterministically fragment the fleet: single-NF fillers until the
    fabric rejects, long chains that can only stitch, then one filler
    evicted per home switch so re-optimization has room to consolidate."""
    fillers = []
    tenant_id = 1
    while True:
        result = fabric.admit(
            chain(tenant_id, nf_types=(1,), rules=(1,), bandwidth_gbps=FILLER_BW)
        )
        if not result.ok:
            break
        fillers.append((tenant_id, result.switches[0]))
        tenant_id += 1
    for k in range(4):
        fabric.admit(
            chain(
                500 + k,
                nf_types=(1, 2, 3, 4, 5),
                rules=(4,) * 5,
                bandwidth_gbps=2.0,
            )
        )
    seen: set[str] = set()
    for filler_id, switch in fillers:
        if switch not in seen:
            seen.add(switch)
            fabric.evict(filler_id)


@pytest.fixture(scope="module")
def reopt_oracle(tmp_path_factory):
    """The uninterrupted fragment-then-reoptimize run: LSN -> digest map
    (LSN 0 = genesis), the journaled ``reopt_step`` records, and each WAL
    site's visit count before/after the migration."""
    directory = tmp_path_factory.mktemp("reopt-oracle")
    fabric = make_fabric()
    injector = FaultInjector(None)
    durability = FabricDurability(
        directory, fsync="always", checkpoint_every=0, fault_hook=injector
    )
    durability.attach(fabric)
    digests = {0: make_fabric().digest()}
    fragment(fabric)
    before = {site: injector.visits.get(site, 0) for site in WAL_SITES}
    report = fabric.reoptimize(mode="greedy", min_benefit=0.0)
    after = {site: injector.visits.get(site, 0) for site in WAL_SITES}
    assert report.ok, report.invariant_problems
    assert report.migration is not None and report.migration.executed >= 2
    steps = []
    for record in durability.wal.records():
        digests[record.lsn] = record.data["digest"]
        if record.op == "reopt_step":
            steps.append(record)
    durability.close()
    assert len(steps) >= 2
    for site in WAL_SITES:
        assert after[site] > before[site], f"migration never visited {site}"
    return digests, steps, before, after


def crash_reopt(tmp_path, point, mode) -> None:
    """One seeded crash: rebuild the identical fragmented fleet, die at
    ``point`` during the re-optimization, then mutilate the log."""
    fabric = make_fabric()
    durability = FabricDurability(
        tmp_path,
        fsync="always",
        checkpoint_every=0,
        fault_hook=FaultInjector(point),
    )
    durability.attach(fabric)
    with pytest.raises(CrashError):
        fragment(fabric)
        fabric.reoptimize(mode="greedy", min_benefit=0.0)
    durable = durability.wal.durable_offset
    durability.abort()
    mutilate(durability.wal.path, mode, durable_offset=durable)


def _ordinal(before: int, after: int, position: str) -> int:
    if position == "first":
        return before + 1
    if position == "mid":
        return before + max(1, (after - before) // 2)
    return after


@pytest.mark.parametrize(
    "index,site,position",
    [(i, site, pos) for i, (site, pos) in enumerate(SWEEP)],
    ids=[f"{site.removeprefix('wal.')}@{pos}" for site, pos in SWEEP],
)
def test_crash_mid_migration_recovers_committed_steps(
    reopt_oracle, tmp_path, index, site, position
):
    digests, steps, before, after = reopt_oracle
    ordinal = _ordinal(before[site], after[site], position)
    mode = DISK_MODES[index % len(DISK_MODES)]
    crash_reopt(tmp_path, CrashPoint(site, at=ordinal), mode)

    recovered, report = recover_fabric(tmp_path)
    assert report.ok, report.problems
    committed = max(report.last_lsn, report.checkpoint_lsn)
    assert report.digest == digests[committed]
    assert recovered.digest() == digests[committed]
    assert recovered.check_invariant() == []

    # The committed-step oracle: every reopt_step at or below the committed
    # LSN left its tenant exactly on the recorded target switches; every
    # step past it left no trace (the tenant still has its old stitched
    # placement, never a half-migrated hybrid).
    for record in steps:
        tenant_id = record.data["tenant_id"]
        placed = list(
            dict.fromkeys(
                seg.switch for seg in recovered.tenants[tenant_id].segments
            )
        )
        if record.lsn <= committed:
            assert placed == record.data["switches"]
        else:
            assert placed != record.data["switches"]


def test_crash_before_any_step_loses_whole_migration(reopt_oracle, tmp_path):
    """Crashing on the migration's very first append commits none of it:
    recovery lands on the pre-migration fleet, stitched placements
    intact."""
    digests, steps, before, _after = reopt_oracle
    point = CrashPoint("wal.before-append", at=before["wal.before-append"] + 1)
    crash_reopt(tmp_path, point, "tear")
    recovered, report = recover_fabric(tmp_path)
    assert report.ok, report.problems
    committed = max(report.last_lsn, report.checkpoint_lsn)
    assert committed < steps[0].lsn
    assert recovered.digest() == digests[committed]
    assert recovered.check_invariant() == []
    stitched = sum(
        1
        for r in recovered.tenants.values()
        if len({seg.switch for seg in r.segments}) > 1
    )
    assert stitched >= 2
