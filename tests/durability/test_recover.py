"""Recovery tests: checkpoint + WAL replay must rebuild a bit-identical
control-plane state after clean shutdowns, simulated crashes at every fsync
policy, disk mutilation, and crashes mid two-phase install / mid drain."""

import pytest

from repro.controller import ChurnEngine, synthesize_churn
from repro.durability import (
    DISK_MODES,
    ControllerDurability,
    CountdownCrash,
    CrashError,
    FabricDurability,
    RecoveryEngine,
    mutilate,
    recover_controller,
    recover_fabric,
    scan_wal,
)
from repro.fabric import FabricChurnEngine
from tests.durability.conftest import (
    SWEEP_CHURN,
    SWEEP_SEED,
    chain,
    make_controller,
    make_fabric,
)


def churn_events(n=None, seed=SWEEP_SEED):
    events = synthesize_churn(SWEEP_CHURN, seed)
    return events if n is None else events[:n]


def durable_controller(tmp_path, tiny_instance, **kwargs):
    controller = make_controller(tiny_instance)
    durability = ControllerDurability(tmp_path, **kwargs)
    durability.attach(controller)
    return controller, durability


def last_committed_digest(wal_path, fallback):
    """The post-op digest of the newest surviving WAL record (the digest the
    recovered state must reproduce), or ``fallback`` for an empty log."""
    records = scan_wal(wal_path).records
    return records[-1].data["digest"] if records else fallback


# ----------------------------------------------------------------------
# Controller recovery
# ----------------------------------------------------------------------
def test_clean_shutdown_recovers_bit_identical(tmp_path, tiny_instance):
    controller, durability = durable_controller(
        tmp_path, tiny_instance, fsync="always", checkpoint_every=0
    )
    ChurnEngine(controller).replay(churn_events(n=80))
    live_digest = controller.state.digest()
    live_tenants = sorted(controller.tenants)
    durability.close()

    recovered, report = recover_controller(tmp_path)
    assert report.ok
    assert report.kind == "controller"
    assert recovered.state.digest() == live_digest
    assert report.digest == live_digest
    assert sorted(recovered.tenants) == live_tenants
    # The recovery is flight-recorded.
    assert any(
        d["reason"] == "recovery" and d["context"]["ok"]
        for d in recovered.recorder.dumps
    )


def test_recovery_is_idempotent(tmp_path, tiny_instance):
    controller, durability = durable_controller(
        tmp_path, tiny_instance, fsync="always", checkpoint_every=0
    )
    ChurnEngine(controller).replay(churn_events(n=60))
    durability.close()

    first, report1 = recover_controller(tmp_path)
    second, report2 = recover_controller(tmp_path)
    assert report1.ok and report2.ok
    assert first.state.digest() == second.state.digest()
    assert report2.last_lsn == report1.last_lsn
    # Recovery #1 checkpointed at its last LSN, so #2 replays nothing.
    assert report2.checkpoint_lsn == report1.last_lsn
    assert report2.replayed == 0


def test_replay_engine_skips_already_applied_lsns(tmp_path, tiny_instance):
    controller, durability = durable_controller(
        tmp_path, tiny_instance, fsync="always", checkpoint_every=0
    )
    for t in (1, 2, 3):
        assert controller.admit(chain(t)).ok
    records = durability.wal.records()
    durability.close()

    from repro.durability.recover import apply_controller_record

    fresh = make_controller(tiny_instance)
    engine = RecoveryEngine(lambda r: apply_controller_record(fresh, r))
    engine.replay(records)
    assert engine.problems == []
    digest_once = fresh.state.digest()
    # Replaying the same prefix again is a no-op, not a double-apply.
    engine.replay(records)
    assert engine.problems == []
    assert engine.skipped == 3
    assert fresh.state.digest() == digest_once == controller.state.digest()


def test_abort_recovers_to_durable_prefix(tmp_path, tiny_instance):
    controller, durability = durable_controller(
        tmp_path, tiny_instance, fsync="batch", batch_every=8, checkpoint_every=0
    )
    ChurnEngine(controller).replay(churn_events(n=100))
    genesis = make_controller(tiny_instance).state.digest()
    durable = durability.wal.durable_offset
    durability.abort()  # simulated death: no clean-shutdown fsync
    mutilate(durability.wal.path, "lose-unsynced", durable_offset=durable)
    # Recovery compacts the log, so grab the oracle digest first.
    expected = last_committed_digest(durability.wal.path, genesis)

    recovered, report = recover_controller(tmp_path)
    assert report.ok
    assert recovered.state.digest() == expected
    # With batch_every=8 the lost tail is at most 7 records.
    assert 0 < report.last_lsn <= 100


def test_mid_stream_checkpoints_shorten_replay(tmp_path, tiny_instance):
    controller, durability = durable_controller(
        tmp_path, tiny_instance, fsync="always", checkpoint_every=16
    )
    # The tiny switch refuses most of the stream; the full 430-event sweep
    # commits ~100 ops, enough for several checkpoint cycles.
    ChurnEngine(controller).replay(churn_events())
    live_digest = controller.state.digest()
    taken = durability.checkpoints_taken
    durability.close()
    assert taken >= 2

    recovered, report = recover_controller(tmp_path)
    assert report.ok
    assert recovered.state.digest() == live_digest
    assert report.checkpoint_lsn > 0
    assert report.replayed == report.last_lsn - report.checkpoint_lsn


@pytest.mark.parametrize("mode", DISK_MODES)
def test_disk_mutilation_modes_recover_cleanly(tmp_path, tiny_instance, mode):
    controller, durability = durable_controller(
        tmp_path, tiny_instance, fsync="batch", batch_every=4, checkpoint_every=0
    )
    ChurnEngine(controller).replay(churn_events(n=60))
    genesis = make_controller(tiny_instance).state.digest()
    durable = durability.wal.durable_offset
    durability.abort()
    mutilate(durability.wal.path, mode, durable_offset=durable)
    expected = last_committed_digest(durability.wal.path, genesis)

    recovered, report = recover_controller(tmp_path)
    assert report.ok
    assert recovered.state.digest() == expected


def test_catalog_and_reconfigure_ops_replay(tmp_path, tiny_instance):
    controller = make_controller(
        tiny_instance, with_dataplane=True, reconfigure_threshold=0.01
    )
    durability = ControllerDurability(tmp_path, checkpoint_every=0)
    durability.attach(controller)
    for t in range(1, 6):
        assert controller.admit(chain(t, rules=(1, 1, 1))).ok
    controller.install_catalog()
    for t in (1, 2, 3, 4):
        assert controller.evict(t).ok
    reconfigured = controller.maybe_reconfigure()
    live_digest = controller.state.digest()
    ops = [r.op for r in durability.wal.records()]
    durability.close()
    assert "catalog" in ops
    if reconfigured:
        assert "reconfigure" in ops

    recovered, report = recover_controller(tmp_path)
    assert report.ok
    assert recovered.state.digest() == live_digest


def test_crash_mid_install_leaves_no_record(tmp_path, tiny_instance):
    controller = make_controller(tiny_instance, with_dataplane=True)
    durability = ControllerDurability(tmp_path, checkpoint_every=0)
    durability.attach(controller)
    assert controller.admit(chain(1)).ok
    pre_digest = controller.state.digest()

    # Die partway through the two-phase install of tenant 2: the op never
    # completed, so it must never reach the log.
    controller.installer.on_batch = CountdownCrash(2)
    with pytest.raises(CrashError):
        controller.admit(chain(2))
    durability.abort()

    recovered, report = recover_controller(tmp_path)
    assert report.ok
    assert report.last_lsn == 1
    assert recovered.state.digest() == pre_digest
    assert sorted(recovered.tenants) == [1]
    assert 2 in recovered.installer.installed or 2 not in recovered.tenants


# ----------------------------------------------------------------------
# Fabric recovery
# ----------------------------------------------------------------------
def durable_fabric(tmp_path, **kwargs):
    fabric = make_fabric()
    durability = FabricDurability(tmp_path, **kwargs)
    durability.attach(fabric)
    return fabric, durability


def test_fabric_churn_with_drain_recovers_bit_identical(tmp_path):
    fabric, durability = durable_fabric(
        tmp_path, fsync="always", checkpoint_every=0
    )
    events = churn_events(n=80)
    FabricChurnEngine(fabric).replay(events[:40])
    names = fabric.topology.switch_names
    fabric.drain(names[1])
    FabricChurnEngine(fabric).replay(events[40:60])
    fabric.undrain(names[1])
    FabricChurnEngine(fabric).replay(events[60:])
    live_digest = fabric.digest()
    durability.close()
    ops = {r.op for r in scan_wal(durability.wal.path).records}
    assert {"drain", "undrain"} <= ops

    recovered, report = recover_fabric(tmp_path)
    assert report.ok
    assert report.kind == "fabric"
    assert recovered.digest() == live_digest
    assert recovered.check_invariant() == []
    assert sorted(recovered.tenants) == sorted(fabric.tenants)


def test_fabric_recovery_restores_from_checkpoint(tmp_path):
    fabric, durability = durable_fabric(
        tmp_path, fsync="always", checkpoint_every=24
    )
    FabricChurnEngine(fabric).replay(churn_events(n=120))
    live_digest = fabric.digest()
    assert durability.checkpoints_taken >= 1
    durability.close()

    recovered, report = recover_fabric(tmp_path)
    assert report.ok
    assert report.checkpoint_lsn > 0
    assert recovered.digest() == live_digest
    assert recovered.check_invariant() == []


def test_crash_mid_drain_recovers_pre_drain_state(tmp_path):
    from repro.durability import CrashPoint, FaultInjector

    fabric, durability = durable_fabric(
        tmp_path, fsync="always", checkpoint_every=0
    )
    for t in range(1, 9):
        assert fabric.admit(chain(t, nf_types=(1, 2, 3, 4, 5), rules=(3,) * 5)).ok
    pre_digest = fabric.digest()
    pre_lsn = durability.wal.last_lsn

    # The drain re-homes tenants shard by shard; crash on the second WAL
    # append it attempts, before the fabric-level drain record commits.
    injector = FaultInjector(CrashPoint("wal.before-append", at=2))
    for wal in durability.shard_wals.values():
        wal.fault_hook = injector
    durability.wal.fault_hook = injector
    with pytest.raises(CrashError):
        fabric.drain(fabric.topology.switch_names[0])
    durability.abort()

    recovered, report = recover_fabric(tmp_path)
    assert report.ok
    assert report.last_lsn == pre_lsn
    assert recovered.digest() == pre_digest
    assert recovered.check_invariant() == []
    assert recovered.drained == set()


def test_fabric_abort_with_torn_tail_recovers(tmp_path):
    fabric, durability = durable_fabric(
        tmp_path, fsync="batch", batch_every=8, checkpoint_every=0
    )
    FabricChurnEngine(fabric).replay(churn_events(n=90))
    genesis = make_fabric().digest()
    durability.abort()
    mutilate(durability.wal.path, "tear")
    expected = last_committed_digest(durability.wal.path, genesis)

    recovered, report = recover_fabric(tmp_path)
    assert report.ok
    assert recovered.digest() == expected
    assert recovered.check_invariant() == []
