"""The acceptance sweep: seeded crashes at every WAL durability boundary,
followed by deterministic disk mutilation, must always recover a fabric
whose digest is bit-identical to an uninterrupted run's state at the same
committed LSN — with the fabric invariant intact.

The oracle run (fsync=always, no checkpoints) maps every LSN to the post-op
fabric digest recorded in its own WAL, so each crash run can be judged at
exactly the LSN its surviving log reaches.
"""

import pytest

from repro.controller import synthesize_churn
from repro.durability import (
    DISK_MODES,
    CrashError,
    CrashPoint,
    FabricDurability,
    FaultInjector,
    crash_sites,
    mutilate,
    recover_fabric,
)
from repro.fabric import FabricChurnEngine
from tests.durability.conftest import SWEEP_CHURN, SWEEP_SEED, chain, make_fabric

#: Upper bound on WAL-append ordinals: the sweep stream commits ~430 fabric
#: ops plus ~430 shard-audit appends, so ordinal 800 lands near the end of
#: the run and ordinal 1 before the first committed op.
MAX_ORDINAL = 800

SWEEP_POINTS = crash_sites(SWEEP_SEED, MAX_ORDINAL)


@pytest.fixture(scope="module")
def sweep_events():
    events = synthesize_churn(SWEEP_CHURN, SWEEP_SEED)
    assert len(events) >= 300  # the ISSUE's floor for the sweep stream
    return events


@pytest.fixture(scope="module")
def oracle(sweep_events, tmp_path_factory):
    """LSN -> fabric digest for the uninterrupted run (LSN 0 = genesis)."""
    directory = tmp_path_factory.mktemp("oracle")
    fabric = make_fabric()
    durability = FabricDurability(directory, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    digests = {0: fabric.digest()}
    FabricChurnEngine(fabric).replay(sweep_events)
    for record in durability.wal.records():
        digests[record.lsn] = record.data["digest"]
    durability.close()
    assert len(digests) > 300
    return digests


def crash_run(tmp_path, events, point, mode):
    """One seeded crash: churn until the injector fires, die, mutilate the
    fabric log per ``mode``, and hand back the durability directory."""
    fabric = make_fabric()
    durability = FabricDurability(
        tmp_path,
        fsync="batch",
        batch_every=4,
        checkpoint_every=64,
        fault_hook=FaultInjector(point),
    )
    durability.attach(fabric)
    engine = FabricChurnEngine(fabric)
    crashed = False
    try:
        for event in events:
            engine.apply(event)
    except CrashError:
        crashed = True
    durable = durability.wal.durable_offset
    durability.abort()
    mutilate(durability.wal.path, mode, durable_offset=durable)
    return crashed


@pytest.mark.parametrize(
    "index,point",
    list(enumerate(SWEEP_POINTS)),
    ids=[f"{p.site.removeprefix('wal.')}@{p.at}" for p in SWEEP_POINTS],
)
def test_every_crash_point_recovers_bit_identical(
    oracle, sweep_events, tmp_path, index, point
):
    mode = DISK_MODES[index % len(DISK_MODES)]
    crash_run(tmp_path, sweep_events, point, mode)

    recovered, report = recover_fabric(tmp_path)
    assert report.ok, report.problems
    committed_lsn = max(report.last_lsn, report.checkpoint_lsn)
    assert report.digest == oracle[committed_lsn]
    assert recovered.digest() == oracle[committed_lsn]
    assert recovered.check_invariant() == []


def test_fsync_off_crash_can_lose_everything_but_stays_consistent(
    oracle, sweep_events, tmp_path
):
    """With fsync=off nothing is promised durable: after a crash plus full
    page-cache loss the fabric may come back at any earlier committed LSN —
    but it must still be *some* oracle state, never a torn hybrid."""
    fabric = make_fabric()
    durability = FabricDurability(
        tmp_path,
        fsync="off",
        checkpoint_every=0,
        fault_hook=FaultInjector(CrashPoint("wal.after-append", at=120)),
    )
    durability.attach(fabric)
    engine = FabricChurnEngine(fabric)
    with pytest.raises(CrashError):
        for event in sweep_events:
            engine.apply(event)
    durable = durability.wal.durable_offset
    durability.abort()
    mutilate(durability.wal.path, "lose-unsynced", durable_offset=durable)

    recovered, report = recover_fabric(tmp_path)
    assert report.ok, report.problems
    assert report.last_lsn < 120  # the unsynced tail really was lost
    assert recovered.digest() == oracle[report.last_lsn]
    assert recovered.check_invariant() == []


def test_crash_sweep_with_dataplane_recovers_forwarding(tmp_path):
    """One dataplane-enabled crash point: recovery must rebuild not just the
    placement state but a forwarding data plane (probes deliver)."""
    fabric = make_fabric(with_dataplane=True)
    durability = FabricDurability(
        tmp_path,
        fsync="always",
        checkpoint_every=0,
        fault_hook=FaultInjector(CrashPoint("wal.before-fsync", at=9)),
    )
    durability.attach(fabric)
    admitted = []
    with pytest.raises(CrashError):
        for t in range(1, 30):
            if fabric.admit(chain(t, nf_types=(1, 2, 3, 4), rules=(2,) * 4)).ok:
                admitted.append(t)
    durability.abort()

    recovered, report = recover_fabric(tmp_path)
    assert report.ok, report.problems
    assert recovered.check_invariant() == []
    assert recovered.with_dataplane
    for t in sorted(recovered.tenants):
        assert recovered.probe_tenant(t)


def test_crash_sites_are_deterministic():
    assert crash_sites(SWEEP_SEED, MAX_ORDINAL) == SWEEP_POINTS
    assert crash_sites(SWEEP_SEED + 1, MAX_ORDINAL) != SWEEP_POINTS
    for point in SWEEP_POINTS:
        assert 1 <= point.at <= MAX_ORDINAL
