"""Checkpoint tests: snapshot/restore round-trips that must be bit-identical
(digest-verified), the atomic on-disk store, and the attach-side coordinators'
manifest + auto-checkpoint behaviour."""

import json

import pytest

from repro.durability import (
    CheckpointStore,
    ControllerDurability,
    FabricDurability,
    controller_checkpoint,
    fabric_checkpoint,
    read_manifest,
    restore_controller,
    restore_fabric,
    scan_wal,
)
from repro.durability.checkpoint import MANIFEST_NAME
from repro.errors import DurabilityError
from tests.durability.conftest import chain, make_controller, make_fabric


def fake_checkpoint(lsn: int) -> dict:
    return {"kind": "controller-checkpoint", "lsn": lsn, "payload": lsn * 7}


# ----------------------------------------------------------------------
# CheckpointStore
# ----------------------------------------------------------------------
def test_store_roundtrip_and_retention(tmp_path):
    store = CheckpointStore(tmp_path, keep=3)
    for lsn in (1, 2, 3, 4, 5):
        store.save(fake_checkpoint(lsn))
    assert store.lsns() == [3, 4, 5]
    assert store.load(4) == fake_checkpoint(4)
    assert store.load(1) is None  # pruned
    assert store.load_latest() == fake_checkpoint(5)


def test_store_skips_corrupt_latest(tmp_path):
    store = CheckpointStore(tmp_path, keep=3)
    store.save(fake_checkpoint(1))
    store.save(fake_checkpoint(2))
    newest = store.path_for(2)
    body = newest.read_bytes()
    newest.write_bytes(body[: len(body) // 2])  # torn write
    assert store.load(2) is None
    assert store.load_latest() == fake_checkpoint(1)


def test_store_rejects_bad_crc(tmp_path):
    store = CheckpointStore(tmp_path)
    store.save(fake_checkpoint(1))
    path = store.path_for(1)
    envelope = json.loads(path.read_text(encoding="utf-8"))
    envelope["checkpoint"]["payload"] = 999  # mutate without refreshing CRC
    path.write_text(json.dumps(envelope), encoding="utf-8")
    assert store.load(1) is None


def test_store_keep_validation(tmp_path):
    with pytest.raises(DurabilityError):
        CheckpointStore(tmp_path, keep=0)


# ----------------------------------------------------------------------
# Controller snapshot / restore
# ----------------------------------------------------------------------
def populated_controller(tiny_instance, with_dataplane=False):
    controller = make_controller(tiny_instance, with_dataplane=with_dataplane)
    for t in (1, 2, 3):
        assert controller.admit(chain(t)).ok
    assert controller.evict(2).ok  # leave physical-NF residue behind
    return controller


def test_controller_checkpoint_restore_is_bit_identical(tiny_instance):
    controller = populated_controller(tiny_instance)
    checkpoint = controller_checkpoint(controller, lsn=4)

    fresh = make_controller(tiny_instance)
    restore_controller(fresh, checkpoint)
    assert fresh.state.digest() == controller.state.digest()
    assert sorted(fresh.tenants) == sorted(controller.tenants)
    for t in controller.tenants:
        assert fresh.tenants[t].stages == controller.tenants[t].stages


def test_controller_checkpoint_restore_with_dataplane(tiny_instance):
    controller = populated_controller(tiny_instance, with_dataplane=True)
    checkpoint = controller_checkpoint(controller, lsn=4)

    fresh = make_controller(tiny_instance, with_dataplane=True)
    restore_controller(fresh, checkpoint)
    assert fresh.state.digest() == controller.state.digest()
    # The surviving tenants' rule generations are installed in the data plane.
    assert sorted(fresh.installer.installed) == [1, 3]


def test_restore_requires_fresh_controller(tiny_instance):
    controller = populated_controller(tiny_instance)
    checkpoint = controller_checkpoint(controller, lsn=4)
    with pytest.raises(DurabilityError):
        restore_controller(controller, checkpoint)


def test_restore_rejects_digest_mismatch(tiny_instance):
    controller = populated_controller(tiny_instance)
    checkpoint = controller_checkpoint(controller, lsn=4)
    checkpoint["digest"] = "0" * 32
    with pytest.raises(DurabilityError, match="diverged"):
        restore_controller(make_controller(tiny_instance), checkpoint)


def test_restore_tenant_validates_shape(tiny_instance):
    controller = make_controller(tiny_instance)
    assert controller.admit(chain(1)).ok
    with pytest.raises(DurabilityError):
        controller.restore_tenant(chain(1), (0, 1, 2))  # duplicate tenant
    with pytest.raises(DurabilityError):
        controller.restore_tenant(chain(2), (0, 1))  # wrong stage count


# ----------------------------------------------------------------------
# Fabric snapshot / restore
# ----------------------------------------------------------------------
def populated_fabric(with_dataplane=False):
    fabric = make_fabric(with_dataplane=with_dataplane)
    names = fabric.topology.switch_names
    for t in range(1, 7):
        assert fabric.admit(chain(t, nf_types=(1, 2, 3, 4, 5), rules=(3,) * 5)).ok
    assert fabric.evict(4).ok
    report = fabric.drain(names[0])
    assert report.switch == names[0]
    return fabric


def test_fabric_checkpoint_restore_is_bit_identical():
    fabric = populated_fabric()
    checkpoint = fabric_checkpoint(fabric, lsn=8)

    fresh = make_fabric()
    restore_fabric(fresh, checkpoint)
    assert fresh.digest() == fabric.digest()
    assert fresh.drained == fabric.drained
    assert fresh.check_invariant() == []
    for t in fabric.tenants:
        assert [
            (s.switch, s.start, s.stop, s.stages)
            for s in fresh.tenants[t].segments
        ] == [
            (s.switch, s.start, s.stop, s.stages)
            for s in fabric.tenants[t].segments
        ]


def test_fabric_checkpoint_restore_with_dataplane():
    fabric = populated_fabric(with_dataplane=True)
    checkpoint = fabric_checkpoint(fabric, lsn=8)
    fresh = make_fabric(with_dataplane=True)
    restore_fabric(fresh, checkpoint)
    assert fresh.digest() == fabric.digest()
    survivor = sorted(fresh.tenants)[0]
    assert fresh.probe_tenant(survivor)


def test_fabric_restore_rejects_unknown_switch():
    fabric = populated_fabric()
    checkpoint = fabric_checkpoint(fabric, lsn=8)
    checkpoint["physical"]["ghost-switch"] = checkpoint["physical"][
        fabric.topology.switch_names[0]
    ]
    with pytest.raises(DurabilityError, match="unknown switch"):
        restore_fabric(make_fabric(), checkpoint)


# ----------------------------------------------------------------------
# Attach-side coordinators
# ----------------------------------------------------------------------
def test_controller_durability_journals_committed_ops(tmp_path, tiny_instance):
    controller = make_controller(tiny_instance)
    durability = ControllerDurability(tmp_path, checkpoint_every=0)
    durability.attach(controller)
    assert controller.admit(chain(1)).ok
    assert not controller.admit(chain(1)).ok  # duplicate tenant: refused
    assert controller.evict(1).ok
    durability.close()

    ops = [r.op for r in scan_wal(tmp_path / ControllerDurability.WAL_NAME).records]
    assert ops == ["admit", "evict"]  # the refused admit left no record
    manifest = read_manifest(tmp_path)
    assert manifest["kind"] == "controller"
    assert manifest["num_types"] == tiny_instance.num_types


def test_manifest_is_immutable_after_first_attach(tmp_path, tiny_instance):
    controller = make_controller(tiny_instance)
    ControllerDurability(tmp_path, checkpoint_every=0).attach(controller).close()
    original = (tmp_path / MANIFEST_NAME).read_text(encoding="utf-8")
    other = make_controller(tiny_instance, name="other-switch")
    ControllerDurability(tmp_path, checkpoint_every=0).attach(other).close()
    assert (tmp_path / MANIFEST_NAME).read_text(encoding="utf-8") == original


def test_auto_checkpoint_cadence_and_compaction(tmp_path, tiny_instance):
    controller = make_controller(tiny_instance)
    durability = ControllerDurability(tmp_path, checkpoint_every=3)
    durability.attach(controller)
    for t in range(1, 8):  # 7 committed ops -> checkpoints at LSN 3 and 6
        assert controller.admit(chain(t, rules=(1, 1, 1))).ok
    assert durability.checkpoints_taken == 2
    assert durability.store.lsns() == [3, 6]
    # Log is compacted to the records past the newest checkpoint.
    assert [r.lsn for r in durability.wal.records()] == [7]
    durability.close()


def test_checkpoint_every_zero_never_auto_checkpoints(tmp_path, tiny_instance):
    controller = make_controller(tiny_instance)
    durability = ControllerDurability(tmp_path, checkpoint_every=0)
    durability.attach(controller)
    for t in range(1, 6):
        assert controller.admit(chain(t, rules=(1, 1, 1))).ok
    assert durability.checkpoints_taken == 0
    assert durability.store.lsns() == []
    durability.close()


def test_fabric_durability_keeps_one_wal_shard_per_switch(tmp_path):
    fabric = make_fabric()
    durability = FabricDurability(tmp_path, checkpoint_every=0)
    durability.attach(fabric)
    names = fabric.topology.switch_names
    assert sorted(durability.shard_wals) == names
    for t in range(1, 5):
        assert fabric.admit(chain(t)).ok
    assert fabric.evict(2).ok
    # Fabric log is authoritative; shard logs audit their own switch's ops.
    assert [r.op for r in durability.wal.records()] == ["admit"] * 4 + ["evict"]
    assert sum(len(w) for w in durability.shard_wals.values()) == 5

    durability.checkpoint(fabric)
    # A fabric checkpoint supersedes and fully compacts every shard log.
    assert durability.wal.records() == []
    assert all(w.records() == [] for w in durability.shard_wals.values())
    assert durability.store.lsns() == [5]
    durability.close()
