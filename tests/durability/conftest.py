"""Shared fixtures for the durability suite: tiny switches, deterministic
chains, and churn streams sized for crash-sweep runs."""

import pytest

from repro.controller import ChurnConfig, SfcController
from repro.core.spec import SFC, ProblemInstance, SwitchSpec
from repro.fabric import FabricOrchestrator, FabricTopology
from repro.traffic.workload import WorkloadConfig

#: The 300+-event stream the fault sweep replays (kept module-level so the
#: oracle run and every crash run draw the identical stream).
SWEEP_CHURN = ChurnConfig(
    duration_s=20.0,
    arrival_rate_per_s=10.0,
    mean_lifetime_s=4.0,
    modify_fraction=0.25,
    workload=WorkloadConfig(
        num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
        rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0,
        max_bandwidth_gbps=4.0,
    ),
)

SWEEP_SEED = 20260806


@pytest.fixture
def tiny_spec() -> SwitchSpec:
    """3 stages x 4 blocks of 100 entries, 10 Gbps backplane."""
    return SwitchSpec(
        stages=3,
        blocks_per_stage=4,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=10.0,
    )


@pytest.fixture
def tiny_instance(tiny_spec) -> ProblemInstance:
    return ProblemInstance(
        switch=tiny_spec, sfcs=(), num_types=4, max_recirculations=1
    )


def chain(
    tenant_id: int,
    nf_types=(1, 2, 3),
    rules=(10, 10, 10),
    bandwidth_gbps: float = 1.0,
) -> SFC:
    """A small deterministic chain request for tenant ``tenant_id``."""
    return SFC(
        name=f"tenant-{tenant_id}",
        nf_types=tuple(nf_types),
        rules=tuple(rules),
        bandwidth_gbps=bandwidth_gbps,
        tenant_id=tenant_id,
    )


def make_controller(
    tiny_instance: ProblemInstance, with_dataplane: bool = False, **kwargs
) -> SfcController:
    return SfcController(tiny_instance, with_dataplane=with_dataplane, **kwargs)


def make_fabric(
    num_switches: int = 4, with_dataplane: bool = False, **kwargs
) -> FabricOrchestrator:
    """A small homogeneous full-mesh fabric for sweep runs: per-switch
    capacity low enough that churn forces spillover and real evictions."""
    spec = SwitchSpec(
        stages=4,
        blocks_per_stage=6,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=60.0,
    )
    topology = FabricTopology.full_mesh(
        num_switches, spec=spec, link_capacity_gbps=100.0, max_recirculations=1
    )
    return FabricOrchestrator(
        topology, num_types=6, with_dataplane=with_dataplane, **kwargs
    )
