"""Checkpoint damage beyond what retention can hide, and the atomic-rename
crash windows.

Two escalations past ``test_store_skips_corrupt_latest``:

* **Every retained checkpoint corrupt.**  With the WAL uncompacted recovery
  must fall back to the empty state + a full replay — landing bit-identical
  — and say so in a recovery *note* (a silent fallback would hide real disk
  damage).  With the WAL compacted the fallback cannot reach the committed
  state, and recovery must *fail loudly* instead of serving a partial one.
* **Crashes inside the rename windows** (checkpoint write and WAL
  compaction, between ``os.replace`` and the directory fsync): whichever
  side of the window death strikes, recovery lands on the committed digest.
"""

import pytest

from repro.durability import (
    CHECKPOINT_SITES,
    CrashError,
    CrashPoint,
    FabricDurability,
    FaultInjector,
    recover_fabric,
)
from repro.durability.checkpoint import CheckpointStore, fabric_checkpoint
from tests.durability.conftest import chain, make_fabric


def corrupt_every_checkpoint(directory) -> int:
    store = CheckpointStore(directory)
    lsns = store.lsns()
    for lsn in lsns:
        path = store.path_for(lsn)
        path.write_text('{"crc": 0, "checkpoint": {"lsn": %d}}' % lsn,
                        encoding="utf-8")
    return len(lsns)


def test_all_corrupt_checkpoints_fall_back_to_full_replay(tmp_path):
    fabric = make_fabric()
    durability = FabricDurability(tmp_path, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    for t in range(1, 8):
        fabric.admit(chain(t))
    # Checkpoints without compaction: the full WAL stays on disk.
    durability.store.save(fabric_checkpoint(fabric, durability.wal.last_lsn))
    fabric.admit(chain(8))
    durability.store.save(fabric_checkpoint(fabric, durability.wal.last_lsn))
    expected = fabric.digest()
    durability.close()

    damaged = corrupt_every_checkpoint(tmp_path)
    assert damaged == 2
    recovered, report = recover_fabric(tmp_path)
    assert report.ok, report.problems
    assert report.checkpoint_lsn == 0  # none loaded: empty state + replay
    assert report.replayed == 8
    assert recovered.digest() == expected
    assert any("falling back to empty state" in note for note in report.notes)


def test_all_corrupt_checkpoints_with_compacted_wal_fail_loudly(tmp_path):
    """Once compaction has dropped the early records, a corrupt checkpoint
    set is unrecoverable — and recovery must say so, not serve a tail-only
    fabric as if it were whole."""
    fabric = make_fabric()
    durability = FabricDurability(
        tmp_path, fsync="always", checkpoint_every=0, keep_checkpoints=1
    )
    durability.attach(fabric)
    for t in range(1, 8):
        fabric.admit(chain(t))
    durability.checkpoint(fabric)  # compacts the WAL behind base_lsn
    fabric.admit(chain(8))
    durability.close()

    assert corrupt_every_checkpoint(tmp_path) == 1
    _recovered, report = recover_fabric(tmp_path)
    assert not report.ok
    assert any("unrecoverable" in p for p in report.problems)
    assert any("falling back to empty state" in note for note in report.notes)


@pytest.mark.parametrize("site", CHECKPOINT_SITES)
@pytest.mark.parametrize("ordinal", [1, 2])
def test_rename_window_crashes_recover_bit_identical(tmp_path, site, ordinal):
    fabric = make_fabric()
    durability = FabricDurability(
        tmp_path,
        fsync="always",
        checkpoint_every=4,
        fault_hook=FaultInjector(CrashPoint(site, at=ordinal)),
    )
    durability.attach(fabric)
    committed = {0: fabric.digest()}
    with pytest.raises(CrashError):
        for t in range(1, 40):
            fabric.admit(chain(t))
            committed[durability.wal.last_lsn] = fabric.digest()
    # Death struck inside an op's auto-checkpoint: the op itself committed
    # (mutation + journal precede the checkpoint), so its digest is the
    # fabric's current state.
    committed.setdefault(durability.wal.last_lsn, fabric.digest())
    durability.abort()

    recovered, report = recover_fabric(tmp_path)
    assert report.ok, report.problems
    lsn = max(report.last_lsn, report.checkpoint_lsn)
    assert recovered.digest() == committed[lsn]
    assert recovered.check_invariant() == []
