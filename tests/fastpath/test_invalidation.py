"""Unit tests for plan-cache invalidation: the precise RuntimeAPI notify
path, refresh-only rollbacks, and the lazy generation check that catches
writes bypassing the hook."""

from __future__ import annotations

import pytest

from repro.core.spec import SwitchSpec
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.runtime_api import OpType, RuntimeAPI, WriteOp
from repro.dataplane.table import (
    MatchActionTable,
    MatchField,
    MatchKind,
    TableEntry,
)
from repro.fastpath import FastPathEngine


def acl_entry(tenant_id, lo=0, hi=65535, action="permit", params=None):
    return TableEntry(
        match={"tenant_id": tenant_id, "dst_port": (lo, hi)},
        action=action, params=params or {},
    )


@pytest.fixture()
def pipeline():
    pl = SwitchPipeline(
        spec=SwitchSpec(stages=1, blocks_per_stage=8), max_passes=2
    )
    t = MatchActionTable(
        "acl",
        key=[
            MatchField("tenant_id", MatchKind.EXACT),
            MatchField("dst_port", MatchKind.RANGE),
        ],
    )
    t.insert(acl_entry(1))
    t.insert(acl_entry(2))
    pl.stage(0).install_table(t)
    return pl


@pytest.fixture()
def engine(pipeline):
    engine = FastPathEngine.attach(pipeline, backend="python")
    engine.plan_for(1)
    engine.plan_for(2)
    assert engine.cached_plans == 2
    return engine


def test_write_invalidates_exactly_the_named_tenant(pipeline, engine):
    api = RuntimeAPI(pipeline)
    assert api.insert("acl", acl_entry(1, 0, 80, action="drop")).ok
    # Tenant 1's plan dropped; tenant 2's merely refreshed in place.
    assert engine.cached_plans == 1
    assert engine.stats["invalidations"] == 1
    assert engine.stats["refreshes"] == 1
    compiles = engine.stats["compiles"]
    plan2 = engine.plan_for(2)
    assert engine.stats["compiles"] == compiles  # cache hit, no recompile
    assert plan2.is_current(pipeline)
    engine.plan_for(1)
    assert engine.stats["compiles"] == compiles + 1


def test_unrelated_tenant_write_refreshes_everyone(pipeline, engine):
    api = RuntimeAPI(pipeline)
    assert api.insert("acl", acl_entry(999)).ok
    # 999 is in nobody's consts: both plans survive, refreshed.
    assert engine.cached_plans == 2
    assert engine.stats["invalidations"] == 0
    assert engine.stats["refreshes"] == 2
    for tenant in (1, 2):
        assert engine.plan_for(tenant).is_current(pipeline)


def test_wildcard_tenant_write_invalidates_everyone(pipeline, engine):
    api = RuntimeAPI(pipeline)
    wildcard = TableEntry(
        match={"dst_port": (0, 65535)}, action="drop", params={}
    )
    assert api.insert("acl", wildcard).ok
    assert engine.cached_plans == 0
    assert engine.stats["invalidations"] == 2


def test_write_to_tenantless_table_invalidates_everyone(pipeline, engine):
    t = MatchActionTable(
        "global_acl", key=[MatchField("dst_port", MatchKind.RANGE)]
    )
    pipeline.stage(0).install_table(t)
    engine.invalidate_all()
    engine.plan_for(1)
    engine.plan_for(2)
    api = RuntimeAPI(pipeline)
    entry = TableEntry(match={"dst_port": (0, 10)}, action="drop", params={})
    assert api.insert("global_acl", entry).ok
    # No tenant_id in the key: any entry can match any tenant's packets.
    assert engine.cached_plans == 0


def test_rolled_back_batch_only_refreshes(pipeline, engine):
    api = RuntimeAPI(pipeline)
    result = api.write([
        WriteOp(OpType.INSERT, "acl", acl_entry(1, 0, 80, action="drop")),
        # Deleting a never-inserted entry fails the batch -> rollback.
        WriteOp(OpType.DELETE, "acl", acl_entry(77)),
    ])
    assert not result.ok
    # Net no-op: both plans kept, both still current (generation advanced
    # by the insert+restore, so this requires the refresh notification).
    assert engine.cached_plans == 2
    assert engine.stats["invalidations"] == 0
    compiles = engine.stats["compiles"]
    for tenant in (1, 2):
        assert engine.plan_for(tenant).is_current(pipeline)
    assert engine.stats["compiles"] == compiles


def test_direct_table_write_caught_lazily(pipeline, engine):
    # Bypass RuntimeAPI entirely (the virtualizer's install path).
    pipeline.stage(0).table("acl").insert(acl_entry(1, 0, 9, action="drop"))
    compiles = engine.stats["compiles"]
    engine.plan_for(1)
    assert engine.stats["compiles"] == compiles + 1  # lazy staleness
    assert engine.stats["invalidations"] >= 1


def test_fallback_plans_invalidate_conservatively(pipeline, engine):
    t = pipeline.stage(0).table("acl")
    t.insert(acl_entry(3, action="mystery_action"))
    plan3 = engine.plan_for(3)
    assert plan3.fallback_reason is not None
    # Even an unrelated tenant's write drops the negative entry: churn may
    # have removed whatever made the chain uncompilable.
    api = RuntimeAPI(pipeline)
    assert api.insert("acl", acl_entry(999)).ok
    assert 3 not in [
        tid for tid in (1, 2, 3) if engine._plans.get(tid) is not None
    ]


def test_max_passes_change_invalidates(pipeline, engine):
    plan = engine.plan_for(1)
    pipeline.max_passes = 3
    assert not plan.is_current(pipeline)
    compiles = engine.stats["compiles"]
    engine.plan_for(1)
    assert engine.stats["compiles"] == compiles + 1


def test_invalidate_tenant_and_all(pipeline, engine):
    engine.invalidate_tenant(1)
    assert engine.cached_plans == 1
    engine.invalidate_all()
    assert engine.cached_plans == 0
