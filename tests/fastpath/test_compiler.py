"""Unit tests for the chain compiler: folding, filtering, ranking,
predicate normalization, and uncompilable classification."""

from __future__ import annotations

from repro.core.spec import SwitchSpec
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import (
    MatchActionTable,
    MatchField,
    MatchKind,
    TableEntry,
)
from repro.fastpath.compiler import (
    CompiledEntry,
    FoldedStep,
    MatchStep,
    compile_chain,
)


def make_pipeline(*tables, max_passes=2):
    pipeline = SwitchPipeline(
        spec=SwitchSpec(stages=1, blocks_per_stage=8), max_passes=max_passes
    )
    for t in tables:
        pipeline.stage(0).install_table(t)
    return pipeline


def map_table(name="tenant_map", entries=()):
    t = MatchActionTable(
        name,
        key=[
            MatchField("tenant_id", MatchKind.EXACT),
            MatchField("pass_id", MatchKind.EXACT),
        ],
    )
    for e in entries:
        t.insert(e)
    return t


def acl_table(name="acl", entries=()):
    t = MatchActionTable(
        name,
        key=[
            MatchField("tenant_id", MatchKind.EXACT),
            MatchField("dst_ip", MatchKind.LPM),
            MatchField("dst_port", MatchKind.RANGE),
        ],
    )
    for e in entries:
        t.insert(e)
    return t


def test_const_key_table_folds_to_one_winner():
    t = map_table(entries=[
        TableEntry(match={"tenant_id": 5, "pass_id": 1},
                   action="set_dscp", params={"dscp": 9}),
        TableEntry(match={"tenant_id": 6, "pass_id": 1},
                   action="drop", params={}),
    ])
    plan = compile_chain(make_pipeline(t), 5)
    assert plan.fallback_reason is None
    step = plan.passes[0][0]
    assert isinstance(step, FoldedStep)
    assert step.hit and step.binding.action == "set_dscp"
    assert step.binding.writes == (("dscp", 9),)
    # Pass 2 has no matching map entry: a uniform miss on the default.
    step2 = plan.passes[1][0]
    assert isinstance(step2, FoldedStep)
    assert not step2.hit


def test_fold_probe_does_not_touch_counters():
    t = map_table(entries=[
        TableEntry(match={"tenant_id": 5, "pass_id": 1},
                   action="permit", params={}),
    ])
    compile_chain(make_pipeline(t), 5)
    assert t.hits == 0 and t.misses == 0


def test_other_tenants_filtered_and_const_preds_dropped():
    mine = TableEntry(
        match={"tenant_id": 1, "dst_ip": (0x0A000000, 8),
               "dst_port": (0, 1024)},
        action="permit", params={},
    )
    other = TableEntry(
        match={"tenant_id": 2, "dst_ip": (0x0A000000, 8),
               "dst_port": (0, 1024)},
        action="drop", params={},
    )
    plan = compile_chain(make_pipeline(acl_table(entries=[mine, other])), 1)
    step = plan.passes[0][0]
    assert isinstance(step, MatchStep)
    assert len(step.entries) == 1
    preds = step.entries[0].preds
    # tenant_id folded away; LPM + RANGE normalized.
    assert ("mask", "dst_ip", 0xFF000000, 0x0A000000) in preds
    assert ("range", "dst_port", 0, 1024) in preds
    assert not any(p[1] == "tenant_id" for p in preds)


def test_constant_filtering_to_empty_becomes_uniform_miss():
    only_other = TableEntry(
        match={"tenant_id": 2, "dst_ip": (0, 0), "dst_port": (0, 65535)},
        action="drop", params={},
    )
    plan = compile_chain(make_pipeline(acl_table(entries=[only_other])), 1)
    step = plan.passes[0][0]
    assert isinstance(step, FoldedStep)
    assert not step.hit and step.binding.action == "no_op"


def test_entries_ranked_priority_then_specificity_then_order():
    def entry(prio, length, dscp):
        return TableEntry(
            match={"tenant_id": 1, "dst_ip": (0x0A000000, length),
                   "dst_port": (0, 65535)},
            action="set_dscp", params={"dscp": dscp}, priority=prio,
        )

    # Insert deliberately out of rank order.
    t = acl_table(entries=[entry(1, 8, 0), entry(5, 8, 1),
                           entry(5, 24, 2), entry(5, 24, 3)])
    plan = compile_chain(make_pipeline(t), 1)
    step = plan.passes[0][0]
    dscps = [ce.binding.writes[0][1] for ce in step.entries]
    # priority 5 before 1; /24 before /8; equal rank by insertion order.
    assert dscps == [2, 3, 1, 0]


def test_wildcards_normalize_away():
    e = TableEntry(
        match={"tenant_id": 1, "dst_ip": (0, 0), "dst_port": (0, 9)},
        action="permit", params={},
    )
    plan = compile_chain(make_pipeline(acl_table(entries=[e])), 1)
    step = plan.passes[0][0]
    assert step.entries[0].preds == (("range", "dst_port", 0, 9),)


def test_folded_set_tenant_rewrites_group_constant():
    mapping = map_table(entries=[
        TableEntry(match={"tenant_id": 7, "pass_id": 1},
                   action="set_tenant", params={"wire_id": 1007}),
    ])
    downstream = acl_table(entries=[
        TableEntry(match={"tenant_id": 1007, "dst_ip": (0, 0),
                          "dst_port": (0, 65535)},
                   action="permit", params={}),
    ])
    plan = compile_chain(make_pipeline(mapping, downstream), 7)
    assert plan.fallback_reason is None
    assert plan.consts == frozenset({7, 1007})
    # The downstream table filtered on the *wire* ID and kept the entry.
    step = plan.passes[0][1]
    assert isinstance(step, MatchStep) and len(step.entries) == 1


def test_set_tenant_in_match_step_is_uncompilable():
    t = acl_table(entries=[
        TableEntry(match={"tenant_id": 1, "dst_ip": (0x0A000000, 24),
                          "dst_port": (0, 65535)},
                   action="set_tenant", params={"wire_id": 9}),
    ])
    plan = compile_chain(make_pipeline(t), 1)
    assert plan.fallback_reason is not None
    assert "set_tenant" in plan.fallback_reason
    assert plan.passes == []


def test_meter_police_is_uncompilable():
    from repro.dataplane.registers import MeterArray

    t = acl_table(entries=[
        TableEntry(match={"tenant_id": 1, "dst_ip": (0, 0),
                          "dst_port": (0, 65535)},
                   action="meter_police",
                   params={"meter": MeterArray("m", 4, 1000)}),
    ])
    plan = compile_chain(make_pipeline(t), 1)
    assert plan.fallback_reason is not None


def test_overridden_action_is_uncompilable():
    pipeline = make_pipeline(acl_table(entries=[
        TableEntry(match={"tenant_id": 1, "dst_ip": (0, 0),
                          "dst_port": (0, 65535)},
                   action="permit2", params={}),
    ]))
    # A user-registered action can do anything: never compile it.
    pipeline.actions.register("permit2", lambda packet, params: None)
    plan = compile_chain(pipeline, 1)
    assert plan.fallback_reason is not None
    assert "permit2" in plan.fallback_reason


def test_unknown_action_is_uncompilable_not_crash():
    t = acl_table(entries=[
        TableEntry(match={"tenant_id": 1, "dst_ip": (0, 0),
                          "dst_port": (0, 65535)},
                   action="warp_drive", params={}),
    ])
    plan = compile_chain(make_pipeline(t), 1)
    assert plan.fallback_reason is not None
    assert "warp_drive" in plan.fallback_reason


def test_scalar_actions_keep_the_real_function():
    from repro.dataplane import action as act

    t = acl_table(entries=[
        TableEntry(match={"tenant_id": 1, "dst_ip": (0, 0),
                          "dst_port": (0, 65535)},
                   action="count", params={"counter": "c"}),
    ])
    plan = compile_chain(make_pipeline(t), 1)
    step = plan.passes[0][0]
    binding = step.entries[0].binding
    assert binding.kind == "scalar"
    assert binding.fn is act.act_count
    assert binding.params == {"counter": "c"}


def test_plan_records_invalidation_keys():
    t = acl_table()
    pipeline = make_pipeline(t)
    plan = compile_chain(pipeline, 1)
    assert plan.structure_gen == pipeline.structure_generation
    assert plan.is_current(pipeline)
    t.insert(TableEntry(
        match={"tenant_id": 1, "dst_ip": (0, 0), "dst_port": (0, 65535)},
        action="permit", params={},
    ))
    assert not plan.is_current(pipeline)  # generation moved


def test_plan_tracks_structure_generation():
    pipeline = make_pipeline(acl_table())
    plan = compile_chain(pipeline, 1)
    pipeline.stage(0).install_table(map_table("late_map"))
    assert not plan.is_current(pipeline)
