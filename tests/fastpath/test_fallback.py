"""Unit tests for fast-path fallback behaviour: uncompilable tenants take
the interpreter, backend selection degrades without numpy, and special
packets (traced / sampled / mid-recirculation / pre-dropped) route to the
oracle."""

from __future__ import annotations

import pytest

from repro.core.spec import SwitchSpec
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import (
    MatchActionTable,
    MatchField,
    MatchKind,
    TableEntry,
)
from repro.errors import DataPlaneError
from repro.fastpath import HAS_NUMPY, FastPathEngine
from repro.fastpath.kernels import NumpyKernel, PythonKernel


def build_pipeline():
    pl = SwitchPipeline(
        spec=SwitchSpec(stages=1, blocks_per_stage=8), max_passes=2
    )
    t = MatchActionTable(
        "acl",
        key=[
            MatchField("tenant_id", MatchKind.EXACT),
            MatchField("dst_port", MatchKind.RANGE),
        ],
    )
    t.insert(TableEntry(
        match={"tenant_id": 1, "dst_port": (0, 1023)},
        action="set_dscp", params={"dscp": 7},
    ))
    # Tenant 2's chain uses an action the kernels refuse to reproduce.
    t.insert(TableEntry(
        match={"tenant_id": 2, "dst_port": (0, 65535)},
        action="mystery", params={},
    ))
    pl.stage(0).install_table(t)
    pl.actions.register("mystery", lambda packet, params: None)
    return pl


def batch(tenant_id, n=16):
    return [Packet(tenant_id=tenant_id, dst_port=80 + i) for i in range(n)]


def test_uncompilable_tenant_takes_interpreter_and_matches_it():
    ref, got = build_pipeline(), build_pipeline()
    engine = FastPathEngine.attach(got, backend="python")
    ref_results = ref.process_batch(batch(2) + batch(1))
    got_results = got.process_batch(batch(2) + batch(1))
    for a, b in zip(ref_results, got_results):
        assert (a.packet.dscp, a.packet.dropped, a.passes) == (
            b.packet.dscp, b.packet.dropped, b.passes
        )
    assert engine.stats["fallback_packets"] == 16
    assert engine.stats["interpreted_packets"] == 16
    assert engine.stats["compiled_packets"] == 16


def test_negative_plan_is_cached_not_reclassified():
    pipeline = build_pipeline()
    engine = FastPathEngine.attach(pipeline, backend="python")
    pipeline.process_batch(batch(2))
    compiles = engine.stats["compiles"]
    pipeline.process_batch(batch(2))
    assert engine.stats["compiles"] == compiles  # negative entry reused
    assert engine.stats["cache_hits"] >= 1


def test_special_packets_route_to_interpreter():
    pipeline = build_pipeline()
    engine = FastPathEngine.attach(pipeline, backend="python")
    mid_recirc = Packet(tenant_id=1, dst_port=80, pass_id=2)
    pre_dropped = Packet(tenant_id=1, dst_port=81)
    pre_dropped.dropped = True
    results = pipeline.process_batch([mid_recirc, pre_dropped] + batch(1, 4))
    assert engine.stats["interpreted_packets"] == 2
    assert engine.stats["compiled_packets"] == 4
    assert results[1].packet.dropped


def test_trace_batches_are_fully_interpreted():
    pipeline = build_pipeline()
    engine = FastPathEngine.attach(pipeline, backend="python")
    results = pipeline.process_batch(batch(1, 4), trace=True)
    assert engine.stats["interpreted_packets"] == 4
    assert engine.stats["compiled_packets"] == 0
    assert all(r.postcard is not None for r in results)


def test_explicit_python_backend():
    pipeline = build_pipeline()
    engine = FastPathEngine.attach(pipeline, backend="python")
    assert isinstance(engine.kernel, PythonKernel)
    assert engine.backend == "python"


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy not installed")
def test_auto_prefers_numpy_when_available():
    engine = FastPathEngine.attach(build_pipeline())
    assert isinstance(engine.kernel, NumpyKernel)
    assert engine.backend == "numpy"


def test_auto_degrades_to_python_without_numpy(monkeypatch):
    import repro.fastpath.engine as engine_mod

    monkeypatch.setattr(engine_mod, "HAS_NUMPY", False)
    engine = FastPathEngine.attach(build_pipeline(), backend="auto")
    assert isinstance(engine.kernel, PythonKernel)
    assert engine.backend == "python"


def test_numpy_backend_errors_without_numpy(monkeypatch):
    import repro.fastpath.engine as engine_mod

    monkeypatch.setattr(engine_mod, "HAS_NUMPY", False)
    with pytest.raises(DataPlaneError, match="repro\\[fast\\]"):
        FastPathEngine(build_pipeline(), backend="numpy")


def test_unknown_backend_rejected():
    with pytest.raises(DataPlaneError, match="unknown fastpath backend"):
        FastPathEngine(build_pipeline(), backend="fortran")


def test_detach_restores_interpreter():
    pipeline = build_pipeline()
    engine = FastPathEngine.attach(pipeline, backend="python")
    assert pipeline.fastpath is engine
    engine.detach()
    assert pipeline.fastpath is None
    pipeline.process_batch(batch(1, 4))
    assert engine.stats["batches"] == 0  # no longer routed here
