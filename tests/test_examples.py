"""Smoke tests: every example script runs to completion (their internal
asserts double as integration checks)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples narrate what they do"
    if script.stem == "runtime_update_scenario":
        # The controller-driven scenario must end on the churn invariant.
        assert "invariant OK" in result.stdout
        assert "modified its chain" in result.stdout


def test_all_six_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert {
        "quickstart",
        "multi_tenant_dataplane",
        "runtime_update_scenario",
        "p4_chain_compilation",
        "trace_replay",
        "offload_savings",
    } <= names
