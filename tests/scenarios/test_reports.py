"""The None-not-NaN reporting convention: phases, campaigns and fills
with zero successful admits must report explicit ``None`` percentiles,
serialize to JSON, and describe themselves without crashing."""

import json

import numpy as np

from repro.controller.events import ChurnReport
from repro.scenarios.dsl import (
    FaultAction,
    LoadCurve,
    PhaseSpec,
    TopologySpec,
)
from repro.scenarios.runner import run_campaign
from repro.scenarios.scale import FillReport
from tests.scenarios.conftest import TINY_SWITCH, make_tiny_spec


def _dead_switch_spec():
    """A one-switch campaign whose only switch is drained the instant the
    phase opens: every arrival is rejected, so zero admits ever succeed."""
    return make_tiny_spec(
        name="dead-switch",
        description="all arrivals rejected: the sole switch drains at t=0",
        topology=TopologySpec(
            kind="full_mesh", num_switches=1, switch=TINY_SWITCH,
            max_recirculations=1, link_capacity_gbps=100.0,
        ),
        phases=(
            PhaseSpec(
                name="dead", duration_s=6.0,
                load=LoadCurve(kind="constant", rate_per_s=4.0),
                mean_lifetime_s=5.0,
                faults=(FaultAction(at_s=0.0, kind="drain", switch="sw0"),),
            ),
        ),
    )


class TestZeroAdmitCampaign:
    def test_phase_percentiles_are_explicit_none(self):
        _, report = run_campaign(_dead_switch_spec())
        phase = report.phases[0]
        summary = phase.summary()
        assert summary["admitted"] == 0.0
        assert summary["admit_p50_ms"] is None
        assert summary["admit_p99_ms"] is None
        assert report.ok  # rejection is not an invariant violation

    def test_campaign_summary_serializes_and_describes(self):
        _, report = run_campaign(_dead_switch_spec())
        text = json.dumps(report.summary())
        assert "NaN" not in text
        assert report.summary()["admit_p50_ms"] is None
        assert "n/a" in report.phases[0].describe()
        assert "invariant OK" in report.describe()

    def test_no_nan_anywhere_in_the_summary_tree(self):
        _, report = run_campaign(_dead_switch_spec())

        def walk(node):
            if isinstance(node, dict):
                for value in node.values():
                    walk(value)
            elif isinstance(node, list):
                for value in node:
                    walk(value)
            elif isinstance(node, float):
                assert not np.isnan(node)

        walk(report.summary())


class TestMergedChurnReports:
    def test_merged_empty_is_a_clean_zero_report(self):
        merged = ChurnReport.merged([])
        assert merged.num_events == 0
        summary = merged.summary()
        assert summary["admit_p50_ms"] is None
        assert summary["admit_p99_ms"] is None
        json.dumps(summary)
        assert "no successful admits" in merged.describe()

    def test_merged_concatenates_results_and_wall_time(self, tiny_spec):
        _, report = run_campaign(tiny_spec)
        merged = ChurnReport.merged(p.churn for p in report.phases)
        assert merged.num_events == sum(
            p.churn.num_events for p in report.phases
        )
        assert merged.summary()["admitted"] >= 1.0


class TestFillReportConvention:
    def test_empty_fill_reports_none_percentiles(self):
        report = FillReport(switches=4, offered=0)
        assert report.admission_rate == 0.0
        assert report.spillover_rate == 0.0
        assert report.latency_percentile(50) is None
        summary = report.summary()
        assert summary["admit_p50_us"] is None
        assert summary["admit_p99_us"] is None
        json.dumps(summary)

    def test_populated_fill_reports_real_percentiles(self):
        report = FillReport(
            switches=2, offered=4, admitted=2,
            latencies_s=np.array([1e-5, 3e-5]),
        )
        assert report.latency_percentile(50) is not None
        assert report.summary()["admit_p99_us"] > 0.0
