"""Tests for the declarative scenario DSL, compiler, campaign library,
runner and the capacity-planning scale mode."""
