"""DSL validation and serialization: every constructor guard raises a
:class:`ScenarioError`, round-trips are exact, and ``shrunk`` rescales
time without changing the campaign's shape."""

import math
from dataclasses import replace

import pytest

from repro.errors import ScenarioError
from repro.scenarios.dsl import (
    FaultAction,
    LoadCurve,
    ModifyBurst,
    PhaseSpec,
    ScenarioSpec,
    load_spec,
    save_spec,
)
from tests.scenarios.conftest import make_tiny_spec


class TestLoadCurve:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown load curve"):
            LoadCurve(kind="sawtooth")

    def test_non_constant_curves_need_a_peak(self):
        for kind in ("ramp", "sine", "spike"):
            with pytest.raises(ScenarioError, match="peak_per_s"):
                LoadCurve(kind=kind, rate_per_s=2.0)

    def test_rates_must_be_positive(self):
        with pytest.raises(ScenarioError):
            LoadCurve(rate_per_s=0.0)
        with pytest.raises(ScenarioError):
            LoadCurve(kind="ramp", rate_per_s=1.0, peak_per_s=-2.0)

    def test_constant_rate(self):
        curve = LoadCurve(kind="constant", rate_per_s=3.0)
        assert curve.rate_at(0.0, 10.0) == 3.0
        assert curve.rate_at(9.9, 10.0) == 3.0
        assert curve.max_rate(10.0) == 3.0

    def test_ramp_is_linear_between_endpoints(self):
        curve = LoadCurve(kind="ramp", rate_per_s=2.0, peak_per_s=10.0)
        assert curve.rate_at(0.0, 10.0) == 2.0
        assert curve.rate_at(10.0, 10.0) == 10.0
        assert curve.rate_at(5.0, 10.0) == pytest.approx(6.0)

    def test_sine_troughs_at_phase_start_and_crests_mid_period(self):
        curve = LoadCurve(
            kind="sine", rate_per_s=4.0, peak_per_s=12.0, period_s=10.0
        )
        assert curve.rate_at(0.0, 40.0) == pytest.approx(4.0)
        assert curve.rate_at(5.0, 40.0) == pytest.approx(12.0)
        assert curve.rate_at(10.0, 40.0) == pytest.approx(4.0)
        assert curve.max_rate(40.0) == 12.0

    def test_spike_window_is_half_open(self):
        curve = LoadCurve(
            kind="spike", rate_per_s=2.0, peak_per_s=20.0,
            spike_start_frac=0.5, spike_width_frac=0.25,
        )
        assert curve.rate_at(4.9, 10.0) == 2.0
        assert curve.rate_at(5.0, 10.0) == 20.0
        assert curve.rate_at(7.4, 10.0) == 20.0
        assert curve.rate_at(7.5, 10.0) == 2.0

    def test_rates_never_exceed_the_thinning_envelope(self):
        for curve in (
            LoadCurve(kind="ramp", rate_per_s=1.0, peak_per_s=7.0),
            LoadCurve(kind="sine", rate_per_s=2.0, peak_per_s=9.0),
            LoadCurve(kind="spike", rate_per_s=3.0, peak_per_s=30.0),
        ):
            envelope = curve.max_rate(20.0)
            for i in range(81):
                assert curve.rate_at(i * 0.25, 20.0) <= envelope + 1e-12


class TestValidation:
    def test_fault_kinds(self):
        with pytest.raises(ScenarioError, match="unknown fault kind"):
            FaultAction(at_s=1.0, kind="reboot", switch="sw0")
        with pytest.raises(ScenarioError):
            FaultAction(at_s=-1.0, kind="drain", switch="sw0")
        with pytest.raises(ScenarioError):
            FaultAction(at_s=1.0, kind="drain", switch="")

    def test_burst_fraction_bounds(self):
        with pytest.raises(ScenarioError):
            ModifyBurst(at_s=1.0, fraction=0.0)
        with pytest.raises(ScenarioError):
            ModifyBurst(at_s=1.0, fraction=1.5)
        assert ModifyBurst(at_s=0.0, fraction=1.0).fraction == 1.0

    def test_fault_must_land_inside_its_phase(self):
        with pytest.raises(ScenarioError, match="outside"):
            PhaseSpec(
                name="p", duration_s=5.0,
                faults=(FaultAction(at_s=5.0, kind="drain", switch="sw0"),),
            )

    def test_burst_must_land_inside_its_phase(self):
        with pytest.raises(ScenarioError, match="outside"):
            PhaseSpec(
                name="p", duration_s=5.0,
                bursts=(ModifyBurst(at_s=6.0, fraction=0.5),),
            )

    def test_scenario_needs_phases_with_unique_names(self, tiny_spec):
        with pytest.raises(ScenarioError, match="no phases"):
            replace(tiny_spec, phases=())
        with pytest.raises(ScenarioError, match="repeat"):
            replace(tiny_spec, phases=(tiny_spec.phases[0],) * 2)

    def test_fault_switch_must_exist_in_topology(self, tiny_spec):
        bad = PhaseSpec(
            name="bad", duration_s=5.0,
            faults=(FaultAction(at_s=1.0, kind="drain", switch="sw99"),),
        )
        with pytest.raises(ScenarioError, match="unknown switch"):
            replace(tiny_spec, phases=tiny_spec.phases + (bad,))


class TestSpecGeometry:
    def test_duration_and_phase_bounds(self, tiny_spec):
        assert tiny_spec.duration_s == pytest.approx(19.0)
        bounds = tiny_spec.phase_bounds()
        assert [name for name, _s, _e in bounds] == ["fill", "fault", "settle"]
        assert bounds[0][1:] == (0.0, 6.0)
        assert bounds[1][1:] == (6.0, 14.0)
        assert bounds[2][1:] == (14.0, 19.0)

    def test_topology_build_matches_names(self, tiny_spec):
        topology = tiny_spec.topology.build()
        assert topology.switch_names == tiny_spec.topology.switch_names
        assert len(topology.switch_names) == 3

    def test_shrunk_rescales_every_time_field(self, tiny_spec):
        small = tiny_spec.shrunk(0.5)
        assert small.duration_s == pytest.approx(tiny_spec.duration_s * 0.5)
        fault = small.phases[1]
        assert fault.duration_s == pytest.approx(4.0)
        assert fault.mean_lifetime_s == pytest.approx(2.5)
        assert [a.at_s for a in fault.faults] == [1.0, 3.0]
        assert [b.at_s for b in fault.bursts] == [2.0]
        # Rates are untouched: shapes compress, intensities do not.
        assert fault.load.rate_per_s == tiny_spec.phases[1].load.rate_per_s

    def test_shrunk_rescales_sine_periods(self):
        spec = make_tiny_spec(
            phases=(
                PhaseSpec(
                    name="p", duration_s=10.0,
                    load=LoadCurve(
                        kind="sine", rate_per_s=2.0, peak_per_s=6.0,
                        period_s=4.0,
                    ),
                ),
            ),
        )
        assert spec.shrunk(0.25).phases[0].load.period_s == pytest.approx(1.0)

    def test_shrunk_rejects_nonpositive_scale(self, tiny_spec):
        with pytest.raises(ScenarioError):
            tiny_spec.shrunk(0.0)


class TestSerialization:
    def test_dict_round_trip_is_identity(self, tiny_spec):
        assert ScenarioSpec.from_dict(tiny_spec.to_dict()) == tiny_spec

    def test_json_round_trip_is_identity(self, tiny_spec):
        assert ScenarioSpec.from_json(tiny_spec.to_json()) == tiny_spec

    def test_garbage_json_raises_scenario_error(self):
        with pytest.raises(ScenarioError, match="unparseable"):
            ScenarioSpec.from_json("{not json")

    def test_save_load_json_file(self, tiny_spec, tmp_path):
        path = tmp_path / "tiny.json"
        save_spec(path, tiny_spec)
        assert load_spec(path) == tiny_spec

    def test_save_load_yaml_file(self, tiny_spec, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "tiny.yaml"
        save_spec(path, tiny_spec)
        assert load_spec(path) == tiny_spec

    def test_yaml_spec_must_be_a_mapping(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "bad.yml"
        path.write_text("- just\n- a\n- list\n")
        with pytest.raises(ScenarioError, match="not a mapping"):
            load_spec(path)

    def test_floats_survive_json_exactly(self, tiny_spec):
        odd = replace(
            tiny_spec,
            phases=(
                replace(tiny_spec.phases[0], duration_s=math.pi),
            ) + tiny_spec.phases[1:],
        )
        back = ScenarioSpec.from_json(odd.to_json())
        assert back.phases[0].duration_s == math.pi
