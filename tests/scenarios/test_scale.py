"""Scale-mode correctness: the columnar :class:`ScaleFabric` must make
*identical* admit/spillover decisions to a real fabric configured to the
matching accounting mode, audit its own aggregates, and stay exact under
eviction churn and tenant-column growth."""

import numpy as np
import pytest

from repro.controller.admission import AdmissionPolicy
from repro.core.spec import SwitchSpec
from repro.errors import ScenarioError
from repro.fabric import FabricOrchestrator, ModuloPartitioner
from repro.fabric.topology import FabricTopology, SwitchNode
from repro.rng import make_rng
from repro.scenarios.scale import ScaleFabric, run_fill, synthesize_fill
from tests.scenarios.conftest import TINY_SWITCH, TINY_WORKLOAD


def make_scale(num_switches=3, **kwargs):
    kwargs.setdefault("switch", TINY_SWITCH)
    kwargs.setdefault("max_recirculations", 1)
    kwargs.setdefault("num_types", TINY_WORKLOAD.num_types)
    return ScaleFabric(num_switches, **kwargs)


def make_real_twin(scale: ScaleFabric) -> FabricOrchestrator:
    """The real fabric the scale model claims to mirror: no links (so the
    stitch path never fires), modulo routing, raw greedy accounting."""
    topology = FabricTopology(
        nodes=[
            SwitchNode(
                name, spec=scale.switch,
                max_recirculations=scale.max_recirculations,
            )
            for name in scale.switch_names
        ],
        links=(),
    )
    return FabricOrchestrator(
        topology,
        num_types=scale.num_types,
        partitioner=ModuloPartitioner(),
        with_dataplane=False,
        policy=AdmissionPolicy(check_memory=False, check_backplane=False),
        consolidate=False,
        reserve_physical_block=False,
    )


class TestSynthesizeFill:
    def test_shapes_and_ranges(self):
        arrays = synthesize_fill(TINY_WORKLOAD, 500, rng=7)
        assert arrays.num_tenants == 500
        lo = TINY_WORKLOAD.avg_chain_length - TINY_WORKLOAD.chain_length_spread
        hi = TINY_WORKLOAD.avg_chain_length + TINY_WORKLOAD.chain_length_spread
        assert arrays.lengths.min() >= lo and arrays.lengths.max() <= hi
        assert arrays.rules.min() >= TINY_WORKLOAD.rules_min
        assert arrays.rules.max() <= TINY_WORKLOAD.rules_max
        assert arrays.bandwidths.max() <= TINY_WORKLOAD.max_bandwidth_gbps

    def test_types_are_sampled_without_replacement(self):
        arrays = synthesize_fill(TINY_WORKLOAD, 200, rng=7)
        for i in range(arrays.num_tenants):
            row = arrays.types[i, : int(arrays.lengths[i])]
            assert len(set(row.tolist())) == len(row)
            assert row.min() >= 1 and row.max() <= TINY_WORKLOAD.num_types

    def test_grid_bandwidths_land_on_the_half_gbps_grid(self):
        arrays = synthesize_fill(TINY_WORKLOAD, 300, rng=7, grid_bandwidth=True)
        doubled = arrays.bandwidths * 2.0
        assert np.array_equal(doubled, np.round(doubled))
        assert arrays.bandwidths.min() >= 0.5
        assert arrays.bandwidths.max() <= 4.0

    def test_same_seed_same_arrays(self):
        a = synthesize_fill(TINY_WORKLOAD, 100, rng=11)
        b = synthesize_fill(TINY_WORKLOAD, 100, rng=11)
        assert np.array_equal(a.lengths, b.lengths)
        assert np.array_equal(a.types, b.types)
        assert np.array_equal(a.rules, b.rules)
        assert np.array_equal(a.bandwidths, b.bandwidths)

    def test_sfc_materializer_matches_the_row(self):
        arrays = synthesize_fill(TINY_WORKLOAD, 10, rng=3)
        sfc = arrays.sfc(4)
        assert sfc.tenant_id == 4
        assert len(sfc.nf_types) == int(arrays.lengths[4])
        assert sfc.bandwidth_gbps == float(arrays.bandwidths[4])


class TestScaleFabricUnit:
    def test_admit_then_evict_restores_the_fabric_exactly(self):
        fabric = make_scale()
        before_free = fabric.stage_free.copy()
        ok, rank, reason = fabric.admit(5, [1, 2, 3], [2, 2, 2], 1.5)
        assert ok and reason is None
        assert fabric.live_tenants == 1
        assert not np.array_equal(before_free, fabric.stage_free)
        assert fabric.evict(5)
        assert np.array_equal(before_free, fabric.stage_free)
        assert fabric.used_bw.sum() == 0.0
        assert fabric.live_tenants == 0

    def test_duplicate_and_malformed_admits_are_rejected(self):
        fabric = make_scale()
        assert fabric.admit(1, [1, 2], [1, 1], 1.0)[0]
        ok, _rank, reason = fabric.admit(1, [1, 2], [1, 1], 1.0)
        assert not ok and reason == "duplicate-tenant"
        too_long = list(range(1, fabric.K + 2))
        ok, _rank, reason = fabric.admit(2, [1] * (fabric.K + 1), [1] * (fabric.K + 1), 1.0)
        assert not ok and reason == "chain-too-long"
        assert len(too_long) > fabric.K
        ok, _rank, reason = fabric.admit(3, [1, 99], [1, 1], 1.0)
        assert not ok and reason == "unknown-nf-type"

    def test_evict_of_unknown_tenant_is_a_noop(self):
        fabric = make_scale()
        assert not fabric.evict(12345)
        assert fabric.check() == []

    def test_modulo_routing_starts_at_tenant_mod_n(self):
        fabric = make_scale(num_switches=3)
        for tenant in range(3):
            ok, rank, _ = fabric.admit(tenant, [1], [1], 0.5)
            assert ok and rank == 0
            assert int(fabric._t_switch[tenant]) == tenant % 3

    def test_tenant_columns_grow_on_demand(self):
        fabric = make_scale(capacity_hint=16)
        ok, _rank, _reason = fabric.admit(50_000, [1, 2], [1, 1], 1.0)
        assert ok
        assert fabric.live_tenants == 1
        assert len(fabric._t_switch) > 50_000
        assert fabric.check() == []

    def test_check_catches_drifted_aggregates(self):
        fabric = make_scale()
        assert fabric.admit(0, [1, 2, 3], [2, 2, 2], 1.0)[0]
        assert fabric.check() == []
        fabric.stage_free[0, 0] += 1
        problems = fabric.check()
        assert problems and "free-block" in problems[0]
        fabric.stage_free[0, 0] -= 1
        fabric.used_bw[0] += 0.5
        assert any("backplane" in p for p in fabric.check())
        fabric.used_bw[0] -= 0.5
        fabric.live_tenants += 1
        assert any("live counter" in p for p in fabric.check())

    def test_rejections_roll_back_cleanly(self):
        fabric = make_scale(num_switches=1)
        granted = 0
        for tenant in range(200):
            if fabric.admit(tenant, [1, 2, 3], [4, 4, 4], 3.5)[0]:
                granted += 1
        assert 0 < granted < 200  # the tight switch must saturate
        assert fabric.check() == []
        assert (fabric.stage_free >= 0).all()

    def test_summary_shape(self):
        fabric = make_scale()
        fabric.admit(0, [1], [1], 1.0)
        summary = fabric.summary()
        assert summary["live_tenants"] == 1
        assert len(summary["backplane_gbps"]) == 3
        assert len(summary["free_blocks"]) == 3


class TestDecisionIdentity:
    @pytest.mark.parametrize("num_switches", [1, 3, 4])
    def test_scale_matches_real_fabric_admit_for_admit(self, num_switches):
        arrays = synthesize_fill(
            TINY_WORKLOAD, 250, rng=20260807, grid_bandwidth=True
        )
        scale = make_scale(num_switches=num_switches)
        real = make_real_twin(scale)
        for i in range(arrays.num_tenants):
            j = int(arrays.lengths[i])
            ok_s, rank_s, _ = scale.admit(
                i, arrays.types[i, :j], arrays.rules[i, :j],
                float(arrays.bandwidths[i]),
            )
            result = real.admit(arrays.sfc(i))
            assert ok_s == result.ok, f"tenant {i} decision diverged"
            if ok_s:
                assert rank_s == result.spillover, f"tenant {i} rank diverged"
        assert scale.live_tenants == len(real.tenants)
        assert scale.check() == []
        assert real.check_invariant() == []

    def test_per_switch_backplane_matches_exactly(self):
        arrays = synthesize_fill(
            TINY_WORKLOAD, 200, rng=99, grid_bandwidth=True
        )
        scale = make_scale()
        real = make_real_twin(scale)
        for i in range(arrays.num_tenants):
            j = int(arrays.lengths[i])
            scale.admit(
                i, arrays.types[i, :j], arrays.rules[i, :j],
                float(arrays.bandwidths[i]),
            )
            real.admit(arrays.sfc(i))
        real_bw = {
            name: stats["backplane_gbps"]
            for name, stats in real.summary()["switches"].items()
        }
        for idx, name in enumerate(scale.switch_names):
            # Grid bandwidths make both sums exact: equality, not approx.
            assert float(scale.used_bw[idx]) == real_bw[name]

    def test_interleaved_evictions_stay_identical(self):
        arrays = synthesize_fill(
            TINY_WORKLOAD, 150, rng=41, grid_bandwidth=True
        )
        scale = make_scale()
        real = make_real_twin(scale)
        rng = make_rng(5)
        live: list[int] = []
        for i in range(arrays.num_tenants):
            j = int(arrays.lengths[i])
            ok_s, rank_s, _ = scale.admit(
                i, arrays.types[i, :j], arrays.rules[i, :j],
                float(arrays.bandwidths[i]),
            )
            result = real.admit(arrays.sfc(i))
            assert ok_s == result.ok
            if ok_s:
                assert rank_s == result.spillover
                live.append(i)
            if ok_s and len(live) > 3 and rng.random() < 0.4:
                victim = live.pop(int(rng.integers(0, len(live))))
                assert scale.evict(victim)
                assert real.evict(victim).ok
        assert scale.live_tenants == len(real.tenants)
        assert scale.check() == []
        assert real.check_invariant() == []


class TestRunFill:
    def test_counters_are_consistent(self):
        fabric = make_scale()
        arrays = synthesize_fill(TINY_WORKLOAD, 400, rng=13)
        report = run_fill(fabric, arrays, rng=13)
        assert report.offered == 400
        assert report.admitted + report.rejected == report.offered
        assert report.evicted == 0
        assert report.admitted == fabric.live_tenants
        assert len(report.latencies_s) == report.admitted
        assert report.check_problems == []
        assert 0.0 < report.admission_rate <= 1.0

    def test_churn_keeps_the_audit_clean(self):
        fabric = make_scale()
        arrays = synthesize_fill(TINY_WORKLOAD, 400, rng=17)
        report = run_fill(fabric, arrays, churn_fraction=0.5, rng=17)
        assert report.evicted > 0
        assert fabric.live_tenants == report.admitted - report.evicted
        assert report.check_problems == []

    def test_churn_fraction_is_validated(self):
        fabric = make_scale()
        arrays = synthesize_fill(TINY_WORKLOAD, 10, rng=1)
        with pytest.raises(ScenarioError):
            run_fill(fabric, arrays, churn_fraction=1.5)

    def test_tight_switch_spec_saturates(self):
        spec = SwitchSpec(
            stages=2, blocks_per_stage=2, block_bits=6400, rule_bits=64,
            capacity_gbps=5.0,
        )
        fabric = make_scale(num_switches=2, switch=spec)
        arrays = synthesize_fill(TINY_WORKLOAD, 300, rng=23)
        report = run_fill(fabric, arrays, rng=23)
        assert report.rejected > 0
        assert report.check_problems == []
