"""Property suite for the scenario DSL and compiler (Hypothesis):

* ``parse -> serialize -> parse`` is the identity, for dicts and JSON;
* the same ``(spec, seed)`` always compiles to a byte-identical JSONL
  trace (equal :func:`trace_digest`, equal event tuples);
* a saved campaign trace reloads verbatim (digest verified by the
  loader);
* ``shrunk`` rescales the campaign horizon exactly.
"""

import tempfile
from pathlib import Path

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.scenarios.compile import (  # noqa: E402
    compile_scenario,
    load_campaign,
    save_campaign,
)
from repro.scenarios.dsl import (  # noqa: E402
    FAULT_KINDS,
    FaultAction,
    LoadCurve,
    ModifyBurst,
    PhaseSpec,
    ScenarioSpec,
    TopologySpec,
)
from tests.scenarios.conftest import TINY_SWITCH, TINY_WORKLOAD  # noqa: E402

_rates = st.floats(0.5, 4.0, allow_nan=False, allow_infinity=False)

_curves = st.one_of(
    st.builds(LoadCurve, kind=st.just("constant"), rate_per_s=_rates),
    st.builds(
        LoadCurve, kind=st.just("ramp"), rate_per_s=_rates, peak_per_s=_rates
    ),
    st.builds(
        LoadCurve,
        kind=st.just("sine"),
        rate_per_s=_rates,
        peak_per_s=_rates,
        period_s=st.one_of(st.none(), st.floats(0.5, 5.0)),
    ),
    st.builds(
        LoadCurve,
        kind=st.just("spike"),
        rate_per_s=_rates,
        peak_per_s=st.floats(1.0, 10.0),
        spike_start_frac=st.floats(0.0, 1.0),
        spike_width_frac=st.floats(0.05, 1.0),
    ),
)


@st.composite
def _phases(draw, name: str) -> PhaseSpec:
    duration = draw(st.floats(2.0, 5.0))
    faults = ()
    if draw(st.booleans()):
        faults = (
            FaultAction(
                at_s=draw(st.floats(0.0, duration * 0.9)),
                kind=draw(st.sampled_from(FAULT_KINDS)),
                switch=draw(st.sampled_from(("sw0", "sw1"))),
            ),
        )
    bursts = ()
    if draw(st.booleans()):
        bursts = (
            ModifyBurst(
                at_s=draw(st.floats(0.0, duration * 0.9)),
                fraction=draw(st.floats(0.1, 1.0)),
            ),
        )
    return PhaseSpec(
        name=name,
        duration_s=duration,
        load=draw(_curves),
        mean_lifetime_s=draw(st.floats(1.0, 8.0)),
        modify_fraction=draw(st.floats(0.0, 1.0)),
        faults=faults,
        bursts=bursts,
    )


@st.composite
def _scenarios(draw) -> ScenarioSpec:
    num_phases = draw(st.integers(1, 3))
    return ScenarioSpec(
        name=draw(st.sampled_from(("alpha", "beta", "gamma"))),
        description=draw(st.sampled_from(("", "generated campaign"))),
        seed=draw(st.integers(0, 2**31 - 1)),
        partitioner=draw(st.sampled_from(("hash", "modulo"))),
        topology=TopologySpec(
            kind=draw(st.sampled_from(("full_mesh", "ring"))),
            num_switches=2,
            switch=TINY_SWITCH,
            max_recirculations=1,
            link_capacity_gbps=100.0,
        ),
        workload=TINY_WORKLOAD,
        phases=tuple(
            draw(_phases(f"phase{i}")) for i in range(num_phases)
        ),
    )


@settings(max_examples=40, deadline=None)
@given(spec=_scenarios())
def test_dict_round_trip_is_identity(spec):
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


@settings(max_examples=40, deadline=None)
@given(spec=_scenarios())
def test_json_round_trip_is_identity(spec):
    assert ScenarioSpec.from_json(spec.to_json()) == spec


@settings(max_examples=15, deadline=None)
@given(spec=_scenarios())
def test_same_seed_compiles_byte_identical(spec):
    first = compile_scenario(spec)
    second = compile_scenario(spec)
    assert first.digest() == second.digest()
    assert first.events == second.events
    # An explicit seed equal to the spec's default is the same stream.
    assert compile_scenario(spec, spec.seed).digest() == first.digest()


@settings(max_examples=10, deadline=None)
@given(spec=_scenarios())
def test_saved_campaign_reloads_verbatim(spec):
    campaign = compile_scenario(spec)
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "campaign.jsonl"
        save_campaign(path, campaign)
        loaded = load_campaign(path)
    assert loaded.spec == spec
    assert loaded.seed == campaign.seed
    assert loaded.digest() == campaign.digest()
    assert loaded.events == campaign.events


@settings(max_examples=25, deadline=None)
@given(spec=_scenarios(), scale=st.floats(0.1, 2.0))
def test_shrunk_scales_the_horizon_exactly(spec, scale):
    small = spec.shrunk(scale)
    assert small.duration_s == pytest.approx(spec.duration_s * scale)
    assert len(small.phases) == len(spec.phases)
    for before, after in zip(spec.phases, small.phases):
        assert len(after.faults) == len(before.faults)
        assert len(after.bursts) == len(before.bursts)
