"""Runner semantics: phase-boundary audits, drain/undrain dispatch,
deterministic replay, and campaign report plumbing."""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios.compile import CompiledCampaign, ScenarioEvent, compile_scenario
from repro.scenarios.runner import ScenarioRunner, build_fabric, run_campaign


class TestRun:
    def test_phases_audit_clean_and_in_order(self, tiny_spec):
        fabric, report = run_campaign(tiny_spec)
        assert [p.name for p in report.phases] == ["fill", "fault", "settle"]
        assert report.ok
        for phase in report.phases:
            assert phase.invariant_problems == []
            assert phase.digest  # the boundary digest is always recorded
        assert report.final_digest == report.phases[-1].digest
        assert fabric.check_invariant() == []

    def test_drains_are_dispatched_to_the_fabric(self, tiny_spec):
        fabric, report = run_campaign(tiny_spec)
        fault = report.phases[1]
        assert fault.drains == 1
        assert fault.undrains == 1
        counters = fabric.metrics_snapshot()["counters"]
        assert counters["scenario.drains"] == 1
        assert counters["scenario.undrains"] == 1
        assert counters["scenario.phases"] == 3
        # sw1 was undrained again, so nothing stays drained at the end.
        assert sorted(fabric.active_switches) == fabric.topology.switch_names

    def test_replay_is_deterministic(self, tiny_spec):
        _, first = run_campaign(tiny_spec)
        _, second = run_campaign(tiny_spec)
        assert first.trace_digest == second.trace_digest
        assert first.final_digest == second.final_digest
        assert [p.digest for p in first.phases] == [
            p.digest for p in second.phases
        ]

    def test_seed_override_changes_the_stream(self, tiny_spec):
        _, base = run_campaign(tiny_spec)
        _, other = run_campaign(tiny_spec, seed=tiny_spec.seed + 7)
        assert other.seed == tiny_spec.seed + 7
        assert other.trace_digest != base.trace_digest

    def test_summary_is_json_serializable(self, tiny_spec):
        _, report = run_campaign(tiny_spec)
        text = json.dumps(report.summary())
        assert "invariant_ok" in text
        merged = report.overall
        assert merged.num_events == sum(
            p.churn.num_events for p in report.phases
        )

    def test_event_before_first_marker_is_an_error(self, tiny_spec):
        compiled = compile_scenario(tiny_spec)
        arrival = next(e for e in compiled.events if e.kind == "arrival")
        headless = CompiledCampaign(
            spec=tiny_spec, seed=compiled.seed, events=(arrival,)
        )
        runner = ScenarioRunner(build_fabric(tiny_spec))
        with pytest.raises(ScenarioError, match="precedes the first phase"):
            runner.run(headless)

    def test_invariant_checks_can_be_disabled(self, tiny_spec):
        fabric = build_fabric(tiny_spec)
        runner = ScenarioRunner(fabric, check_invariants=False)
        report = runner.run(compile_scenario(tiny_spec))
        assert report.ok  # vacuously: no problems were looked for
        assert all(p.digest for p in report.phases)

    def test_wal_dir_journal_recovers(self, tiny_spec, tmp_path):
        from repro.durability import recover_fabric

        fabric, report = run_campaign(tiny_spec, wal_dir=tmp_path)
        recovered, recovery = recover_fabric(tmp_path, with_dataplane=False)
        assert recovery.ok, recovery.problems
        assert recovered.digest() == fabric.digest()

    def test_partitioner_override_changes_placement(self, tiny_spec):
        _, base = run_campaign(tiny_spec)
        _, modulo = run_campaign(tiny_spec, partitioner="modulo")
        # Same stream either way; the placement digest may differ, but both
        # honour the invariant at every boundary.
        assert modulo.trace_digest == base.trace_digest
        assert modulo.ok


class TestDescribe:
    def test_describe_mentions_every_phase(self, tiny_spec):
        _, report = run_campaign(tiny_spec)
        text = report.describe()
        for phase in report.phases:
            assert f"[{phase.name}]" in text
        assert "invariant OK" in text


class TestMarkerlessEvent:
    def test_marker_only_campaign_yields_empty_phases(self, tiny_spec):
        markers = tuple(
            ScenarioEvent(
                time_s=start, seq=i, kind="phase", phase=name
            )
            for i, (name, start, _end) in enumerate(tiny_spec.phase_bounds())
        )
        campaign = CompiledCampaign(spec=tiny_spec, seed=0, events=markers)
        report = ScenarioRunner(build_fabric(tiny_spec)).run(campaign)
        assert [p.name for p in report.phases] == [
            p.name for p in tiny_spec.phases
        ]
        assert all(p.churn.num_events == 0 for p in report.phases)
        assert report.ok
