"""Shared fixtures for the scenario suite: one small three-phase campaign
exercising every event kind (load curves, faults, bursts, modifies) over a
tight 3-switch fabric, plus the library workload."""

import pytest

from repro.core.spec import SwitchSpec
from repro.scenarios.dsl import (
    FaultAction,
    LoadCurve,
    ModifyBurst,
    PhaseSpec,
    ScenarioSpec,
    TopologySpec,
)
from repro.traffic.workload import WorkloadConfig

#: Per-switch spec used throughout the suite: tight enough that a few
#: dozen tenants produce spillover and rejections.
TINY_SWITCH = SwitchSpec(
    stages=4, blocks_per_stage=6, block_bits=6400, rule_bits=64,
    capacity_gbps=60.0,
)

TINY_WORKLOAD = WorkloadConfig(
    num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
    rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0, max_bandwidth_gbps=4.0,
)


def make_tiny_spec(**overrides) -> ScenarioSpec:
    """A fast three-phase campaign touching every DSL feature: constant
    and ramp curves, a drain/undrain pair, a modify burst and a modify
    mix.  ``overrides`` replace top-level :class:`ScenarioSpec` fields."""
    fields = dict(
        name="tiny",
        description="three short phases exercising every event kind",
        seed=42,
        topology=TopologySpec(
            kind="full_mesh", num_switches=3, switch=TINY_SWITCH,
            max_recirculations=1, link_capacity_gbps=100.0,
        ),
        workload=TINY_WORKLOAD,
        phases=(
            PhaseSpec(
                name="fill", duration_s=6.0,
                load=LoadCurve(kind="constant", rate_per_s=5.0),
                mean_lifetime_s=6.0,
            ),
            PhaseSpec(
                name="fault", duration_s=8.0,
                load=LoadCurve(kind="ramp", rate_per_s=4.0, peak_per_s=8.0),
                mean_lifetime_s=5.0,
                modify_fraction=0.3,
                faults=(
                    FaultAction(at_s=2.0, kind="drain", switch="sw1"),
                    FaultAction(at_s=6.0, kind="undrain", switch="sw1"),
                ),
                bursts=(ModifyBurst(at_s=4.0, fraction=0.5),),
            ),
            PhaseSpec(
                name="settle", duration_s=5.0,
                load=LoadCurve(kind="constant", rate_per_s=3.0),
                mean_lifetime_s=4.0,
            ),
        ),
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


@pytest.fixture
def tiny_spec() -> ScenarioSpec:
    """The suite's standard small campaign."""
    return make_tiny_spec()
