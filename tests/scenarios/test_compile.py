"""Compiler semantics: total event ordering, phase attribution, fault and
burst scheduling, churn-event conversion, and trace save/load with digest
verification."""

import json

import pytest

from repro.errors import ScenarioError
from repro.scenarios.compile import (
    EVENT_KINDS,
    ScenarioEvent,
    compile_scenario,
    load_campaign,
    save_campaign,
    trace_digest,
)


@pytest.fixture
def campaign(tiny_spec):
    return compile_scenario(tiny_spec)


class TestStreamShape:
    def test_events_are_totally_ordered(self, campaign):
        rank = {kind: i for i, kind in enumerate(EVENT_KINDS)}
        keys = [
            (e.time_s, rank[e.kind], e.tenant_id, e.switch or "")
            for e in campaign.events
        ]
        assert keys == sorted(keys)
        assert [e.seq for e in campaign.events] == list(range(campaign.num_events))

    def test_each_phase_opens_with_its_marker(self, campaign, tiny_spec):
        markers = [e for e in campaign.events if e.kind == "phase"]
        assert [m.phase for m in markers] == [p.name for p in tiny_spec.phases]
        assert [m.time_s for m in markers] == [
            start for _n, start, _e in tiny_spec.phase_bounds()
        ]
        assert campaign.events[0].kind == "phase"

    def test_events_carry_their_enclosing_phase(self, campaign, tiny_spec):
        bounds = tiny_spec.phase_bounds()
        for event in campaign.events:
            if event.kind == "phase":
                continue
            name = next(
                n for n, start, end in bounds
                if start <= event.time_s < end or (end == bounds[-1][2] and event.time_s >= start)
            )
            assert event.phase == name

    def test_departures_follow_their_arrivals(self, campaign):
        arrival_at = {
            e.tenant_id: e.time_s for e in campaign.events if e.kind == "arrival"
        }
        horizon = campaign.spec.duration_s
        for event in campaign.events:
            if event.kind == "departure":
                assert event.tenant_id in arrival_at
                assert event.time_s > arrival_at[event.tenant_id]
                assert event.time_s < horizon
            if event.kind == "modify":
                assert event.tenant_id in arrival_at
                assert event.sfc is not None
                assert event.sfc.tenant_id == event.tenant_id

    def test_tenant_ids_are_arrival_ordinals(self, campaign):
        arrivals = [e for e in campaign.events if e.kind == "arrival"]
        assert [e.tenant_id for e in arrivals] == list(range(len(arrivals)))
        for e in arrivals:
            assert e.sfc is not None
            assert e.sfc.name == f"tenant-{e.tenant_id}"


class TestFaultsAndBursts:
    def test_faults_land_at_their_scheduled_instants(self, campaign):
        drains = [e for e in campaign.events if e.kind == "drain"]
        undrains = [e for e in campaign.events if e.kind == "undrain"]
        assert [(e.time_s, e.switch) for e in drains] == [(8.0, "sw1")]
        assert [(e.time_s, e.switch) for e in undrains] == [(12.0, "sw1")]
        assert all(e.phase == "fault" for e in drains + undrains)

    def test_burst_modifies_hit_only_stream_live_tenants(self, campaign):
        burst_at = 10.0  # phase "fault" starts at 6.0, burst at_s=4.0
        bursts = [
            e for e in campaign.events
            if e.kind == "modify" and e.sfc is not None
            and e.sfc.name.endswith("-burst")
        ]
        assert bursts, "the tiny campaign's burst selected no tenants"
        arrival_at = {
            e.tenant_id: e.time_s for e in campaign.events if e.kind == "arrival"
        }
        depart_at = {
            e.tenant_id: e.time_s
            for e in campaign.events
            if e.kind == "departure"
        }
        for event in bursts:
            assert event.time_s == burst_at
            assert arrival_at[event.tenant_id] <= burst_at
            assert depart_at.get(event.tenant_id, float("inf")) > burst_at


class TestEvents:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ScenarioError, match="unknown event kind"):
            ScenarioEvent(time_s=0.0, seq=0, kind="explode", phase="p")

    def test_lifecycle_conversion(self, campaign):
        for event in campaign.events:
            if event.lifecycle:
                churn = event.to_churn_event()
                assert churn.tenant_id == event.tenant_id
                assert churn.kind.value == event.kind
            else:
                with pytest.raises(ScenarioError, match="no churn equivalent"):
                    event.to_churn_event()

    def test_event_dict_round_trip(self, campaign):
        for event in campaign.events:
            assert ScenarioEvent.from_dict(event.to_dict()) == event


class TestTraceFiles:
    def test_save_load_round_trip(self, campaign, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_campaign(path, campaign)
        loaded = load_campaign(path)
        assert loaded.spec == campaign.spec
        assert loaded.events == campaign.events
        assert loaded.digest() == campaign.digest()

    def test_corrupted_event_is_rejected(self, campaign, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_campaign(path, campaign)
        lines = path.read_text().splitlines()
        doctored = json.loads(lines[-1])
        doctored["time_s"] += 1.0
        lines[-1] = json.dumps(doctored, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ScenarioError, match="digest"):
            load_campaign(path)

    def test_truncated_trace_is_rejected(self, campaign, tmp_path):
        path = tmp_path / "trace.jsonl"
        save_campaign(path, campaign)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(ScenarioError, match="digest"):
            load_campaign(path)

    def test_headerless_file_is_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("")
        with pytest.raises(ScenarioError, match="header"):
            load_campaign(path)

    def test_foreign_header_is_rejected(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps({"header": True, "kind": "churn"}) + "\n")
        with pytest.raises(ScenarioError, match="not a scenario campaign"):
            load_campaign(path)


class TestDeterminism:
    def test_digest_is_order_and_content_sensitive(self, campaign):
        events = list(campaign.events)
        assert trace_digest(events) == campaign.digest()
        assert trace_digest(events[::-1]) != campaign.digest()
        assert trace_digest(events[:-1]) != campaign.digest()

    def test_different_seeds_give_different_streams(self, tiny_spec):
        base = compile_scenario(tiny_spec)
        other = compile_scenario(tiny_spec, seed=tiny_spec.seed + 1)
        assert other.seed == tiny_spec.seed + 1
        assert other.digest() != base.digest()
