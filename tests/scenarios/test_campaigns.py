"""The campaign acceptance suite: every library campaign, replayed from
its registered seed, must hold the fabric bit-identity invariant at every
phase boundary and replay deterministically."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios.compile import compile_scenario
from repro.scenarios.library import CAMPAIGNS, campaign_names, get_campaign
from repro.scenarios.runner import run_campaign

#: The acceptance replay runs each campaign time-shrunk 5x; shapes (and
#: the seeded determinism being asserted) are unchanged, wall time is not.
SMOKE_SCALE = 0.2


def test_the_library_is_big_enough():
    # The ISSUE's floor: at least six distinct production-shaped campaigns.
    assert len(CAMPAIGNS) >= 6
    assert campaign_names() == sorted(CAMPAIGNS)


def test_unknown_campaign_name_raises():
    with pytest.raises(ScenarioError, match="unknown campaign"):
        get_campaign("black-friday")


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_campaign_spec_is_coherent(name):
    spec = get_campaign(name)
    assert spec.name == name
    assert spec.seed != 0  # every library campaign pins its own seed
    assert spec.description
    assert len(spec.phases) >= 3
    # Specs are data: they must round-trip through their dict form.
    assert type(spec).from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_campaign_holds_the_invariant_at_every_phase_boundary(name):
    spec = get_campaign(name).shrunk(SMOKE_SCALE)
    fabric, report = run_campaign(spec)
    assert report.seed == spec.seed
    for phase in report.phases:
        assert phase.invariant_problems == [], (
            f"{name}/{phase.name}: {phase.invariant_problems}"
        )
    assert report.ok
    assert [p.name for p in report.phases] == [p.name for p in spec.phases]
    assert report.overall.summary()["admitted"] >= 1.0
    assert fabric.check_invariant() == []


@pytest.mark.parametrize("name", sorted(CAMPAIGNS))
def test_campaign_replays_deterministically(name):
    spec = get_campaign(name).shrunk(SMOKE_SCALE)
    assert (
        compile_scenario(spec).digest() == compile_scenario(spec).digest()
    )
    _, first = run_campaign(spec)
    _, second = run_campaign(spec)
    assert first.trace_digest == second.trace_digest
    assert first.final_digest == second.final_digest
    assert [p.digest for p in first.phases] == [p.digest for p in second.phases]


def test_fault_campaigns_actually_drain():
    _, failure = run_campaign(get_campaign("correlated-failure").shrunk(SMOKE_SCALE))
    assert sum(p.drains for p in failure.phases) == 2
    assert sum(p.undrains for p in failure.phases) == 2
    _, rolling = run_campaign(get_campaign("rolling-upgrade").shrunk(SMOKE_SCALE))
    assert sum(p.drains for p in rolling.phases) == 4
    assert sum(p.undrains for p in rolling.phases) == 4


def test_burst_campaign_actually_storms():
    spec = get_campaign("burst-modify").shrunk(SMOKE_SCALE)
    campaign = compile_scenario(spec)
    storms = [
        e for e in campaign.events
        if e.kind == "modify" and e.sfc is not None
        and e.sfc.name.endswith("-burst")
    ]
    assert storms, "burst-modify compiled without any burst modifies"
