"""Tests for the DPDK software-baseline cost model (Fig. 4/5 calibration)."""

import pytest

from repro.baseline import CpuSpec, DpdkChainModel, ServerSpec
from repro.errors import WorkloadError


class TestCpuSpec:
    def test_cycles_scale_with_chain_length(self):
        cpu = CpuSpec()
        assert cpu.cycles_per_packet(4) > cpu.cycles_per_packet(1)
        assert cpu.cycles_per_packet(0) == cpu.io_cycles_per_packet

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            CpuSpec(freq_hz=0)
        with pytest.raises(WorkloadError):
            CpuSpec(io_cycles_per_packet=-1)
        with pytest.raises(WorkloadError):
            CpuSpec().cycles_per_packet(-1)


class TestServerSpec:
    def test_paper_cpu_utilization(self):
        # §VI-B: 17 of 56 cores = 30.35%.
        assert ServerSpec().cpu_utilization == pytest.approx(17 / 56)

    def test_core_budget_validated(self):
        with pytest.raises(WorkloadError):
            ServerSpec(total_cores=8, worker_cores=16)

    def test_max_pps_scales_with_cores(self):
        wide = ServerSpec(worker_cores=32)
        narrow = ServerSpec(worker_cores=16)
        assert wide.max_pps(4) == pytest.approx(2 * narrow.max_pps(4))


class TestDpdkChainModel:
    def test_pps_bound_at_small_packets(self):
        m = DpdkChainModel()
        small = m.throughput_gbps(100.0, 64)
        # >=10x below the line rate (the paper's headline gap).
        assert small <= 10.0

    def test_line_rate_only_at_mtu(self):
        m = DpdkChainModel()
        assert m.throughput_gbps(100.0, 1500) == pytest.approx(100.0)
        for size in (64, 128, 256, 512, 1024):
            assert m.throughput_gbps(100.0, size) < 100.0

    def test_throughput_monotone_in_size(self):
        m = DpdkChainModel()
        values = [m.throughput_gbps(100.0, s) for s in (64, 256, 1024, 1500)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_throughput_bounded_by_offered(self):
        m = DpdkChainModel()
        assert m.throughput_gbps(3.0, 64) == pytest.approx(3.0)

    def test_mpps_capped_by_core_budget(self):
        m = DpdkChainModel()
        assert m.throughput_mpps(100.0, 64) == pytest.approx(m.max_pps / 1e6, rel=1e-6)

    def test_latency_calibration(self):
        # ~1151 ns for the 4-NF chain at low load (paper average).
        assert DpdkChainModel().latency_ns() == pytest.approx(1151.0)

    def test_latency_grows_with_chain_length(self):
        assert DpdkChainModel(chain_length=8).latency_ns() > DpdkChainModel(
            chain_length=2
        ).latency_ns()

    def test_latency_inflates_near_saturation(self):
        m = DpdkChainModel()
        relaxed = m.latency_ns(1.0, 1500)
        saturated = m.latency_ns(100.0, 64)
        assert saturated > relaxed
        # Bounded by the queue-factor cap.
        cap = m.nic_latency_ns + m.chain_length * m.nf_latency_ns * m.max_queue_factor
        assert saturated <= cap + 1e-9

    def test_shorter_chain_is_faster(self):
        short = DpdkChainModel(chain_length=2)
        long = DpdkChainModel(chain_length=6)
        assert short.max_pps > long.max_pps

    def test_resource_report(self):
        report = DpdkChainModel().resource_report()
        assert report["memory_mb"] == pytest.approx(722.0)
        assert report["cores_used"] == 17.0

    def test_negative_offered_rejected(self):
        with pytest.raises(WorkloadError):
            DpdkChainModel().throughput_gbps(-1.0, 64)

    def test_negative_chain_rejected(self):
        with pytest.raises(WorkloadError):
            DpdkChainModel(chain_length=-1)
