"""Tests for the NF library: registry coherence, physical-table structure,
rule generators, and per-NF behaviour through the pipeline."""

import pytest

from repro.core.spec import SwitchSpec, default_nf_catalog
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import MatchKind
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.errors import DataPlaneError
from repro.nfs import NF_REGISTRY, get_nf, install_physical_nf, nf_names


class TestRegistry:
    def test_ten_types_matching_catalog(self):
        catalog = default_nf_catalog()
        assert len(NF_REGISTRY) == 10
        for spec_nf in catalog:
            nf = get_nf(spec_nf.type_id)
            assert nf.name == spec_nf.name, (
                f"registry/type-id mismatch at {spec_nf.type_id}"
            )

    def test_lookup_by_name_and_id(self):
        assert get_nf("firewall").type_id == 1
        assert get_nf(1).name == "firewall"
        with pytest.raises(DataPlaneError):
            get_nf("teleporter")
        with pytest.raises(DataPlaneError):
            get_nf(99)

    def test_names_in_type_id_order(self):
        names = nf_names()
        assert names[0] == "firewall"
        assert len(names) == 10


class TestPhysicalTables:
    @pytest.mark.parametrize("name", sorted(NF_REGISTRY))
    def test_physical_table_prepends_tenant_and_pass(self, name):
        table = get_nf(name).make_physical_table(stage=2)
        assert table.key_fields[:2] == ("tenant_id", "pass_id")
        assert table.key[0].kind is MatchKind.EXACT
        assert table.key[1].kind is MatchKind.EXACT
        assert table.default_action == "no_op"
        assert f"@s2" in table.name

    @pytest.mark.parametrize("name", sorted(NF_REGISTRY))
    def test_generated_rules_install_cleanly(self, name):
        """Every NF's generator must produce rules its own physical table
        accepts once virtualized (the §IV copy step)."""
        pipeline = SwitchPipeline(
            spec=SwitchSpec(stages=1, blocks_per_stage=20), max_passes=1
        )
        install_physical_nf(pipeline, name, 0)
        nf = get_nf(name)
        rules = nf.generate_rules(rng=5, count=30)
        assert len(rules) == 30
        sfc = LogicalSFC(tenant_id=1, nfs=(LogicalNF(name, tuple(rules)),))
        SFCVirtualizer(pipeline).install_sfc(sfc)
        assert pipeline.total_entries() == 30

    @pytest.mark.parametrize("name", sorted(NF_REGISTRY))
    def test_rule_generation_is_seeded(self, name):
        nf = get_nf(name)
        a = nf.generate_rules(rng=7, count=5)
        b = nf.generate_rules(rng=7, count=5)
        assert a == b

    def test_p4_tables_default_single_table(self):
        tables = get_nf("firewall").p4_tables()
        assert len(tables) == 1
        name, reads, writes = tables[0]
        assert "src_ip" in reads

    def test_load_balancer_is_three_tables(self):
        tables = get_nf("load_balancer").p4_tables()
        assert [t[0] for t in tables] == ["tab_lb", "tab_lbhash", "tab_lbselect"]


class TestBehaviour:
    def _pipeline_with(self, name):
        pl = SwitchPipeline(
            spec=SwitchSpec(stages=1, blocks_per_stage=20), max_passes=1
        )
        install_physical_nf(pl, name, 0)
        return pl

    def test_firewall_denies_matching_flow(self):
        pl = self._pipeline_with("firewall")
        nf = get_nf("firewall")
        rules = nf.generate_rules(rng=3, count=20)
        deny = next(r for r in rules if r.action == "drop")
        SFCVirtualizer(pl).install_sfc(
            LogicalSFC(tenant_id=1, nfs=(LogicalNF("firewall", (deny,)),))
        )
        src, _mask = deny.match["src_ip"]
        dst, _ = deny.match["dst_ip"]
        dport, _ = deny.match["dst_port"]
        packet = Packet(tenant_id=1, src_ip=src, dst_ip=dst, dst_port=dport, protocol=6)
        assert pl.process(packet).packet.dropped
        other = Packet(tenant_id=1, src_ip=src ^ 0xFFFF0000, dst_ip=dst, dst_port=dport, protocol=6)
        assert not pl.process(other).packet.dropped

    def test_load_balancer_rewrites_vip(self):
        pl = self._pipeline_with("load_balancer")
        nf = get_nf("load_balancer")
        rule = nf.generate_rules(rng=3, count=1)[0]
        SFCVirtualizer(pl).install_sfc(
            LogicalSFC(tenant_id=1, nfs=(LogicalNF("load_balancer", (rule,)),))
        )
        vip = rule.match["dst_ip"]
        packet = Packet(tenant_id=1, dst_ip=vip, dst_port=80, protocol=6)
        pl.process(packet)
        assert packet.dst_ip == rule.params["dst_ip"]

    def test_router_longest_prefix_forwarding(self):
        pl = self._pipeline_with("router")
        from repro.dataplane.table import TableEntry

        rules = (
            TableEntry(match={"dst_ip": (0x0A000000, 8)}, action="forward", params={"port": 1}),
            TableEntry(match={"dst_ip": (0x0A0B0000, 16)}, action="forward", params={"port": 2}),
        )
        SFCVirtualizer(pl).install_sfc(
            LogicalSFC(tenant_id=1, nfs=(LogicalNF("router", rules),))
        )
        p = Packet(tenant_id=1, dst_ip=0x0A0B0C0D)
        pl.process(p)
        assert p.egress_port == 2
        p2 = Packet(tenant_id=1, dst_ip=0x0A010203)
        pl.process(p2)
        assert p2.egress_port == 1

    def test_nat_rewrites_source(self):
        pl = self._pipeline_with("nat")
        nf = get_nf("nat")
        rule = nf.generate_rules(rng=3, count=1)[0]
        SFCVirtualizer(pl).install_sfc(
            LogicalSFC(tenant_id=1, nfs=(LogicalNF("nat", (rule,)),))
        )
        inside = rule.match["src_ip"]
        p = Packet(tenant_id=1, src_ip=inside, protocol=6)
        pl.process(p)
        assert p.src_ip == rule.params["src_ip"]

    def test_classifier_marks_dscp(self):
        pl = self._pipeline_with("traffic_classifier")
        nf = get_nf("traffic_classifier")
        rule = nf.generate_rules(rng=3, count=1)[0]
        SFCVirtualizer(pl).install_sfc(
            LogicalSFC(tenant_id=1, nfs=(LogicalNF("traffic_classifier", (rule,)),))
        )
        src, _ = rule.match["src_ip"]
        lo, hi = rule.match["dst_port"]
        p = Packet(tenant_id=1, src_ip=src, dst_port=lo, protocol=rule.match["protocol"])
        pl.process(p)
        assert p.dscp == rule.params["dscp"]
