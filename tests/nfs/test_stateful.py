"""Tests for extern-backed stateful NFs (meter policing, counter monitor)."""

import pytest

from repro.core.spec import SwitchSpec
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.errors import DataPlaneError
from repro.nfs.stateful import ExternMonitor, MeteredRateLimiter


def _deploy(nf, rules):
    pipeline = SwitchPipeline(
        spec=SwitchSpec(stages=1, blocks_per_stage=8), max_passes=1
    )
    pipeline.stage(0).install_table(nf.make_physical_table(0))
    SFCVirtualizer(pipeline).install_sfc(
        LogicalSFC(tenant_id=1, nfs=(LogicalNF(nf.name, tuple(rules)),))
    )
    return pipeline


class TestMeteredRateLimiter:
    def test_state_footprint_declared(self):
        nf = MeteredRateLimiter(slots=64)
        assert nf.state_bits == 64 * 3 * 64
        assert nf.state_entries() == 192

    def test_green_traffic_passes(self):
        nf = MeteredRateLimiter(slots=4, committed_bps=8e9, burst_bytes=100_000)
        rule = nf.generate_rules(rng=1, count=1)[0]
        pipeline = _deploy(nf, [rule])
        src, _mask = rule.match["src_ip"]
        packet = Packet(tenant_id=1, src_ip=src, protocol=6, size_bytes=1000,
                        timestamp_ns=0.0)
        assert pipeline.process(packet).delivered

    def test_red_traffic_dropped(self):
        # Tiny burst, no refill: the second back-to-back packet exceeds peak.
        nf = MeteredRateLimiter(slots=1, committed_bps=8e3, burst_bytes=1000)
        rule = nf.generate_rules(rng=1, count=1)[0]
        pipeline = _deploy(nf, [rule])
        src, _mask = rule.match["src_ip"]

        def send(ts):
            p = Packet(tenant_id=1, src_ip=src, protocol=6, size_bytes=1000,
                       timestamp_ns=ts)
            return pipeline.process(p)

        assert send(0.0).delivered
        assert not send(1.0).delivered  # bucket empty, ~no refill in 1 ns

    def test_tokens_refill_with_packet_timestamps(self):
        nf = MeteredRateLimiter(slots=1, committed_bps=8e9, burst_bytes=1000)
        rule = nf.generate_rules(rng=1, count=1)[0]
        pipeline = _deploy(nf, [rule])
        src, _ = rule.match["src_ip"]
        first = Packet(tenant_id=1, src_ip=src, protocol=6, size_bytes=1000)
        pipeline.process(first)
        # 8 Gbps = 1 B/ns: after 2000 ns the 1000-B bucket is full again.
        later = Packet(tenant_id=1, src_ip=src, protocol=6, size_bytes=1000,
                       timestamp_ns=2000.0)
        assert pipeline.process(later).delivered

    def test_other_tenants_not_policed(self):
        nf = MeteredRateLimiter(slots=1, committed_bps=8e3, burst_bytes=100)
        rule = nf.generate_rules(rng=1, count=1)[0]
        pipeline = _deploy(nf, [rule])
        src, _ = rule.match["src_ip"]
        other = Packet(tenant_id=2, src_ip=src, protocol=6, size_bytes=1000)
        assert pipeline.process(other).delivered  # falls through to no_op

    def test_slot_validation(self):
        with pytest.raises(DataPlaneError):
            MeteredRateLimiter(slots=0)


class TestExternMonitor:
    def test_counts_bytes_and_packets(self):
        nf = ExternMonitor(slots=4)
        rule = nf.generate_rules(rng=2, count=1)[0]
        pipeline = _deploy(nf, [rule])
        dst, _ = rule.match["dst_ip"]
        proto = rule.match["protocol"]
        for size in (64, 1500):
            pipeline.process(
                Packet(tenant_id=1, dst_ip=dst, protocol=proto, size_bytes=size)
            )
        packets, total = nf.counters.read(rule.params["index"])
        assert packets == 2
        assert total == 1564

    def test_wildcard_rule_counts_everything(self):
        nf = ExternMonitor(slots=1)
        rule = TableEntry(match={}, action="count_extern",
                          params={"counter": nf.counters, "index": 0})
        pipeline = _deploy(nf, [rule])
        for _ in range(5):
            pipeline.process(Packet(tenant_id=1, size_bytes=100))
        assert nf.counters.read(0) == (5, 500)

    def test_state_footprint(self):
        assert ExternMonitor(slots=128).state_entries() == 256

    def test_state_accounting_integration(self):
        """The declared state footprint plugs into the §VII extension."""
        from repro.core.extensions import account_nf_state
        from repro.core.spec import SFC, ProblemInstance

        nf = ExternMonitor(slots=128)
        switch = SwitchSpec(stages=2, blocks_per_stage=4, block_bits=6400,
                            rule_bits=64, capacity_gbps=50.0)
        inst = ProblemInstance(
            switch=switch,
            sfcs=(SFC(name="a", nf_types=(10,), rules=(100,), bandwidth_gbps=1.0),),
            num_types=10,
            max_recirculations=0,
        )
        charged = account_nf_state(inst, {10: nf.state_entries()})
        assert charged.sfcs[0].rules == (100 + 256,)
