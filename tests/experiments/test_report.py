"""Tests for the EXPERIMENTS.md generator (structure only; the heavy quick
run is exercised by regenerating the real report)."""


from repro.experiments import fig4_throughput
from repro.experiments.report import FigureReport, _fig4, _fig5, _markdown_table


def test_markdown_table_shape():
    result = fig4_throughput.run(packet_sizes=(64, 1500), seed=1)
    table = _markdown_table(result)
    lines = table.splitlines()
    assert lines[0].startswith("| packet_bytes")
    assert lines[1].startswith("|---")
    assert len(lines) == 2 + len(result.rows)


def test_fig4_report_passes_checks():
    report = _fig4(seed=1, quick=True)
    assert report.ok, [c for c in report.checks if not c[1]]
    assert report.figure == "Fig. 4"
    assert "10x" in report.paper_claim or "10 times" in report.paper_claim


def test_fig5_report_passes_checks():
    report = _fig5(seed=1, quick=True)
    assert report.ok


def test_figure_report_ok_aggregates():
    result = fig4_throughput.run(packet_sizes=(64,), seed=1)
    good = FigureReport("f", "claim", result, [("a", True), ("b", True)])
    bad = FigureReport("f", "claim", result, [("a", True), ("b", False)])
    assert good.ok and not bad.ok
