"""Smoke + shape tests for the figure runners (tiny parameters).

The benchmarks run the figures at quick/paper scale; these tests pin the
runners' *interfaces* — columns, notes, determinism — at minimal scale so
the suite stays fast.
"""

import pytest

from repro.experiments import (
    fig4_throughput,
    fig5_latency,
    fig6_num_sfcs,
    fig7_recirculation,
    fig8_solver_runtime,
    fig9_early_termination,
    fig10_algorithms,
    fig11_runtime_update,
)


class TestFig4:
    def test_columns_and_saturation(self):
        r = fig4_throughput.run(packet_sizes=(64, 1500), seed=1)
        assert r.column("packet_bytes") == [64, 1500]
        assert all(v == pytest.approx(100.0) for v in r.column("sfp_gbps"))
        assert r.rows[0]["speedup"] > r.rows[1]["speedup"]

    def test_functional_check_runs_packets(self):
        check = fig4_throughput.functional_check(seed=2, packets=32)
        assert check["packets"] == 32
        assert check["delivered"] + check["dropped"] == 32
        assert check["entries_installed"] > 0

    def test_notes_mention_offload_footprint(self):
        r = fig4_throughput.run(packet_sizes=(64,), seed=1)
        assert any("722" in n for n in r.notes)


class TestFig5:
    def test_recirculation_probe_makes_four_passes(self):
        assert fig5_latency.recirculating_passes(seed=1) == 4

    def test_series_values(self):
        r = fig5_latency.run(packet_sizes=(64,), seed=1)
        row = r.rows[0]
        assert row["sfp_ns"] < row["sfp_recir_ns"] < row["dpdk_ns"]


class TestPlacementFigures:
    def test_fig6_minimal(self):
        r = fig6_num_sfcs.run(l_values=(6,), trials=1, seed=3)
        assert r.column("num_sfcs") == [6]
        assert r.rows[0]["sfp_entry_util"] >= r.rows[0]["base_entry_util"]

    def test_fig7_minimal(self):
        r = fig7_recirculation.run(recirculations=(0, 1), trials=1, seed=3)
        assert r.column("virtual_stages") == [8, 16]

    def test_fig8_minimal(self):
        r = fig8_solver_runtime.run(l_values=(4,), trials=1, seed=3,
                                    ilp_time_limit=60.0)
        row = r.rows[0]
        assert row["ilp_seconds"] > 0 and row["appro_seconds"] > 0
        assert row["appro_objective"] <= row["ilp_objective"] + 1e-6

    def test_fig9_minimal(self):
        r = fig9_early_termination.run(time_limits=(30.0,), num_sfcs=5, seed=3)
        assert r.rows[0]["throughput_gbps"] > 0
        assert r.rows[0]["placed"] > 0

    def test_fig10_minimal_without_ilp(self):
        r = fig10_algorithms.run(l_values=(6,), trials=1, seed=3, include_ilp=False)
        assert "ilp_gbps" not in r.columns
        assert r.rows[0]["appro_gbps"] >= 0

    def test_fig11_minimal(self):
        r = fig11_runtime_update.run(drop_rates=(0.5,), trials=1, seed=3)
        row = r.rows[0]
        assert row["updated_gbps"] >= row["origin_gbps"] - 1e-6
        assert row["dropped"] >= 1
