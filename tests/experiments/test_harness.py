"""Tests for the experiment harness plumbing."""

import pytest

from repro.experiments.harness import ExperimentResult, mean_over_trials, run_trials


class TestExperimentResult:
    def test_add_row_validates_columns(self):
        r = ExperimentResult("t", "d", columns=["a", "b"])
        r.add_row(a=1, b=2.5)
        with pytest.raises(ValueError):
            r.add_row(a=1)
        assert r.column("b") == [2.5]

    def test_extra_keys_dropped(self):
        r = ExperimentResult("t", "d", columns=["a"])
        r.add_row(a=1, junk=9)
        assert r.rows == [{"a": 1}]

    def test_format_table_contains_everything(self):
        r = ExperimentResult("t", "desc", columns=["x", "y"])
        r.add_row(x=1, y=2.345)
        r.notes.append("hello")
        text = r.format_table()
        assert "desc" in text
        assert "2.35" in text  # default float format
        assert "note: hello" in text

    def test_format_empty_table(self):
        r = ExperimentResult("t", "d", columns=["x"])
        assert "x" in r.format_table()


class TestTrials:
    def test_run_trials_gets_independent_streams(self):
        draws = run_trials(lambda rng: {"v": float(rng.random())}, 3, seed=1)
        values = [d["v"] for d in draws]
        assert len(set(values)) == 3

    def test_run_trials_deterministic(self):
        a = run_trials(lambda rng: {"v": float(rng.random())}, 3, seed=1)
        b = run_trials(lambda rng: {"v": float(rng.random())}, 3, seed=1)
        assert a == b

    def test_mean_over_trials_numeric(self):
        mean = mean_over_trials([{"a": 1.0, "b": 2}, {"a": 3.0, "b": 4}])
        assert mean["a"] == pytest.approx(2.0)
        assert mean["b"] == pytest.approx(3.0)

    def test_mean_over_trials_non_numeric_keeps_first(self):
        mean = mean_over_trials([{"tag": "x", "v": 1.0}, {"tag": "y", "v": 2.0}])
        assert mean["tag"] == "x"
        assert mean["v"] == pytest.approx(1.5)

    def test_mean_over_empty(self):
        assert mean_over_trials([]) == {}
