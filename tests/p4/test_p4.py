"""Tests for the P4 IR, dependency analysis, and stage allocation."""

import pytest

from repro.errors import DataPlaneError, ResourceExhaustedError
from repro.nfs import get_nf
from repro.p4 import (
    DependencyKind,
    P4Condition,
    P4Program,
    P4Table,
    allocate_stages,
    build_dependency_graph,
    chain_program,
)
from repro.p4.allocate import nf_stage_spans
from repro.p4.dependency import classify, critical_path_stages


class TestIR:
    def test_table_requires_name(self):
        with pytest.raises(DataPlaneError):
            P4Table(name="")

    def test_tables_walks_branches_in_order(self):
        a = P4Table("a")
        b = P4Table("b")
        c = P4Table("c")
        prog = P4Program(
            "p",
            [
                a,
                P4Condition("proto == tcp", reads=("protocol",),
                            then_branch=(b,), else_branch=(c,)),
            ],
        )
        assert [t.name for t in prog.tables()] == ["a", "b", "c"]

    def test_duplicate_table_names_rejected(self):
        prog = P4Program("p", [P4Table("a"), P4Table("a")])
        with pytest.raises(DataPlaneError):
            prog.tables()

    def test_table_by_name(self):
        prog = P4Program("p", [P4Table("a", reads=("dst_ip",))])
        assert prog.table_by_name("a").reads == ("dst_ip",)
        with pytest.raises(DataPlaneError):
            prog.table_by_name("zzz")

    def test_chain_program_prefixes_positions(self):
        prog = chain_program([get_nf("firewall"), get_nf("firewall")])
        names = [t.name for t in prog.tables()]
        assert names == ["nf0_tab_firewall", "nf1_tab_firewall"]


class TestDependencies:
    def test_match_dependency(self):
        w = P4Table("w", writes=("dst_ip",))
        r = P4Table("r", reads=("dst_ip",))
        assert classify(w, r) is DependencyKind.MATCH
        assert DependencyKind.MATCH.min_stage_gap == 1

    def test_action_dependency(self):
        a = P4Table("a", writes=("dst_ip",))
        b = P4Table("b", writes=("dst_ip",))
        assert classify(a, b) is DependencyKind.ACTION

    def test_reverse_match_dependency(self):
        r = P4Table("r", reads=("dst_ip",))
        w = P4Table("w", writes=("dst_ip",))
        assert classify(r, w) is DependencyKind.REVERSE_MATCH
        assert DependencyKind.REVERSE_MATCH.min_stage_gap == 0

    def test_match_beats_weaker_kinds(self):
        a = P4Table("a", reads=("x",), writes=("y",))
        b = P4Table("b", reads=("y",), writes=("x",))
        assert classify(a, b) is DependencyKind.MATCH

    def test_independent_tables(self):
        a = P4Table("a", reads=("src_ip",))
        b = P4Table("b", reads=("dst_ip",))
        assert classify(a, b) is None

    def test_graph_structure_for_lb(self):
        prog = chain_program([get_nf("load_balancer")])
        graph = build_dependency_graph(prog)
        assert graph.has_edge("nf0_tab_lbhash", "nf0_tab_lbselect")
        kind = graph.edges["nf0_tab_lbhash", "nf0_tab_lbselect"]["kind"]
        assert kind is DependencyKind.MATCH

    def test_critical_path(self):
        prog = chain_program([get_nf("load_balancer")])
        graph = build_dependency_graph(prog)
        # lb -> lbselect (action dep) and lbhash -> lbselect (match dep):
        # 2 levels.
        assert critical_path_stages(graph) == 2

    def test_critical_path_empty_program(self):
        graph = build_dependency_graph(P4Program("p", []))
        assert critical_path_stages(graph) == 0


class TestAllocation:
    def test_independent_tables_share_stage(self):
        prog = P4Program("p", [P4Table("a", reads=("src_ip",)),
                               P4Table("b", reads=("dst_ip",))])
        alloc = allocate_stages(prog, num_stages=4, tables_per_stage=8)
        assert alloc.stages["a"] == alloc.stages["b"] == 0
        assert alloc.num_stages_used == 1

    def test_match_dependency_forces_next_stage(self):
        prog = P4Program("p", [P4Table("w", writes=("dst_ip",)),
                               P4Table("r", reads=("dst_ip",))])
        alloc = allocate_stages(prog, num_stages=4)
        assert alloc.stages["r"] == alloc.stages["w"] + 1

    def test_reverse_match_allows_same_stage(self):
        prog = P4Program("p", [P4Table("r", reads=("dst_ip",)),
                               P4Table("w", writes=("dst_ip",))])
        alloc = allocate_stages(prog, num_stages=4)
        assert alloc.stages["w"] == alloc.stages["r"]

    def test_capacity_spills_to_next_stage(self):
        prog = P4Program("p", [P4Table(f"t{i}") for i in range(5)])
        alloc = allocate_stages(prog, num_stages=4, tables_per_stage=2)
        by_stage = alloc.tables_by_stage()
        assert len(by_stage[0]) == 2 and len(by_stage[1]) == 2 and len(by_stage[2]) == 1

    def test_overflow_raises(self):
        prog = P4Program("p", [P4Table(f"t{i}") for i in range(5)])
        with pytest.raises(ResourceExhaustedError):
            allocate_stages(prog, num_stages=2, tables_per_stage=2)

    def test_dependency_overflow_raises(self):
        # A chain of 3 match-dependent tables cannot fit 2 stages.
        prog = P4Program(
            "p",
            [
                P4Table("a", writes=("dst_ip",)),
                P4Table("b", reads=("dst_ip",), writes=("src_ip",)),
                P4Table("c", reads=("src_ip",)),
            ],
        )
        with pytest.raises(ResourceExhaustedError):
            allocate_stages(prog, num_stages=2)

    def test_fig2_chain_spans(self):
        chain = [get_nf(n) for n in ("firewall", "traffic_classifier",
                                     "load_balancer", "router")]
        prog = chain_program(chain)
        alloc = allocate_stages(prog, num_stages=12, tables_per_stage=4)
        spans = nf_stage_spans(prog, alloc)
        assert spans["nf0"] == 1          # firewall: one big table
        assert spans["nf2"] >= 2          # LB spans stages (sub-NFs)

    def test_span_of_unknown_prefix_is_zero(self):
        prog = chain_program([get_nf("firewall")])
        alloc = allocate_stages(prog)
        assert alloc.span("nf9_") == 0
