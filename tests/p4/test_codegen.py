"""Structural tests for the P4-14 code generator."""

import re

import pytest

from repro.errors import DataPlaneError
from repro.nfs import get_nf
from repro.p4.codegen import generate_p4

CHAIN = [get_nf(n) for n in ("firewall", "traffic_classifier", "load_balancer", "router")]


@pytest.fixture(scope="module")
def source():
    return generate_p4(CHAIN, program_name="fig2")


def test_braces_balanced(source):
    assert source.count("{") == source.count("}")


def test_header_mentions_chain(source):
    assert "firewall -> traffic_classifier -> load_balancer -> router" in source


def test_every_nf_gets_a_table(source):
    for nf in CHAIN:
        assert f"table tab_{nf.name} " in source
        assert f"apply(tab_{nf.name});" in source


def test_tables_prepend_tenant_and_pass(source):
    for block in re.findall(r"table tab_\w+ \{.*?\n\}", source, re.S):
        if "tab_recirculate" in block:
            continue
        assert "sfp_meta.tenant_id : exact;" in block
        assert "sfp_meta.pass_id : exact;" in block


def test_match_kinds_rendered(source):
    fw_block = re.search(r"table tab_firewall \{.*?\n\}", source, re.S).group(0)
    assert "ipv4.srcAddr : ternary;" in fw_block
    assert "l4.dstPort : range;" in fw_block
    rt_block = re.search(r"table tab_router \{.*?\n\}", source, re.S).group(0)
    assert "ipv4.dstAddr : lpm;" in rt_block


def test_actions_declared_before_tables_reference_them(source):
    for match in re.finditer(r"^\s+(\w+);$", source, re.M):
        name = match.group(1)
        if name in ("no_op", "do_recirculate"):
            continue
        declaration = source.find(f"action {name}(")
        assert declaration != -1, f"action {name} referenced but not declared"
        assert declaration < match.start()


def test_every_action_carries_rec_argument(source):
    for match in re.finditer(r"action (\w+)\(([^)]*)\) \{", source):
        name, params = match.groups()
        if name in ("no_op", "do_recirculate", "mark_rec"):
            continue
        assert params.split(",")[-1].strip() == "rec", name


def test_recirculation_block_present(source):
    assert "table tab_recirculate" in source
    assert "add_to_field(sfp_meta.pass_id, 1);" in source
    assert "recirculate(0);" in source


def test_tcp_udp_gate(source):
    assert "if (ipv4.protocol == 6 or ipv4.protocol == 17)" in source


def test_empty_chain_rejected():
    with pytest.raises(DataPlaneError):
        generate_p4([])


def test_duplicate_nfs_rejected():
    with pytest.raises(DataPlaneError):
        generate_p4([get_nf("firewall"), get_nf("firewall")])


def test_all_catalog_nfs_generate():
    from repro.nfs import NF_REGISTRY

    source = generate_p4([get_nf(name) for name in sorted(NF_REGISTRY)])
    assert source.count("table tab_") == len(NF_REGISTRY) + 1  # + recirculate
    assert source.count("{") == source.count("}")
