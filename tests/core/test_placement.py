"""Unit tests for Placement metrics and NFAssignment derived quantities."""

import numpy as np
import pytest

from repro.core.placement import NFAssignment, Placement
from repro.errors import PlacementError


def _physical(instance, pairs):
    x = np.zeros((instance.num_types, instance.switch.stages), dtype=bool)
    for i, s in pairs:
        x[i, s] = True
    return x


class TestNFAssignment:
    def test_passes_and_recirculations(self):
        asg = NFAssignment(sfc_index=0, stages=(1, 5))
        assert asg.last_stage == 5
        assert asg.passes(3) == 2          # ceil(5/3)
        assert asg.recirculations(3) == 1

    def test_single_pass(self):
        asg = NFAssignment(sfc_index=0, stages=(1, 2, 3))
        assert asg.passes(3) == 1
        assert asg.recirculations(3) == 0

    def test_strictly_increasing_required(self):
        with pytest.raises(PlacementError):
            NFAssignment(sfc_index=0, stages=(2, 2))
        with pytest.raises(PlacementError):
            NFAssignment(sfc_index=0, stages=(3, 1))

    def test_one_based_stages(self):
        with pytest.raises(PlacementError):
            NFAssignment(sfc_index=0, stages=(0, 1))


class TestPlacementMetrics:
    def test_empty_placement(self, tiny_instance):
        p = Placement(
            instance=tiny_instance,
            physical=_physical(tiny_instance, [(0, 0), (1, 1), (2, 2)]),
        )
        assert p.num_placed == 0
        assert p.objective == 0.0
        assert p.backplane_gbps == 0.0
        assert p.block_utilization == 0.0
        assert p.entry_utilization == 0.0

    def test_single_chain_metrics(self, tiny_instance):
        # Chain a: types (1,2), rules (50,50), 10 Gbps, placed on stages 1,2.
        p = Placement(
            instance=tiny_instance,
            physical=_physical(tiny_instance, [(0, 0), (1, 1), (2, 2)]),
            assignments={0: NFAssignment(0, (1, 2))},
        )
        assert p.num_placed == 1
        assert p.objective == pytest.approx(20.0)  # 10 Gbps * J=2
        assert p.offloaded_gbps == pytest.approx(10.0)
        assert p.backplane_gbps == pytest.approx(10.0)  # one pass
        entries = p.entries_by_type_stage()
        assert entries[0, 0] == 50 and entries[1, 1] == 50
        # 100-entry blocks: 50 entries -> 1 block each.
        np.testing.assert_array_equal(p.blocks_by_stage(), [1, 1, 0])
        assert p.entry_utilization == pytest.approx(100 / 200)

    def test_recirculated_chain_doubles_backplane(self, tiny_instance):
        # Chain c: types (3,1), must fold: stage 3 (pass 1) then stage 4 (pass 2).
        p = Placement(
            instance=tiny_instance,
            physical=_physical(tiny_instance, [(0, 0), (2, 2)]),
            assignments={2: NFAssignment(2, (3, 4))},
        )
        assert p.passes(2) == 2
        assert p.backplane_gbps == pytest.approx(10.0)  # 5 Gbps * 2 passes

    def test_consolidation_shares_blocks(self, tiny_instance):
        # Two chains put type-2 NFs on the same physical stage 1:
        # 50 + 80 = 130 entries -> 2 blocks consolidated, 1+1 = 2 blocks
        # non-consolidated BUT with fragmentation the entry util differs.
        assignments = {
            0: NFAssignment(0, (1, 2)),   # type1@s0 (50), type2@s1 (50)
            1: NFAssignment(1, (2, 3)),   # type2@s1 (80), type3@s2 (20)
        }
        shared = Placement(
            instance=tiny_instance,
            physical=_physical(tiny_instance, [(0, 0), (1, 1), (2, 2)]),
            assignments=assignments,
            consolidate=True,
        )
        frag = Placement(
            instance=tiny_instance,
            physical=_physical(tiny_instance, [(0, 0), (1, 1), (2, 2)]),
            assignments=assignments,
            consolidate=False,
        )
        assert shared.blocks_by_stage()[1] == 2   # ceil(130/100)
        assert frag.blocks_by_stage()[1] == 2     # ceil(50/100)+ceil(80/100)
        # Same blocks here, but entry utilization reflects fragmentation on
        # stage 0/2 identically; now check a case where they diverge:
        assignments2 = {
            0: NFAssignment(0, (1, 2)),
            2: NFAssignment(2, (3, 4)),  # type3@s2 (30), type1@s0 pass2 (30)
        }
        shared2 = Placement(
            instance=tiny_instance,
            physical=_physical(tiny_instance, [(0, 0), (1, 1), (2, 2)]),
            assignments=assignments2,
            consolidate=True,
        )
        frag2 = Placement(
            instance=tiny_instance,
            physical=_physical(tiny_instance, [(0, 0), (1, 1), (2, 2)]),
            assignments=assignments2,
            consolidate=False,
        )
        # Type 1 entries at stage 0: 50 (chain a) + 30 (chain c pass 2) = 80
        # -> 1 block consolidated vs 2 blocks fragmented.
        assert shared2.blocks_by_stage()[0] == 1
        assert frag2.blocks_by_stage()[0] == 2
        assert shared2.entry_utilization > frag2.entry_utilization

    def test_virtual_stage_folds_onto_physical(self, tiny_instance):
        p = Placement(
            instance=tiny_instance,
            physical=_physical(tiny_instance, [(2, 2), (0, 0)]),
            assignments={2: NFAssignment(2, (3, 4))},
        )
        entries = p.entries_by_type_stage()
        # Virtual stage 4 folds to physical stage 0.
        assert entries[0, 0] == 30
        assert entries[2, 2] == 30

    def test_shape_validation(self, tiny_instance):
        with pytest.raises(PlacementError):
            Placement(instance=tiny_instance, physical=np.zeros((2, 2), dtype=bool))

    def test_assignment_length_validation(self, tiny_instance):
        with pytest.raises(PlacementError):
            Placement(
                instance=tiny_instance,
                physical=_physical(tiny_instance, []),
                assignments={0: NFAssignment(0, (1,))},  # chain a has 2 NFs
            )

    def test_unknown_sfc_index_rejected(self, tiny_instance):
        with pytest.raises(PlacementError):
            Placement(
                instance=tiny_instance,
                physical=_physical(tiny_instance, []),
                assignments={7: NFAssignment(7, (1, 2))},
            )

    def test_summary_keys(self, tiny_instance):
        p = Placement(
            instance=tiny_instance,
            physical=_physical(tiny_instance, [(0, 0)]),
        )
        row = p.summary()
        for key in (
            "num_placed",
            "objective",
            "offloaded_gbps",
            "backplane_gbps",
            "block_utilization",
            "entry_utilization",
        ):
            assert key in row
