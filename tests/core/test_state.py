"""Tests for the incremental pipeline resource state."""

import numpy as np
import pytest

from repro.core.placement import NFAssignment
from repro.core.state import PipelineState
from repro.errors import PlacementError


@pytest.fixture()
def state(tiny_instance):
    return PipelineState(tiny_instance)


def test_initially_empty(state):
    assert state.blocks_at_stage(0) == 0
    assert state.free_blocks(0) == 4
    assert state.backplane_gbps == 0.0


def test_add_logical_nf_installs_physical(state):
    state.add_logical_nf(0, 1, 50)
    assert state.physical[0, 1]
    assert state.entries[0, 1] == 50
    assert state.blocks_at_stage(1) == 1


def test_blocks_grow_with_entries(state):
    state.add_logical_nf(0, 0, 90)   # 1 block (100-entry blocks)
    state.add_logical_nf(0, 0, 90)   # 180 entries -> 2 blocks consolidated
    assert state.blocks_at_stage(0) == 2


def test_fragmented_accounting(tiny_instance):
    state = PipelineState(tiny_instance, consolidate=False)
    state.add_logical_nf(0, 0, 60)
    state.add_logical_nf(0, 0, 60)
    # Two NFs of 60 entries: 2 blocks fragmented (vs 2 consolidated here
    # too); with 40-entry NFs the variants diverge:
    state2 = PipelineState(tiny_instance, consolidate=False)
    state2.add_logical_nf(1, 0, 40)
    state2.add_logical_nf(1, 0, 40)
    assert state2.blocks_at_stage(0) == 2
    state3 = PipelineState(tiny_instance, consolidate=True)
    state3.add_logical_nf(1, 0, 40)
    state3.add_logical_nf(1, 0, 40)
    assert state3.blocks_at_stage(0) == 1


def test_reserve_counts_idle_physical(state):
    state.install_physical(2, 0)
    assert state.blocks_at_stage(0) == 1
    # Adding rules absorbs the reserve instead of stacking on it.
    state.add_logical_nf(2, 0, 10)
    assert state.blocks_at_stage(0) == 1


def test_no_reserve_variant(tiny_instance):
    state = PipelineState(tiny_instance, reserve_physical_block=False)
    state.install_physical(0, 0)
    assert state.blocks_at_stage(0) == 0


def test_fits_rejects_overflow(state):
    # Stage has 4 blocks x 100 entries = 400 entries max.
    assert state.fits(0, 0, 400)
    assert not state.fits(0, 0, 401)


def test_fits_accounts_for_other_types(state):
    state.add_logical_nf(0, 0, 300)  # 3 blocks
    assert state.fits(1, 0, 100)     # 1 block left
    assert not state.fits(1, 0, 101)


def test_add_raises_when_no_fit(state):
    with pytest.raises(PlacementError):
        state.add_logical_nf(0, 0, 100_000)


def test_remove_logical_nf_refunds(state):
    state.add_logical_nf(0, 0, 150)
    assert state.blocks_at_stage(0) == 2
    state.remove_logical_nf(0, 0, 150)
    # Physical NF remains installed -> reserve block stays.
    assert state.physical[0, 0]
    assert state.blocks_at_stage(0) == 1
    assert state.entries[0, 0] == 0


def test_remove_more_than_present_rejected(state):
    state.add_logical_nf(0, 0, 10)
    with pytest.raises(PlacementError):
        state.remove_logical_nf(0, 0, 11)


def test_backplane_accounting(state):
    state.add_backplane(60.0)
    with pytest.raises(PlacementError):
        state.add_backplane(50.0)  # 110 > 100
    state.release_backplane(30.0)
    state.add_backplane(50.0)
    assert state.backplane_gbps == pytest.approx(80.0)


def test_snapshot_restore_roundtrip(state):
    state.add_logical_nf(0, 0, 50)
    state.add_backplane(10.0)
    snap = state.snapshot()
    state.add_logical_nf(1, 1, 70)
    state.add_backplane(20.0)
    state.restore(snap)
    assert state.entries[1, 1] == 0
    assert not state.physical[1, 1]
    assert state.blocks_at_stage(1) == 0
    assert state.backplane_gbps == pytest.approx(10.0)


def test_physical_setter_recomputes(state):
    layout = np.zeros((3, 3), dtype=bool)
    layout[0, 0] = layout[1, 1] = True
    state.physical = layout
    assert state.blocks_at_stage(0) == 1
    assert state.blocks_at_stage(1) == 1
    with pytest.raises(PlacementError):
        state.physical = np.zeros((2, 2), dtype=bool)


def test_from_placement_roundtrip(tiny_instance):
    state = PipelineState(tiny_instance)
    state.add_logical_nf(0, 0, 50)
    state.add_logical_nf(1, 1, 50)
    state.add_backplane(10.0)
    placement = state.make_placement(
        {0: NFAssignment(0, (1, 2))}, algorithm="test"
    )
    rebuilt = PipelineState.from_placement(placement)
    assert (rebuilt.entries == state.entries).all()
    assert rebuilt.backplane_gbps == pytest.approx(10.0)
    assert rebuilt.blocks_at_stage(0) == state.blocks_at_stage(0)


def test_install_physical_requires_free_block(tiny_instance):
    state = PipelineState(tiny_instance)
    # Fill stage 0 completely with type-0 entries (4 blocks).
    state.add_logical_nf(0, 0, 400)
    with pytest.raises(PlacementError):
        state.install_physical(1, 0)
