"""Tests for the greedy baseline (Algorithm 2)."""

import pytest

from repro.core.greedy import greedy_place, order_sfcs, sfc_metric, try_place_chain
from repro.core.ilp import solve_ilp
from repro.core.spec import SFC, ProblemInstance, SwitchSpec
from repro.core.state import PipelineState
from repro.core.verify import check_placement


def test_metric_formula():
    sfc = SFC(name="s", nf_types=(1, 2), rules=(100, 100), bandwidth_gbps=8.0)
    # T / (J * sum F) = 8 / (2 * 200)
    assert sfc_metric(sfc) == pytest.approx(8.0 / 400.0)


def test_metric_zero_rules_is_infinite():
    sfc = SFC(name="s", nf_types=(1,), rules=(0,), bandwidth_gbps=1.0)
    assert sfc_metric(sfc) == float("inf")


def test_order_prefers_high_metric(tiny_switch):
    cheap = SFC(name="cheap", nf_types=(1,), rules=(10,), bandwidth_gbps=50.0)
    heavy = SFC(name="heavy", nf_types=(1,), rules=(300,), bandwidth_gbps=1.0)
    inst = ProblemInstance(switch=tiny_switch, sfcs=(heavy, cheap), num_types=1)
    assert order_sfcs(inst) == [1, 0]


def test_greedy_places_feasible(tiny_instance):
    placement = greedy_place(tiny_instance)
    assert placement.algorithm == "greedy"
    assert check_placement(placement) == []
    assert placement.num_placed >= 1


def test_greedy_never_beats_ilp(tiny_instance):
    greedy = greedy_place(tiny_instance)
    optimal = solve_ilp(tiny_instance, backend="scipy")
    assert greedy.objective <= optimal.objective + 1e-6


def test_greedy_respects_capacity(tiny_switch):
    sfcs = tuple(
        SFC(name=f"s{i}", nf_types=(1,), rules=(10,), bandwidth_gbps=40.0)
        for i in range(5)
    )
    inst = ProblemInstance(switch=tiny_switch, sfcs=sfcs, num_types=1)
    placement = greedy_place(inst)
    assert placement.backplane_gbps <= tiny_switch.capacity_gbps
    assert placement.num_placed == 2  # 2 x 40 <= 100 < 3 x 40


def test_greedy_folds_out_of_order_chain():
    switch = SwitchSpec(
        stages=3, blocks_per_stage=1, block_bits=6400, rule_bits=64,
        capacity_gbps=100.0,
    )
    sfcs = (
        SFC(name="fwd", nf_types=(1, 2, 3), rules=(10, 10, 10), bandwidth_gbps=30.0),
        SFC(name="rev", nf_types=(3, 2, 1), rules=(10, 10, 10), bandwidth_gbps=1.0),
    )
    inst = ProblemInstance(switch=switch, sfcs=sfcs, num_types=3, max_recirculations=2)
    placement = greedy_place(inst)
    assert check_placement(placement) == []
    # The forward chain is placed first (higher metric); the reverse chain
    # must recirculate.
    assert placement.num_placed == 2
    assert placement.passes(1) >= 2


def test_try_place_chain_rolls_back_on_failure(tiny_instance):
    state = PipelineState(tiny_instance)
    impossible = SFC(
        name="huge", nf_types=(1,), rules=(10_000,), bandwidth_gbps=1.0
    )
    before = state.snapshot()
    result = try_place_chain(state, impossible, tiny_instance.virtual_stages)
    assert result is None
    assert (state.physical == before.physical).all()
    assert (state.entries == before.entries).all()
    assert state.backplane_gbps == before.backplane_gbps


def test_try_place_chain_prefers_existing_physical(tiny_instance):
    state = PipelineState(tiny_instance)
    state.install_physical(0, 2)  # type 1 at stage 2
    sfc = SFC(name="s", nf_types=(1,), rules=(10,), bandwidth_gbps=1.0)
    stages = try_place_chain(state, sfc, tiny_instance.virtual_stages)
    # Reuses the installed NF at stage 2 (virtual stage 3) instead of
    # installing a new physical NF at stage 0.
    assert stages == (3,)


def test_greedy_installs_all_types_for_constraint4(tiny_instance):
    placement = greedy_place(tiny_instance, require_all_types=True)
    assert placement.physical.any(axis=1).all()


def test_greedy_skip_set(tiny_instance):
    placement = greedy_place(tiny_instance, skip={0, 1, 2})
    assert placement.num_placed == 0


def test_greedy_solve_time_recorded(tiny_instance):
    placement = greedy_place(tiny_instance)
    assert placement.solve_seconds > 0
