"""Tests for the runtime update engine (§V-E)."""

import numpy as np
import pytest

from repro.core.greedy import greedy_place
from repro.core.spec import SFC, ProblemInstance, SwitchSpec
from repro.core.state import PipelineState
from repro.core.update import RuntimeUpdater, merge_churn, rule_churn_by_stage
from repro.core.verify import check_placement
from repro.errors import PlacementError
from repro.rng import make_rng


@pytest.fixture()
def live(tiny_instance):
    placement = greedy_place(tiny_instance)
    assert placement.num_placed == 3
    return RuntimeUpdater(placement)


def test_remove_releases_resources(live, tiny_instance):
    before_entries = live.state.entries.sum()
    before_bw = live.state.backplane_gbps
    removed = live.remove([0])
    assert removed == [0]
    assert live.state.entries.sum() == before_entries - tiny_instance.sfcs[0].total_rules
    assert live.state.backplane_gbps < before_bw
    assert 0 not in live.placement.assignments


def test_remove_unknown_is_noop(live):
    assert live.remove([99]) == []


def test_remove_keeps_physical_nfs(live):
    physical_before = live.state.physical.copy()
    live.remove([0, 1, 2])
    assert (live.state.physical == physical_before).all()


def test_readmit_after_departure(live):
    live.remove([0])
    result = live.admit()
    assert 0 in result.added
    assert live.placement.num_placed == 3
    assert check_placement(live.placement) == []


def test_admit_with_candidate_filter(live):
    live.remove([0, 1])
    result = live.admit(candidates=[1])
    assert result.added == [1]
    assert 0 not in live.placement.assignments


def test_admit_never_disturbs_survivors(live):
    survivors = {
        l: asg.stages for l, asg in live.placement.assignments.items() if l != 0
    }
    live.remove([0])
    live.admit()
    for l, stages in survivors.items():
        assert live.placement.assignments[l].stages == stages


def test_modify_is_remove_plus_admit(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(placement)
    result = updater.modify(0, 0)  # re-place the same chain
    assert result.removed == [0]
    assert result.added == [0]
    assert check_placement(updater.placement) == []


def test_threshold_triggers_reconfiguration(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(
        placement,
        reconfigure_threshold=0.1,
        reference_solver=lambda inst: greedy_place(inst),
    )
    # Remove everything, then admit nothing (empty candidate set) -> current
    # objective 0, reference > 0 -> gap 1.0 > 0.1 -> full re-place adopted.
    updater.remove([0, 1, 2])
    result = updater.admit(candidates=[])
    assert result.reconfigured
    assert result.reference_objective > 0
    assert updater.placement.num_placed == 3


def test_threshold_without_reference_solver_raises(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(placement, reconfigure_threshold=0.1)
    with pytest.raises(PlacementError):
        updater.admit()


def test_no_reconfiguration_when_within_threshold(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(
        placement,
        reconfigure_threshold=0.5,
        reference_solver=lambda inst: greedy_place(inst),
    )
    result = updater.admit()  # already optimal under greedy's own reference
    assert not result.reconfigured


def test_update_keeps_feasibility_under_churn(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(placement)
    for drop in ([0], [1, 2], [0, 1]):
        updater.remove(drop)
        updater.admit()
        assert check_placement(updater.placement) == []


# ----------------------------------------------------------------------
# Rule-churn accounting and deterministic removal order
# ----------------------------------------------------------------------
def test_remove_returns_sorted_deduplicated_indices(live):
    assert live.remove([2, 0, 2, 0]) == [0, 2]
    assert live.remove([1, 99]) == [1]


def test_rule_churn_by_stage_maps_virtual_to_physical():
    sfc = SFC(name="x", nf_types=(1, 2, 1), rules=(10, 20, 30), bandwidth_gbps=1.0)
    # Virtual stages (1, 2, 4) on a 3-stage switch fold position 2 back to
    # physical stage 0, pooling its rules with position 0's.
    assert rule_churn_by_stage(sfc, (1, 2, 4), 3) == {0: 40, 1: 20}
    assert merge_churn({0: 5}, {0: 40, 2: 1}) == {0: 45, 2: 1}


def test_update_result_reports_round_churn(live, tiny_instance):
    sfc = tiny_instance.sfcs[0]
    stages_before = live.assignments[0].stages
    live.remove([0])
    result = live.admit()
    assert result.added == [0]
    # Departure (accumulated since last round) and re-admission both show.
    assert result.rules_deleted == sfc.total_rules
    assert result.rules_added == sfc.total_rules
    S = tiny_instance.switch.stages
    assert result.rules_deleted_by_stage == rule_churn_by_stage(sfc, stages_before, S)
    assert result.rules_added_by_stage == rule_churn_by_stage(
        sfc, live.assignments[0].stages, S
    )


def test_quiet_round_reports_zero_churn(live):
    result = live.admit()  # everything already placed, nothing pending
    assert result.rules_added == 0
    assert result.rules_deleted == 0
    assert result.rules_added_by_stage == {}
    assert result.rules_deleted_by_stage == {}


# ----------------------------------------------------------------------
# The drift path: seeded churn that provably crosses the gap
# ----------------------------------------------------------------------
@pytest.fixture()
def drift_updater():
    """One stage of two 100-entry blocks, three single-NF candidates:
    A (200 rules, 10 Gbps) fills the stage alone; B and C (100 rules,
    1 Gbps each) fill it together.  Hosting {B, C} scores 2; hosting {A}
    scores 10 — so any churn that leaves one small survivor makes the
    incremental objective drift to 5x below the reference."""
    switch = SwitchSpec(
        stages=1, blocks_per_stage=2, block_bits=6400, rule_bits=64,
        capacity_gbps=1000.0,
    )
    instance = ProblemInstance(
        switch=switch,
        sfcs=(
            SFC(name="A", nf_types=(1,), rules=(200,), bandwidth_gbps=10.0),
            SFC(name="B", nf_types=(1,), rules=(100,), bandwidth_gbps=1.0),
            SFC(name="C", nf_types=(1,), rules=(100,), bandwidth_gbps=1.0),
        ),
        num_types=1,
        max_recirculations=0,
    )
    origin = greedy_place(instance, skip={0})  # A arrives later
    assert set(origin.assignments) == {1, 2}
    return RuntimeUpdater(
        origin,
        reconfigure_threshold=0.25,
        reference_solver=lambda inst: greedy_place(inst),
    )


def test_seeded_churn_crosses_drift_gap_and_reconfigures(drift_updater):
    updater = drift_updater
    instance = updater.instance
    # Seeded churn: one of the two small tenants departs (either choice
    # provably crosses the gap).  A cannot fit incrementally beside the
    # survivor (300 rules > 2 blocks), so the incremental round keeps
    # objective 2 while a fresh solve hosts A alone at objective 10:
    # gap = 1 - 2/10 = 0.8 > 0.25 -> reconfiguration.
    rng = make_rng(20220522)
    departing = int(rng.choice(np.array([1, 2])))
    updater.remove([departing])
    result = updater.admit()
    assert result.reconfigured
    assert result.reference_objective == pytest.approx(10.0)
    assert set(updater.assignments) == {0}
    assert updater.placement.objective == pytest.approx(10.0)

    # Resource state equals a fresh solve's, array for array.
    reference_state = PipelineState.from_placement(greedy_place(instance))
    assert np.array_equal(updater.state.entries, reference_state.entries)
    assert np.array_equal(updater.state.nf_blocks, reference_state.nf_blocks)
    assert np.array_equal(updater.state.physical, reference_state.physical)
    assert updater.state.backplane_gbps == reference_state.backplane_gbps
    assert check_placement(updater.placement) == []

    # Churn accounting covers the full teardown + reinstall: the departed
    # tenant and the re-admitted survivor are deleted (100 + 2*100 counting
    # the incremental re-add of the departed chain) and A's 200 rules plus
    # the transient re-add are installed.
    assert result.rules_deleted == 300
    assert result.rules_added == 300
    assert result.rules_deleted_by_stage == {0: 300}
    assert result.rules_added_by_stage == {0: 300}


def test_drift_gap_below_threshold_keeps_incremental_placement():
    switch = SwitchSpec(
        stages=1, blocks_per_stage=2, block_bits=6400, rule_bits=64,
        capacity_gbps=1000.0,
    )
    instance = ProblemInstance(
        switch=switch,
        sfcs=(
            SFC(name="A", nf_types=(1,), rules=(200,), bandwidth_gbps=10.0),
            SFC(name="B", nf_types=(1,), rules=(100,), bandwidth_gbps=1.0),
            SFC(name="C", nf_types=(1,), rules=(100,), bandwidth_gbps=1.0),
        ),
        num_types=1,
        max_recirculations=0,
    )
    updater = RuntimeUpdater(
        greedy_place(instance, skip={0}),
        reconfigure_threshold=0.9,  # above the 0.8 gap
        reference_solver=lambda inst: greedy_place(inst),
    )
    result = updater.admit()
    assert not result.reconfigured
    assert set(updater.assignments) == {1, 2}
