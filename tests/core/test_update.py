"""Tests for the runtime update engine (§V-E)."""

import pytest

from repro.core.greedy import greedy_place
from repro.core.spec import SFC, ProblemInstance
from repro.core.update import RuntimeUpdater
from repro.core.verify import check_placement
from repro.errors import PlacementError


@pytest.fixture()
def live(tiny_instance):
    placement = greedy_place(tiny_instance)
    assert placement.num_placed == 3
    return RuntimeUpdater(placement)


def test_remove_releases_resources(live, tiny_instance):
    before_entries = live.state.entries.sum()
    before_bw = live.state.backplane_gbps
    removed = live.remove([0])
    assert removed == [0]
    assert live.state.entries.sum() == before_entries - tiny_instance.sfcs[0].total_rules
    assert live.state.backplane_gbps < before_bw
    assert 0 not in live.placement.assignments


def test_remove_unknown_is_noop(live):
    assert live.remove([99]) == []


def test_remove_keeps_physical_nfs(live):
    physical_before = live.state.physical.copy()
    live.remove([0, 1, 2])
    assert (live.state.physical == physical_before).all()


def test_readmit_after_departure(live):
    live.remove([0])
    result = live.admit()
    assert 0 in result.added
    assert live.placement.num_placed == 3
    assert check_placement(live.placement) == []


def test_admit_with_candidate_filter(live):
    live.remove([0, 1])
    result = live.admit(candidates=[1])
    assert result.added == [1]
    assert 0 not in live.placement.assignments


def test_admit_never_disturbs_survivors(live):
    survivors = {
        l: asg.stages for l, asg in live.placement.assignments.items() if l != 0
    }
    live.remove([0])
    live.admit()
    for l, stages in survivors.items():
        assert live.placement.assignments[l].stages == stages


def test_modify_is_remove_plus_admit(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(placement)
    result = updater.modify(0, 0)  # re-place the same chain
    assert result.removed == [0]
    assert result.added == [0]
    assert check_placement(updater.placement) == []


def test_threshold_triggers_reconfiguration(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(
        placement,
        reconfigure_threshold=0.1,
        reference_solver=lambda inst: greedy_place(inst),
    )
    # Remove everything, then admit nothing (empty candidate set) -> current
    # objective 0, reference > 0 -> gap 1.0 > 0.1 -> full re-place adopted.
    updater.remove([0, 1, 2])
    result = updater.admit(candidates=[])
    assert result.reconfigured
    assert result.reference_objective > 0
    assert updater.placement.num_placed == 3


def test_threshold_without_reference_solver_raises(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(placement, reconfigure_threshold=0.1)
    with pytest.raises(PlacementError):
        updater.admit()


def test_no_reconfiguration_when_within_threshold(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(
        placement,
        reconfigure_threshold=0.5,
        reference_solver=lambda inst: greedy_place(inst),
    )
    result = updater.admit()  # already optimal under greedy's own reference
    assert not result.reconfigured


def test_update_keeps_feasibility_under_churn(tiny_instance):
    placement = greedy_place(tiny_instance)
    updater = RuntimeUpdater(placement)
    for drop in ([0], [1, 2], [0, 1]):
        updater.remove(drop)
        updater.admit()
        assert check_placement(updater.placement) == []
