"""Shared fixtures for control-plane tests: small, fast instances."""

import pytest

from repro.core.spec import SFC, ProblemInstance, SwitchSpec


@pytest.fixture()
def tiny_switch():
    """3 stages x 4 blocks of 100 entries, 100 Gbps backplane."""
    return SwitchSpec(
        stages=3,
        blocks_per_stage=4,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=100.0,
    )


@pytest.fixture()
def tiny_instance(tiny_switch):
    """3 NF types, 3 chains; chain 2 needs a fold (reverse order)."""
    sfcs = (
        SFC(name="a", nf_types=(1, 2), rules=(50, 50), bandwidth_gbps=10.0),
        SFC(name="b", nf_types=(2, 3), rules=(80, 20), bandwidth_gbps=20.0),
        SFC(name="c", nf_types=(3, 1), rules=(30, 30), bandwidth_gbps=5.0),
    )
    return ProblemInstance(
        switch=tiny_switch, sfcs=sfcs, num_types=3, max_recirculations=1
    )
