"""Tests for the separate (two-level) placement baseline."""

import numpy as np
import pytest

from repro.core.greedy import greedy_place
from repro.core.ilp import solve_ilp
from repro.core.separate import solve_separate
from repro.core.verify import check_placement
from repro.errors import PlacementError


def test_separate_is_feasible(tiny_instance):
    placement = solve_separate(tiny_instance)
    assert placement.algorithm == "separate"
    assert check_placement(placement) == []


def test_separate_never_beats_joint(tiny_instance):
    joint = solve_ilp(tiny_instance, backend="scipy")
    separate = solve_separate(tiny_instance)
    assert separate.objective <= joint.objective + 1e-6


def test_separate_at_least_greedy(tiny_instance):
    # Given greedy's own layout, the optimal logical placement can only
    # improve on greedy's logical choices.
    greedy = greedy_place(tiny_instance)
    separate = solve_separate(tiny_instance, layout=greedy.physical)
    assert separate.objective >= greedy.objective - 1e-6


def test_layout_is_respected(tiny_instance):
    layout = np.zeros((3, 3), dtype=bool)
    layout[0, 0] = layout[1, 1] = layout[2, 2] = True
    placement = solve_separate(tiny_instance, layout=layout)
    assert (placement.physical == layout).all()


def test_bad_layout_shape_rejected(tiny_instance):
    with pytest.raises(PlacementError):
        solve_separate(tiny_instance, layout=np.zeros((2, 2), dtype=bool))


def test_infeasible_layout_raises(tiny_instance):
    # All-empty layout violates constraint 4 when required.
    layout = np.zeros((3, 3), dtype=bool)
    with pytest.raises(PlacementError):
        solve_separate(tiny_instance, layout=layout, require_all_types=True)


def test_solve_seconds_recorded(tiny_instance):
    assert solve_separate(tiny_instance).solve_seconds > 0
