"""Tests for the LP-relaxation randomized rounding (Algorithm 1)."""

import pytest

from repro.core.ilp import solve_ilp
from repro.core.rounding import solve_with_rounding
from repro.core.spec import SFC, ProblemInstance
from repro.core.verify import check_placement


def test_result_is_feasible(tiny_instance):
    result = solve_with_rounding(tiny_instance, rng=1)
    assert check_placement(result.placement) == []
    assert result.placement.algorithm == "rounding"


def test_objective_bounded_by_lp(tiny_instance):
    result = solve_with_rounding(tiny_instance, rng=1)
    assert result.placement.objective <= result.lp_objective + 1e-6
    assert 0.0 <= result.gap <= 1.0


def test_objective_bounded_by_ilp(tiny_instance):
    result = solve_with_rounding(tiny_instance, rng=1)
    optimal = solve_ilp(tiny_instance, backend="scipy")
    assert result.placement.objective <= optimal.objective + 1e-6


def test_near_optimal_on_roomy_instance(tiny_instance):
    # All three chains fit comfortably; rounding should find all of them.
    result = solve_with_rounding(tiny_instance, rng=3)
    assert result.placement.num_placed == 3
    assert result.gap == pytest.approx(0.0, abs=1e-6)


def test_deterministic_under_seed(tiny_instance):
    a = solve_with_rounding(tiny_instance, rng=42)
    b = solve_with_rounding(tiny_instance, rng=42)
    assert a.placement.objective == pytest.approx(b.placement.objective)
    assert a.placement.assignments.keys() == b.placement.assignments.keys()


def test_recirculation_budgets_respected(tiny_instance):
    result = solve_with_rounding(tiny_instance, rng=1, recirculation_budgets=[0])
    S = tiny_instance.switch.stages
    for asg in result.placement.assignments.values():
        assert asg.passes(S) == 1
    assert list(result.lp_objective_per_r) == [0]


def test_capacity_respected(tiny_switch):
    sfcs = tuple(
        SFC(name=f"s{i}", nf_types=(1,), rules=(10,), bandwidth_gbps=40.0)
        for i in range(5)
    )
    inst = ProblemInstance(switch=tiny_switch, sfcs=sfcs, num_types=1)
    result = solve_with_rounding(inst, rng=1)
    assert result.placement.backplane_gbps <= tiny_switch.capacity_gbps + 1e-9
    assert result.placement.num_placed == 2


def test_attempt_diagnostics_present(tiny_instance):
    result = solve_with_rounding(tiny_instance, rng=1)
    assert result.attempts_per_r
    assert all(a >= 1 for a in result.attempts_per_r.values())
    assert result.placement.solve_seconds > 0


def test_own_backend_path(tiny_instance):
    # The tiny instance's LP is small enough for the in-tree simplex.
    result = solve_with_rounding(tiny_instance, rng=1, backend="scipy")
    own = solve_with_rounding(tiny_instance, rng=1, backend="own")
    assert own.placement.objective == pytest.approx(result.placement.objective)


def test_empty_candidate_list(tiny_switch):
    inst = ProblemInstance(switch=tiny_switch, sfcs=(), num_types=2)
    result = solve_with_rounding(inst, rng=1)
    assert result.placement.num_placed == 0
    # Constraint 4 still honored by the fallback layout.
    assert result.placement.physical.any(axis=1).all()
