"""Tests for the §VII extensions: NF state accounting and sub-NF expansion."""

import pytest

from repro.core.extensions import (
    account_nf_state,
    collapse_assignment,
    expand_multi_stage_nfs,
)
from repro.core.greedy import greedy_place
from repro.core.ilp import solve_ilp
from repro.core.spec import SFC, ProblemInstance
from repro.core.verify import check_placement
from repro.errors import PlacementError


@pytest.fixture()
def instance(tiny_switch):
    sfcs = (
        SFC(name="a", nf_types=(1, 2), rules=(50, 50), bandwidth_gbps=10.0),
        SFC(name="b", nf_types=(2, 3), rules=(80, 20), bandwidth_gbps=20.0),
    )
    return ProblemInstance(switch=tiny_switch, sfcs=sfcs, num_types=3,
                           max_recirculations=1)


class TestStateAccounting:
    def test_state_added_to_matching_types(self, instance):
        out = account_nf_state(instance, {2: 30})
        assert out.sfcs[0].rules == (50, 80)
        assert out.sfcs[1].rules == (110, 20)
        # Untouched fields preserved.
        assert out.sfcs[0].bandwidth_gbps == 10.0
        assert out.num_types == 3

    def test_original_instance_unchanged(self, instance):
        account_nf_state(instance, {1: 100})
        assert instance.sfcs[0].rules == (50, 50)

    def test_unknown_type_rejected(self, instance):
        with pytest.raises(PlacementError):
            account_nf_state(instance, {9: 10})

    def test_negative_state_rejected(self, instance):
        with pytest.raises(PlacementError):
            account_nf_state(instance, {1: -1})

    def test_state_reduces_admission(self, tiny_switch):
        # Chains that barely fit stop fitting once state is charged.
        sfcs = tuple(
            SFC(name=f"s{i}", nf_types=(1,), rules=(350,), bandwidth_gbps=1.0)
            for i in range(3)
        )
        inst = ProblemInstance(switch=tiny_switch, sfcs=sfcs, num_types=1,
                               max_recirculations=0)
        plain = solve_ilp(inst, backend="scipy")
        heavy = solve_ilp(account_nf_state(inst, {1: 400}), backend="scipy")
        assert heavy.num_placed < plain.num_placed


class TestSubNFExpansion:
    def test_expansion_shapes(self, instance):
        exp = expand_multi_stage_nfs(instance, {2: 3})
        assert exp.expanded.num_types == 5  # 3 originals + 2 synthetic
        assert exp.subtypes[2] == (2, 4, 5)
        a = exp.expanded.sfcs[0]
        assert a.nf_types == (1, 2, 4, 5)
        assert a.rules == (50, 50, 0, 0)  # big table keeps the rules
        assert exp.position_map[(0, 1)] == (1, 2, 3)

    def test_span_one_is_identity(self, instance):
        exp = expand_multi_stage_nfs(instance, {})
        assert exp.expanded.sfcs == instance.sfcs
        assert exp.expanded.num_types == 3

    def test_validation(self, instance):
        with pytest.raises(PlacementError):
            expand_multi_stage_nfs(instance, {9: 2})
        with pytest.raises(PlacementError):
            expand_multi_stage_nfs(instance, {1: 0})

    def test_expanded_instance_solves_and_collapses(self, instance):
        exp = expand_multi_stage_nfs(instance, {2: 2})
        placement = solve_ilp(exp.expanded, backend="scipy")
        assert check_placement(placement) == []
        collapsed = collapse_assignment(exp, placement)
        for l, stages in collapsed.items():
            original = instance.sfcs[l]
            assert len(stages) == original.length
            assert list(stages) == sorted(stages)

    def test_collapse_rejects_foreign_placement(self, instance):
        exp = expand_multi_stage_nfs(instance, {2: 2})
        other = greedy_place(instance)
        with pytest.raises(PlacementError):
            collapse_assignment(exp, other)

    def test_expansion_consumes_more_stages(self, instance):
        # A span-2 NF needs two consecutive stage slots: the expanded chain
        # is longer, so its last stage is at least the original's.
        exp = expand_multi_stage_nfs(instance, {2: 2})
        plain = solve_ilp(instance, backend="scipy")
        expanded = solve_ilp(exp.expanded, backend="scipy")
        if 0 in plain.assignments and 0 in expanded.assignments:
            assert (
                expanded.assignments[0].last_stage
                >= plain.assignments[0].last_stage
            )
