"""Tests for the independent placement feasibility oracle."""

import numpy as np

from repro.core.placement import NFAssignment, Placement
from repro.core.verify import check_placement


def _layout(instance, pairs):
    x = np.zeros((instance.num_types, instance.switch.stages), dtype=bool)
    for i, s in pairs:
        x[i, s] = True
    return x


def test_feasible_placement_passes(tiny_instance):
    p = Placement(
        instance=tiny_instance,
        physical=_layout(tiny_instance, [(0, 0), (1, 1), (2, 2)]),
        assignments={0: NFAssignment(0, (1, 2))},
    )
    assert check_placement(p) == []


def test_missing_type_flagged(tiny_instance):
    p = Placement(
        instance=tiny_instance,
        physical=_layout(tiny_instance, [(0, 0), (1, 1)]),  # type 3 missing
    )
    problems = check_placement(p, require_all_types=True)
    assert any("constraint 4" in msg for msg in problems)
    assert check_placement(p, require_all_types=False) == []


def test_wrong_type_at_stage_flagged(tiny_instance):
    p = Placement(
        instance=tiny_instance,
        physical=_layout(tiny_instance, [(0, 0), (1, 1), (2, 2)]),
        # Chain a is (type1, type2) but stage 2 hosts type 3.
        assignments={0: NFAssignment(0, (1, 3))},
    )
    problems = check_placement(p)
    assert any("constraint 9" in msg for msg in problems)


def test_stage_out_of_range_flagged(tiny_instance):
    p = Placement(
        instance=tiny_instance,
        physical=_layout(tiny_instance, [(0, 0), (1, 1), (2, 2)]),
        assignments={0: NFAssignment(0, (1, 99))},
    )
    problems = check_placement(p)
    assert any("outside" in msg for msg in problems)


def test_memory_overflow_flagged(tiny_instance):
    # 4 blocks x 100 entries per stage; 500 entries of type 1 on stage 0
    # need 5 blocks.
    big = tiny_instance.with_sfcs(
        [tiny_instance.sfcs[0]]
    )
    # Craft the overflow by brute force: chain a has 50+50 entries, so stack
    # the same stage via many assignments is impossible here; instead shrink
    # blocks: use a placement claiming stage memory beyond capacity.
    p = Placement(
        instance=tiny_instance,
        physical=_layout(tiny_instance, [(0, 0), (1, 0), (2, 0)]),
        assignments={
            0: NFAssignment(0, (1, 4)),  # 50 @ (1, s0), 50 @ (2, s0 pass 2)
            1: NFAssignment(1, (4, 5)),
            2: NFAssignment(2, (1, 2)),
        },
    )
    # All six NFs fold onto stage 0? No: stages (1,4) -> s0, s0; (4,5) -> s0,
    # s1... build the count and just assert the checker agrees with a direct
    # recomputation.
    problems = check_placement(p, require_all_types=False)
    blocks = np.maximum(p.blocks_by_type_stage(), p.physical.astype(np.int64)).sum(axis=0)
    if (blocks > tiny_instance.switch.blocks_per_stage).any():
        assert any("blocks" in msg for msg in problems)
    else:
        assert not any("blocks" in msg for msg in problems)


def test_capacity_overflow_flagged(tiny_switch, tiny_instance):
    # Chain b (20 Gbps) at 6 passes... capacity is 100; force overflow with
    # a high-bandwidth instance.
    from repro.core.spec import SFC, ProblemInstance

    sfcs = (
        SFC(name="big", nf_types=(1, 2), rules=(10, 10), bandwidth_gbps=60.0),
    )
    inst = ProblemInstance(switch=tiny_switch, sfcs=sfcs, num_types=2)
    p = Placement(
        instance=inst,
        physical=np.array(
            [[True, False, False], [True, False, False]], dtype=bool
        ),
        # Stages 1 and 4: two passes -> 120 Gbps backplane > 100.
        assignments={0: NFAssignment(0, (1, 4))},
    )
    problems = check_placement(p, require_all_types=False)
    assert any("constraint 12" in msg for msg in problems)


def test_reserve_toggle_changes_verdict(tiny_instance):
    # Shrink the switch to 3 blocks/stage: the rule blocks alone fit, but
    # counting one reserve block per installed-idle physical NF overflows
    # stage 1 (type2 rules take 2 blocks, types 1 and 3 idle-reserve 1 each).
    from repro.core.spec import ProblemInstance, SwitchSpec

    switch = SwitchSpec(
        stages=3, blocks_per_stage=3, block_bits=6400, rule_bits=64,
        capacity_gbps=100.0,
    )
    inst = ProblemInstance(
        switch=switch, sfcs=tiny_instance.sfcs, num_types=3, max_recirculations=1
    )
    physical = np.ones((3, 3), dtype=bool)
    p = Placement(
        instance=inst,
        physical=physical,
        assignments={
            0: NFAssignment(0, (1, 2)),  # 50 @ (1, s0), 50 @ (2, s1)
            1: NFAssignment(1, (2, 3)),  # 80 @ (2, s1), 20 @ (3, s2)
        },
    )
    without = check_placement(p, reserve_physical_block=False)
    with_reserve = check_placement(p, reserve_physical_block=True)
    assert without == []
    assert any("blocks" in m for m in with_reserve)
