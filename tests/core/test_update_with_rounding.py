"""Runtime update driven by the rounding solver as the reference — the
configuration a production deployment of §V-E would actually run."""

import pytest

from repro.core.greedy import greedy_place
from repro.core.rounding import solve_with_rounding
from repro.core.update import RuntimeUpdater
from repro.core.verify import check_placement


@pytest.fixture()
def updater(tiny_instance):
    placement = solve_with_rounding(tiny_instance, rng=3).placement
    assert placement.num_placed >= 2
    return RuntimeUpdater(
        placement,
        reconfigure_threshold=0.2,
        reference_solver=lambda inst: solve_with_rounding(inst, rng=4).placement,
    )


def test_rounding_seeded_updater_churns_feasibly(updater):
    updater.remove(list(updater.placement.assignments)[:1])
    result = updater.admit()
    assert check_placement(updater.placement) == []
    # Either the incremental fill was good enough or the reference replaced it.
    if result.reconfigured:
        assert result.reference_objective is not None


def test_reference_objective_reported_when_threshold_set(updater):
    result = updater.admit()
    assert result.reference_objective is not None
    assert result.reference_objective >= 0


def test_reconfiguration_adopts_reference_assignments(tiny_instance):
    initial = greedy_place(tiny_instance, skip={0, 1})  # deliberately poor
    reference = solve_with_rounding(tiny_instance, rng=5).placement
    updater = RuntimeUpdater(
        initial,
        reconfigure_threshold=0.05,
        reference_solver=lambda inst: reference,
    )
    result = updater.admit(candidates=[])
    if result.reconfigured:
        assert updater.placement.objective == pytest.approx(reference.objective)
        assert check_placement(updater.placement) == []
