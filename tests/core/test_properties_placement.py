"""Property-based tests (hypothesis) for the placement stack.

Invariants, over randomly generated problem instances:

* every algorithm returns a placement the independent oracle accepts;
* LP relaxation >= ILP optimum >= {rounding, greedy, separate} objectives;
* placements respect the recirculation budget and capacity;
* PipelineState round-trips through Placement and survives arbitrary valid
  add/remove sequences with non-negative resources.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.greedy import greedy_place, try_place_chain
from repro.core.ilp import solve_ilp
from repro.core.rounding import solve_with_rounding
from repro.core.spec import SFC, ProblemInstance, SwitchSpec
from repro.core.state import PipelineState
from repro.core.verify import check_placement
from repro.lp import solve as lp_solve
from repro.core.ilp import build_placement_model

# Small-but-varied instance generator: 2-4 types, 2-4 stages, 1-4 chains.
@st.composite
def instances(draw):
    num_types = draw(st.integers(2, 4))
    stages = draw(st.integers(2, 4))
    blocks = draw(st.integers(2, 6))
    capacity = draw(st.sampled_from([50.0, 100.0, 200.0]))
    switch = SwitchSpec(
        stages=stages,
        blocks_per_stage=blocks,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=capacity,
    )
    num_sfcs = draw(st.integers(1, 4))
    sfcs = []
    for l in range(num_sfcs):
        length = draw(st.integers(1, min(3, num_types)))
        types = draw(
            st.lists(
                st.integers(1, num_types),
                min_size=length,
                max_size=length,
                unique=True,
            )
        )
        rules = draw(
            st.lists(st.integers(1, 250), min_size=length, max_size=length)
        )
        bw = draw(st.floats(1.0, 40.0, allow_nan=False))
        sfcs.append(
            SFC(
                name=f"s{l}",
                nf_types=tuple(types),
                rules=tuple(rules),
                bandwidth_gbps=bw,
            )
        )
    max_rec = draw(st.integers(0, 2))
    return ProblemInstance(
        switch=switch, sfcs=tuple(sfcs), num_types=num_types,
        max_recirculations=max_rec,
    )


COMMON = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@given(instance=instances())
@settings(**COMMON)
def test_greedy_always_feasible(instance):
    placement = greedy_place(instance)
    problems = check_placement(placement, require_all_types=False)
    assert problems == [], problems
    assert placement.backplane_gbps <= instance.switch.capacity_gbps + 1e-9
    for asg in placement.assignments.values():
        assert asg.passes(instance.switch.stages) <= instance.max_recirculations + 1


@given(instance=instances(), seed=st.integers(0, 1000))
@settings(**COMMON)
def test_rounding_always_feasible_and_bounded(instance, seed):
    result = solve_with_rounding(instance, rng=seed, require_all_types=False)
    problems = check_placement(result.placement, require_all_types=False)
    assert problems == [], problems
    # Objective never exceeds the LP bound of the budget it won on.
    if result.lp_objective > 0:
        assert result.placement.objective <= result.lp_objective + 1e-6


@given(instance=instances())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_ilp_dominates_heuristics(instance):
    optimal = solve_ilp(instance, backend="scipy", require_all_types=False)
    assert check_placement(optimal, require_all_types=False) == []
    greedy = greedy_place(instance, require_all_types=False)
    assert greedy.objective <= optimal.objective + 1e-6
    rounding = solve_with_rounding(instance, rng=1, require_all_types=False)
    assert rounding.placement.objective <= optimal.objective + 1e-6
    # And the LP relaxation upper-bounds the ILP.
    ilp = build_placement_model(instance, require_all_types=False)
    relaxed = lp_solve(ilp.model, backend="scipy", relax=True)
    if relaxed.is_feasible:
        assert optimal.objective <= relaxed.objective + 1e-6


@given(instance=instances(), seed=st.integers(0, 10_000))
@settings(**COMMON)
def test_state_survives_random_churn(instance, seed):
    rng = np.random.default_rng(seed)
    state = PipelineState(instance)
    placed = []  # (sfc index, stages)
    for _ in range(12):
        if placed and rng.random() < 0.4:
            l, stages = placed.pop(int(rng.integers(len(placed))))
            sfc = instance.sfcs[l]
            for j, k in enumerate(stages):
                state.remove_logical_nf(
                    sfc.nf_types[j] - 1,
                    (k - 1) % instance.switch.stages,
                    sfc.rules[j],
                )
            state.release_backplane(
                -(-stages[-1] // instance.switch.stages) * sfc.bandwidth_gbps
            )
        else:
            l = int(rng.integers(instance.num_sfcs))
            stages = try_place_chain(
                state, instance.sfcs[l], instance.virtual_stages
            )
            if stages is not None:
                placed.append((l, stages))
        # Invariants after every operation:
        assert (state.entries >= 0).all()
        assert state.backplane_gbps >= -1e-9
        for s in range(instance.switch.stages):
            assert 0 <= state.blocks_at_stage(s) <= instance.switch.blocks_per_stage


@given(instance=instances())
@settings(**COMMON)
def test_placement_state_roundtrip(instance):
    placement = greedy_place(instance, require_all_types=False)
    rebuilt = PipelineState.from_placement(placement)
    assert rebuilt.backplane_gbps == pytest.approx(placement.backplane_gbps)
    again = rebuilt.make_placement(placement.assignments, "roundtrip")
    assert again.objective == pytest.approx(placement.objective)
    assert (again.entries_by_type_stage() == placement.entries_by_type_stage()).all()


@given(instance=instances())
@settings(**COMMON)
def test_metrics_internally_consistent(instance):
    placement = greedy_place(instance, require_all_types=False)
    # offloaded <= backplane <= passes-weighted upper bound
    assert placement.offloaded_gbps <= placement.backplane_gbps + 1e-9
    max_passes = instance.max_recirculations + 1
    assert placement.backplane_gbps <= max_passes * placement.offloaded_gbps + 1e-9
    # objective = sum of weights of placed chains
    expected = sum(instance.sfcs[l].weight for l in placement.assignments)
    assert placement.objective == pytest.approx(expected)
    # entry utilization in (0, 1] when anything is placed
    if placement.total_entries:
        assert 0.0 < placement.entry_utilization <= 1.0
