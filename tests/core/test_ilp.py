"""Tests for the joint placement MILP builder and solver."""

import pytest

from repro.core.ilp import build_placement_model, solve_ilp
from repro.core.spec import SFC, ProblemInstance, SwitchSpec
from repro.core.verify import check_placement
from repro.lp import SolveStatus
from repro.lp import solve as lp_solve


def test_model_dimensions(tiny_instance):
    ilp = build_placement_model(tiny_instance)
    I, S = 3, 3
    K = tiny_instance.virtual_stages
    assert len(ilp.x) == I and len(ilp.x[0]) == S
    assert len(ilp.z) == 3
    assert len(ilp.z[0]) == 2           # chain a has 2 NFs
    assert len(ilp.z[0][0]) == K
    assert len(ilp.d) == 3 and len(ilp.p) == 3
    assert ilp.y is not None            # consolidated variant has block vars


def test_solve_places_everything_when_roomy(tiny_instance):
    placement = solve_ilp(tiny_instance, backend="scipy")
    assert placement.num_placed == 3
    assert check_placement(placement) == []
    # Total objective = sum of weights.
    expected = sum(s.weight for s in tiny_instance.sfcs)
    assert placement.objective == pytest.approx(expected)


def test_out_of_order_chain_gets_recirculated(tiny_instance):
    placement = solve_ilp(tiny_instance, backend="scipy")
    # Chain c is (3, 1): with 3 types on 3 stages and chains a (1,2) and
    # b (2,3) also placed, type order along the pipeline cannot serve
    # 3-before-1 in a single pass for every chain simultaneously -> chain c
    # (or another) must recirculate at least once in any full placement.
    total_passes = sum(placement.passes(l) for l in range(3))
    assert total_passes >= 4  # 3 chains, at least one needs 2 passes


def test_capacity_constraint_limits_selection(tiny_switch):
    # Two chains, each 60 Gbps single-pass; capacity 100 -> only one fits.
    sfcs = (
        SFC(name="a", nf_types=(1,), rules=(10,), bandwidth_gbps=60.0),
        SFC(name="b", nf_types=(1,), rules=(10,), bandwidth_gbps=60.0),
    )
    inst = ProblemInstance(switch=tiny_switch, sfcs=sfcs, num_types=1)
    placement = solve_ilp(inst, backend="scipy")
    assert placement.num_placed == 1
    assert placement.backplane_gbps <= 100.0


def test_memory_constraint_limits_selection(tiny_switch):
    # Each chain needs 4 blocks (350 entries / 100-entry blocks with
    # reserve); the switch has 3 stages x 4 blocks.  Three chains of one
    # type-1 NF of 350 rules each = ceil-based packing.
    sfcs = tuple(
        SFC(name=f"s{i}", nf_types=(1,), rules=(390,), bandwidth_gbps=1.0)
        for i in range(4)
    )
    inst = ProblemInstance(switch=tiny_switch, sfcs=sfcs, num_types=1)
    placement = solve_ilp(inst, backend="scipy")
    # 4 chains x 390 = 1560 entries; capacity 3 stages x 400 = 1200 -> at
    # most 3 chains.
    assert placement.num_placed == 3
    assert check_placement(placement) == []


def test_consolidation_beats_fragmentation(tiny_switch):
    # Chains of 60-rule NFs: consolidated two share a 100-entry block pair
    # (120 -> 2 blocks), fragmented each rounds to a own block.  Give just
    # enough memory that only consolidation fits all chains.
    sfcs = tuple(
        SFC(name=f"s{i}", nf_types=(1,), rules=(60,), bandwidth_gbps=1.0)
        for i in range(6)
    )
    switch = SwitchSpec(
        stages=1,
        blocks_per_stage=4,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=100.0,
    )
    inst = ProblemInstance(switch=switch, sfcs=sfcs, num_types=1, max_recirculations=0)
    merged = solve_ilp(inst, consolidate=True, backend="scipy")
    frag = solve_ilp(inst, consolidate=False, backend="scipy")
    # 6 x 60 = 360 entries -> 4 blocks consolidated (fits); fragmented each
    # NF takes a whole block -> only 4 chains fit.
    assert merged.num_placed == 6
    assert frag.num_placed == 4
    assert merged.objective > frag.objective
    assert check_placement(merged) == []
    assert check_placement(frag, reserve_physical_block=True) == []


def test_require_all_types_constraint(tiny_instance):
    ilp = build_placement_model(tiny_instance, require_all_types=True)
    sol = lp_solve(ilp.model, backend="scipy")
    assert sol.status is SolveStatus.OPTIMAL
    placement = ilp.extract(sol)
    assert placement.physical.any(axis=1).all()


def test_extract_requires_feasible_solution(tiny_instance):
    from repro.errors import PlacementError
    from repro.lp.status import Solution

    ilp = build_placement_model(tiny_instance)
    with pytest.raises(PlacementError):
        ilp.extract(Solution(status=SolveStatus.INFEASIBLE))


def test_ordering_respected_in_solution(tiny_instance):
    placement = solve_ilp(tiny_instance, backend="scipy")
    for l, asg in placement.assignments.items():
        sfc = tiny_instance.sfcs[l]
        # Types at assigned stages match the chain.
        for j, k in enumerate(asg.stages):
            s = (k - 1) % tiny_instance.switch.stages
            assert placement.physical[sfc.nf_types[j] - 1, s]
        assert list(asg.stages) == sorted(asg.stages)


def test_recirculation_budget_zero_forbids_folding():
    # One block per stage -> each stage hosts exactly one physical NF type,
    # so a reversed chain cannot be served in a single pass alongside the
    # forward chain.
    switch = SwitchSpec(
        stages=3,
        blocks_per_stage=1,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=100.0,
    )
    sfcs = (
        SFC(name="fwd", nf_types=(1, 2, 3), rules=(10, 10, 10), bandwidth_gbps=30.0),
        SFC(name="rev", nf_types=(3, 2, 1), rules=(10, 10, 10), bandwidth_gbps=1.0),
    )
    inst = ProblemInstance(switch=switch, sfcs=sfcs, num_types=3, max_recirculations=0)
    placement = solve_ilp(inst, backend="scipy")
    # Only one of the two fits in a single pass; the forward chain carries
    # 30x the weight, so it wins.
    assert placement.num_placed == 1
    assert 0 in placement.assignments

    # With one recirculation both fit (each folding once in the right
    # physical layout, e.g. 3|1|2 along the stages).
    inst2 = inst.with_recirculations(1)
    placement2 = solve_ilp(inst2, backend="scipy")
    assert placement2.num_placed == 2
    assert placement2.passes(1) == 2
    assert check_placement(placement2) == []


def test_solve_seconds_recorded(tiny_instance):
    placement = solve_ilp(tiny_instance, backend="scipy")
    assert placement.solve_seconds > 0.0


def test_own_backend_agrees_on_micro_instance(tiny_switch):
    sfcs = (
        SFC(name="a", nf_types=(1,), rules=(10,), bandwidth_gbps=5.0),
        SFC(name="b", nf_types=(2,), rules=(10,), bandwidth_gbps=7.0),
    )
    inst = ProblemInstance(
        switch=tiny_switch, sfcs=sfcs, num_types=2, max_recirculations=0
    )
    a = solve_ilp(inst, backend="own")
    b = solve_ilp(inst, backend="scipy")
    assert a.objective == pytest.approx(b.objective)
    assert a.num_placed == b.num_placed == 2
