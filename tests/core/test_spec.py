"""Unit tests for the problem data model (Table I)."""

import pytest

from repro.core.spec import (
    SFC,
    NFType,
    ProblemInstance,
    SwitchSpec,
    default_nf_catalog,
)
from repro.errors import PlacementError


class TestNFType:
    def test_one_based_ids(self):
        with pytest.raises(PlacementError):
            NFType(type_id=0, name="bad")

    def test_catalog_defaults(self):
        catalog = default_nf_catalog()
        assert len(catalog) == 10
        assert [nf.type_id for nf in catalog] == list(range(1, 11))
        assert catalog[0].name == "firewall"

    def test_catalog_subset(self):
        assert len(default_nf_catalog(4)) == 4

    def test_catalog_bounds(self):
        with pytest.raises(PlacementError):
            default_nf_catalog(0)
        with pytest.raises(PlacementError):
            default_nf_catalog(11)


class TestSFC:
    def test_basic_properties(self):
        sfc = SFC(name="s", nf_types=(1, 3, 2), rules=(100, 200, 300), bandwidth_gbps=5.0)
        assert sfc.length == 3
        assert sfc.total_rules == 600
        assert sfc.weight == pytest.approx(15.0)

    def test_empty_chain_rejected(self):
        with pytest.raises(PlacementError):
            SFC(name="s", nf_types=(), rules=(), bandwidth_gbps=1.0)

    def test_mismatched_rules_rejected(self):
        with pytest.raises(PlacementError):
            SFC(name="s", nf_types=(1, 2), rules=(100,), bandwidth_gbps=1.0)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(PlacementError):
            SFC(name="s", nf_types=(1,), rules=(10,), bandwidth_gbps=0.0)

    def test_zero_based_type_rejected(self):
        with pytest.raises(PlacementError):
            SFC(name="s", nf_types=(0,), rules=(10,), bandwidth_gbps=1.0)

    def test_negative_rules_rejected(self):
        with pytest.raises(PlacementError):
            SFC(name="s", nf_types=(1,), rules=(-1,), bandwidth_gbps=1.0)


class TestSwitchSpec:
    def test_paper_defaults(self):
        spec = SwitchSpec()
        assert spec.stages == 8
        assert spec.blocks_per_stage == 20
        assert spec.entries_per_block == 1000
        assert spec.capacity_gbps == 400.0

    def test_entries_per_stage(self):
        assert SwitchSpec().entries_per_stage == 20_000

    def test_blocks_for_entries_is_ceil(self):
        spec = SwitchSpec()
        assert spec.blocks_for_entries(0) == 0
        assert spec.blocks_for_entries(1) == 1
        assert spec.blocks_for_entries(1000) == 1
        assert spec.blocks_for_entries(1001) == 2

    def test_blocks_for_negative_entries(self):
        with pytest.raises(PlacementError):
            SwitchSpec().blocks_for_entries(-1)

    def test_block_not_multiple_of_rule_rejected(self):
        with pytest.raises(PlacementError):
            SwitchSpec(block_bits=100, rule_bits=64)

    def test_invalid_dimensions(self):
        with pytest.raises(PlacementError):
            SwitchSpec(stages=0)
        with pytest.raises(PlacementError):
            SwitchSpec(blocks_per_stage=0)
        with pytest.raises(PlacementError):
            SwitchSpec(capacity_gbps=0)


class TestProblemInstance:
    def test_virtual_stages(self, tiny_instance):
        assert tiny_instance.virtual_stages == 6  # 3 stages * (1 + 1)

    def test_type_beyond_catalog_rejected(self, tiny_switch):
        sfc = SFC(name="s", nf_types=(9,), rules=(10,), bandwidth_gbps=1.0)
        with pytest.raises(PlacementError):
            ProblemInstance(switch=tiny_switch, sfcs=(sfc,), num_types=3)

    def test_with_sfcs_copies(self, tiny_instance):
        smaller = tiny_instance.with_sfcs(list(tiny_instance.sfcs[:1]))
        assert smaller.num_sfcs == 1
        assert tiny_instance.num_sfcs == 3
        assert smaller.switch is tiny_instance.switch

    def test_with_recirculations(self, tiny_instance):
        more = tiny_instance.with_recirculations(3)
        assert more.virtual_stages == 12
        assert tiny_instance.max_recirculations == 1

    def test_negative_recirculations_rejected(self, tiny_switch):
        with pytest.raises(PlacementError):
            ProblemInstance(switch=tiny_switch, sfcs=(), num_types=1, max_recirculations=-1)
