"""Property-based tests for PipelineState snapshot()/restore() round-trips.

The controller's try-then-commit pattern (and the fabric's read-only
``can_host`` probes) lean on one guarantee: whatever interleaving of
``add_backplane`` / ``release_backplane`` / ``add_logical_nf`` /
``remove_logical_nf`` happens after a snapshot, ``restore`` brings the state
back **bit-identically** — arrays, cached block charges, and the backplane
float all exact, with no aliasing between the snapshot and the live state.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.spec import ProblemInstance, SwitchSpec
from repro.core.state import PipelineState


@st.composite
def instances(draw):
    num_types = draw(st.integers(2, 4))
    switch = SwitchSpec(
        stages=draw(st.integers(2, 4)),
        blocks_per_stage=draw(st.integers(2, 6)),
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=draw(st.sampled_from([50.0, 100.0, 200.0])),
    )
    return ProblemInstance(
        switch=switch, sfcs=(), num_types=num_types,
        max_recirculations=draw(st.integers(0, 2)),
    )


@st.composite
def op_scripts(draw):
    """A seeded interleaving of state mutations (executed with guards, so
    every drawn script is valid on every instance)."""
    ops = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["add_nf", "remove_nf", "add_bp", "release_bp"]),
                st.integers(0, 10_000),
            ),
            min_size=1,
            max_size=30,
        )
    )
    return ops


def apply_script(state: PipelineState, instance: ProblemInstance, ops, placed):
    """Execute a script, skipping steps the current state cannot take (the
    guards keep scripts instance-agnostic without filtering examples)."""
    for kind, raw in ops:
        if kind == "add_nf":
            i = raw % instance.num_types
            s = (raw // 7) % instance.switch.stages
            rules = 1 + raw % 130
            if state.fits(i, s, rules):
                state.add_logical_nf(i, s, rules)
                placed.append((i, s, rules))
        elif kind == "remove_nf":
            if placed:
                i, s, rules = placed.pop(raw % len(placed))
                state.remove_logical_nf(i, s, rules)
        elif kind == "add_bp":
            gbps = 0.1 + (raw % 400) / 10.0
            if state.backplane_gbps + gbps <= instance.switch.capacity_gbps:
                state.add_backplane(gbps)
        else:
            state.release_backplane((raw % 400) / 10.0)


def capture(state: PipelineState, instance: ProblemInstance):
    return (
        state.physical.copy(),
        state.entries.copy(),
        state.nf_blocks.copy(),
        [state.blocks_at_stage(s) for s in range(instance.switch.stages)],
        [state.free_blocks(s) for s in range(instance.switch.stages)],
        state.backplane_gbps,
    )


def assert_matches(state: PipelineState, instance: ProblemInstance, cap):
    physical, entries, nf_blocks, stage_blocks, free, backplane = cap
    assert np.array_equal(state.physical, physical)
    assert np.array_equal(state.entries, entries)
    assert np.array_equal(state.nf_blocks, nf_blocks)
    for s in range(instance.switch.stages):
        assert state.blocks_at_stage(s) == stage_blocks[s]
        assert state.free_blocks(s) == free[s]
    assert state.backplane_gbps == backplane  # exact, not approx


COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(instance=instances(), prefix=op_scripts(), suffix=op_scripts())
@settings(max_examples=200, **COMMON)
def test_snapshot_restore_roundtrip_under_interleaved_churn(
    instance, prefix, suffix
):
    state = PipelineState(instance)
    placed = []
    apply_script(state, instance, prefix, placed)

    before = capture(state, instance)
    snap = state.snapshot()
    apply_script(state, instance, suffix, list(placed))
    state.restore(snap)
    assert_matches(state, instance, before)

    # The snapshot holds copies, not views: mutating the restored state
    # does not corrupt it, so restoring twice is idempotent.
    apply_script(state, instance, suffix, list(placed))
    state.restore(snap)
    assert_matches(state, instance, before)


@given(instance=instances(), scripts=st.lists(op_scripts(), min_size=2, max_size=4))
@settings(max_examples=50, **COMMON)
def test_nested_snapshots_unwind_in_lifo_order(instance, scripts):
    state = PipelineState(instance)
    placed = []
    stack = []
    for script in scripts:
        stack.append((state.snapshot(), capture(state, instance)))
        apply_script(state, instance, script, placed)
    for snap, cap in reversed(stack):
        state.restore(snap)
        assert_matches(state, instance, cap)


@given(instance=instances(), script=op_scripts())
@settings(max_examples=100, **COMMON)
def test_interleaved_churn_never_goes_negative(instance, script):
    state = PipelineState(instance)
    apply_script(state, instance, script, [])
    assert (state.entries >= 0).all()
    assert (state.nf_blocks >= 0).all()
    assert state.backplane_gbps >= 0.0
    for s in range(instance.switch.stages):
        assert 0 <= state.blocks_at_stage(s) <= instance.switch.blocks_per_stage
