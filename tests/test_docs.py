"""Documentation hygiene: every module, public class, and public function in
the library carries a docstring (deliverable (e): doc comments on every
public item)."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


MODULES = sorted(_walk_modules())


@pytest.mark.parametrize("name", MODULES)
def test_module_has_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


def _documented(cls, meth_name) -> bool:
    """A method counts as documented if it or any base-class definition of
    the same name carries a docstring (overrides inherit their contract)."""
    for base in cls.__mro__:
        candidate = vars(base).get(meth_name)
        if candidate is not None and inspect.isfunction(candidate):
            if candidate.__doc__ and candidate.__doc__.strip():
                return True
    return False


@pytest.mark.parametrize("name", MODULES)
def test_public_items_documented(name):
    module = importlib.import_module(name)
    missing = []
    for attr_name, attr in vars(module).items():
        if attr_name.startswith("_"):
            continue
        if not (inspect.isclass(attr) or inspect.isfunction(attr)):
            continue
        if getattr(attr, "__module__", None) != name:
            continue  # re-exports are documented at their definition site
        if not (attr.__doc__ and attr.__doc__.strip()):
            # Subclasses of a documented base (e.g. NF definitions whose
            # behaviour the module docstring + base class describe) pass if
            # any ancestor is documented.
            if inspect.isclass(attr) and any(
                b.__doc__ and b.__doc__.strip() for b in attr.__mro__[1:]
            ):
                pass
            else:
                missing.append(attr_name)
        if inspect.isclass(attr):
            for meth_name, meth in vars(attr).items():
                if meth_name.startswith("_"):
                    continue
                if not inspect.isfunction(meth):
                    continue
                if not _documented(attr, meth_name):
                    missing.append(f"{attr_name}.{meth_name}")
    assert not missing, f"{name}: undocumented public items: {missing}"
