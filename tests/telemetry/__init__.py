"""Tests for the telemetry subsystem (postcards, spans, recorder, export)."""
