"""Flight recorder: bounded ring, dumps, snap retention, file export."""

import json

import pytest

from repro.telemetry.recorder import FlightRecorder


def test_ring_is_bounded_and_ordered():
    recorder = FlightRecorder(capacity=3)
    for i in range(5):
        recorder.add("state", {"i": i})
    assert len(recorder) == 3
    assert [e["data"]["i"] for e in recorder.events] == [2, 3, 4]
    assert recorder.events_recorded == 5
    seqs = [e["seq"] for e in recorder.events]
    assert seqs == sorted(seqs)


def test_record_state_shorthand():
    recorder = FlightRecorder()
    recorder.record_state("fabric.admit", tenant=4, ok=True)
    [event] = recorder.events
    assert event["kind"] == "state"
    assert event["data"] == {"event": "fabric.admit", "tenant": 4, "ok": True}


def test_dump_freezes_without_retaining():
    recorder = FlightRecorder()
    recorder.add("span", {"name": "x"})
    dump = recorder.dump("because", detail=1)
    assert dump["reason"] == "because"
    assert dump["context"] == {"detail": 1}
    assert len(dump["events"]) == 1
    assert not recorder.dumps
    # A dump is a copy: later events do not leak into it.
    recorder.add("span", {"name": "y"})
    assert len(dump["events"]) == 1


def test_snap_retains_bounded_dumps():
    recorder = FlightRecorder(max_dumps=2)
    for i in range(3):
        recorder.snap(f"failure-{i}")
    assert recorder.dumps_snapped == 3
    assert [d["reason"] for d in recorder.dumps] == ["failure-1", "failure-2"]


def test_dump_to_writes_json(tmp_path):
    recorder = FlightRecorder()
    recorder.record_state("drain", switch="sw0")
    path = recorder.dump_to(tmp_path / "post_mortem.json", "drain-failed")
    loaded = json.loads(path.read_text())
    assert loaded["reason"] == "drain-failed"
    assert loaded["events"][0]["data"]["event"] == "drain"


def test_constructor_validation():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)
    with pytest.raises(ValueError):
        FlightRecorder(max_dumps=0)
