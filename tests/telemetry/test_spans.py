"""Spans and tracer: parent/child linkage, error capture, exports, and the
null-span fast path used when tracing is off."""

import json

import pytest

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.spans import NULL_SPAN, Tracer, maybe_span


def test_nested_spans_link_parent_child_and_share_a_trace():
    tracer = Tracer()
    with tracer.span("outer", op="admit") as outer:
        with tracer.span("inner") as inner:
            assert tracer.current() is inner
            assert inner.parent_id == outer.span_id
            assert inner.trace_id == outer.trace_id
    assert tracer.current() is None
    assert [s.name for s in tracer.finished] == ["inner", "outer"]
    assert outer.duration_ns >= inner.duration_ns >= 0
    kids = tracer.children(outer)
    assert [s.name for s in kids] == ["inner"]
    assert [s.name for s in tracer.roots()] == ["outer"]


def test_sibling_roots_get_distinct_trace_ids():
    tracer = Tracer()
    with tracer.span("first"):
        pass
    with tracer.span("second"):
        pass
    ids = {s.trace_id for s in tracer.finished}
    assert len(ids) == 2
    assert len(tracer.traces()) == 2


def test_span_records_error_status_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("nope")
    [span] = tracer.finished
    assert span.status == "error"
    assert span.attrs["error"] == "RuntimeError"
    assert span.end_ns is not None


def test_maybe_span_returns_shared_null_span_when_tracing_off():
    assert maybe_span(None, "anything") is NULL_SPAN
    with maybe_span(None, "anything", a=1) as span:
        assert span.set(b=2) is span  # annotation is a no-op, not an error
    tracer = Tracer()
    with maybe_span(tracer, "real") as span:
        assert span is not NULL_SPAN
    assert [s.name for s in tracer.finished] == ["real"]


def test_finished_ring_is_bounded():
    tracer = Tracer(capacity=3)
    for i in range(5):
        with tracer.span(f"s{i}"):
            pass
    assert [s.name for s in tracer.finished] == ["s2", "s3", "s4"]
    assert tracer.spans_started == 5
    tracer.clear()
    assert not tracer.finished
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_tracer_feeds_metrics_and_recorder():
    metrics = MetricsRegistry()
    recorder = FlightRecorder()
    tracer = Tracer(metrics=metrics, recorder=recorder)
    with tracer.span("op"):
        pass
    hist = metrics.snapshot()["histograms"]["span_latency_s.op"]
    assert hist["count"] == 1
    [event] = recorder.events
    assert event["kind"] == "span"
    assert event["data"]["name"] == "op"


def test_jsonl_export_round_trips():
    tracer = Tracer()
    with tracer.span("outer", tenant=7):
        with tracer.span("inner"):
            pass
    lines = [json.loads(line) for line in tracer.export_jsonl().splitlines()]
    assert [d["name"] for d in lines] == ["inner", "outer"]
    inner, outer = lines
    assert inner["parent_id"] == outer["span_id"]
    assert outer["attrs"] == {"tenant": 7}
    assert all(d["duration_ns"] >= 0 for d in lines)


def test_chrome_trace_export_shape():
    tracer = Tracer()
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
    events = tracer.to_chrome_trace()
    json.dumps(events)  # must be directly serializable
    assert {e["name"] for e in events} == {"outer", "inner"}
    for event in events:
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert event["pid"] == 1  # one trace -> one process row
        assert "span_id" in event["args"]


def test_render_tree_shows_hierarchy_and_attrs():
    tracer = Tracer()
    with tracer.span("admit", tenant=3) as span:
        with tracer.span("place"):
            pass
        span.set(ok=True)
    text = tracer.render_tree(tracer.roots()[0])
    first, second = text.splitlines()
    assert first.startswith("admit ") and "tenant=3" in first and "ok=True" in first
    assert second.startswith("  place ")
