"""End-to-end telemetry acceptance: one traced fabric admit yields one
connected span tree down to the runtime writes; a traced probe packet on a
recirculating chain yields a postcard with hops in every pass; the flight
recorder snaps automatically on invariant and drain failures."""

import pytest

from repro.core.spec import SFC
from repro.dataplane.packet import Packet
from repro.fabric.orchestrator import FabricOrchestrator
from repro.fabric.topology import FabricTopology
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.spans import Tracer


def chain(tenant_id: int, length: int = 3, bandwidth_gbps: float = 1.0) -> SFC:
    return SFC(
        name=f"tenant-{tenant_id}",
        nf_types=tuple((j % 3) + 1 for j in range(length)),
        rules=(2,) * length,
        bandwidth_gbps=bandwidth_gbps,
        tenant_id=tenant_id,
    )


@pytest.fixture
def traced_fabric():
    tracer = Tracer()
    fabric = FabricOrchestrator(
        FabricTopology.full_mesh(2), num_types=3, tracer=tracer
    )
    return fabric, tracer


def test_one_admit_yields_one_connected_span_tree(traced_fabric):
    fabric, tracer = traced_fabric
    result = fabric.admit(chain(1))
    assert result.ok

    roots = tracer.roots()
    assert len(roots) == 1 and roots[0].name == "fabric.admit"
    assert len({s.trace_id for s in tracer.finished}) == 1

    # Walk the causal chain: fabric -> controller -> install -> runtime.
    [controller_admit] = [
        s for s in tracer.children(roots[0]) if s.name == "controller.admit"
    ]
    kid_names = [s.name for s in tracer.children(controller_admit)]
    assert kid_names == [
        "controller.admission", "controller.placement", "install.install",
    ]
    [install] = [
        s for s in tracer.children(controller_admit)
        if s.name == "install.install"
    ]
    writes = tracer.children(install)
    assert [s.name for s in writes] == ["runtime.write", "runtime.write"]
    # Phase 1 writes the chain's rules, phase 2 the single map entry.
    assert writes[0].attrs["ops"] == 3
    assert writes[1].attrs["ops"] == 1
    assert all(s.status == "ok" for s in tracer.finished)
    # Every span's interval nests inside its parent's.
    by_id = {s.span_id: s for s in tracer.finished}
    for span in tracer.finished:
        if span.parent_id is not None:
            parent = by_id[span.parent_id]
            assert parent.start_ns <= span.start_ns
            assert span.end_ns <= parent.end_ns


def test_traced_probe_packet_has_hops_in_every_recirculation_pass(traced_fabric):
    fabric, _tracer = traced_fabric
    # Longer than the 8-stage pipeline => the fold recirculates.
    result = fabric.admit(chain(1, length=10))
    assert result.ok
    shard = fabric.shards[result.switches[0]]
    probe = shard.pipeline.process(Packet(tenant_id=1, pass_id=1), trace=True)
    card = probe.postcard
    assert card is not None
    assert probe.passes > 1
    assert card.passes == probe.passes
    for pass_id in range(1, probe.passes + 1):
        assert len(card.hops_for_pass(pass_id)) >= 1
    # The legacy trace flag is a thin wrapper over the same card.
    assert probe.trace == card.trace_rows()


def test_rejections_and_ops_are_spanned_and_timed(traced_fabric):
    fabric, tracer = traced_fabric
    assert fabric.admit(chain(1)).ok
    duplicate = fabric.admit(chain(1))
    assert not duplicate.ok
    [rejected] = [
        s for s in tracer.finished
        if s.name == "fabric.admit" and s.attrs.get("ok") is False
    ]
    assert rejected.status == "ok"  # a rejection is a result, not a crash
    assert fabric.evict(1).ok
    hists = fabric.metrics.snapshot()["histograms"]
    assert hists["op_latency_s.admit"]["count"] == 2
    assert hists["op_latency_s.evict"]["count"] == 1


def test_recorder_collects_state_transitions_by_default():
    fabric = FabricOrchestrator(FabricTopology.full_mesh(2), num_types=3)
    fabric.admit(chain(1))
    fabric.evict(1)
    states = [
        e["data"]["event"] for e in fabric.recorder.events
        if e["kind"] == "state"
    ]
    assert "controller.admit" in states
    assert "fabric.admit" in states
    assert "fabric.evict" in states


def test_invariant_violation_snaps_the_flight_recorder():
    fabric = FabricOrchestrator(FabricTopology.full_mesh(2), num_types=3)
    fabric.admit(chain(1))
    assert fabric.check_invariant() == []
    assert fabric.recorder.dumps_snapped == 0
    fabric.shards["sw0"].state.backplane_gbps += 1.0  # induce drift
    fabric.shards["sw1"].state.backplane_gbps += 1.0
    problems = fabric.check_invariant()
    assert problems
    assert fabric.recorder.dumps_snapped == 1
    [dump] = fabric.recorder.dumps
    assert dump["reason"] == "fabric-invariant-violated"
    assert dump["context"]["problems"] == problems
    # The run-up (the admit that preceded the drift) is in the dump.
    events = [e["data"].get("event") for e in dump["events"]]
    assert "fabric.admit" in events


def test_drain_snap_when_tenants_cannot_be_rehomed():
    recorder = FlightRecorder()
    fabric = FabricOrchestrator(
        FabricTopology.full_mesh(2), num_types=3, recorder=recorder
    )
    assert fabric.admit(chain(1)).ok
    # Drain the empty switch first, then the tenant's home: nowhere to go.
    tenant_home = fabric.tenants[1].segments[0].switch
    other = "sw1" if tenant_home == "sw0" else "sw0"
    assert fabric.drain(other).num_evicted == 0
    assert recorder.dumps_snapped == 0
    report = fabric.drain(tenant_home)
    assert report.evicted == (1,)
    assert recorder.dumps_snapped == 1
    [dump] = recorder.dumps
    assert dump["reason"] == "drain-evicted-tenants"
    assert dump["context"] == {"switch": tenant_home, "evicted": [1]}
    assert fabric.check_invariant() == []
