"""The Timer satellite: registry stopwatches and the back-compat shim for
the metrics module's old ``repro.controller.metrics`` home."""

import time

from repro.telemetry.metrics import MetricsRegistry, Timer


def test_timer_observes_into_registry_histogram():
    registry = MetricsRegistry()
    with registry.timer("op_latency_s.admit") as timer:
        time.sleep(0.001)
    assert timer.elapsed_s >= 0.001
    hist = registry.snapshot()["histograms"]["op_latency_s.admit"]
    assert hist["count"] == 1
    assert hist["sum"] >= 0.001


def test_timer_elapsed_is_live_inside_and_frozen_after():
    with Timer() as timer:
        first = timer.elapsed_s
        time.sleep(0.001)
        second = timer.elapsed_s
    assert second > first
    frozen = timer.elapsed_s
    time.sleep(0.001)
    assert timer.elapsed_s == frozen  # stopped on exit


def test_standalone_timer_runs_from_construction():
    timer = Timer()
    time.sleep(0.001)
    assert timer.elapsed_s >= 0.001  # no with-block needed
    assert timer.histogram is None


def test_timer_observes_even_when_body_raises():
    registry = MetricsRegistry()
    try:
        with registry.timer("failing_op_s"):
            raise RuntimeError("op failed")
    except RuntimeError:
        pass
    assert registry.snapshot()["histograms"]["failing_op_s"]["count"] == 1


def test_controller_metrics_shim_reexports_the_same_objects():
    import repro.controller.metrics as shim
    import repro.telemetry.metrics as real

    assert shim.MetricsRegistry is real.MetricsRegistry
    assert shim.Counter is real.Counter
    assert shim.Gauge is real.Gauge
    assert shim.Histogram is real.Histogram
    assert shim.Timer is real.Timer
    assert shim.DEFAULT_LATENCY_BUCKETS is real.DEFAULT_LATENCY_BUCKETS
    # Instances cross the shim boundary transparently.
    assert isinstance(shim.MetricsRegistry(), real.MetricsRegistry)
