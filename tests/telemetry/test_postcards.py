"""Postcards: hop capture, sampling determinism, and the legacy-trace
equivalence that makes ``process(trace=True)`` a thin wrapper."""

import pytest

from repro.dataplane.packet import Packet
from repro.experiments.fig4_throughput import build_demo_pipeline
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.postcards import PacketPostcard, PostcardCollector
from repro.traffic.flows import FlowGenerator


def make_batch(num_packets: int, seed: int = 1) -> list[Packet]:
    gen = FlowGenerator(seed)
    flows = gen.flows(16, tenant_id=1)
    return gen.packets(flows, num_packets, size_bytes=64)


# ----------------------------------------------------------------------
# PacketPostcard unit behaviour
# ----------------------------------------------------------------------
def test_postcard_latency_attributed_to_first_hop_per_stage():
    card = PacketPostcard(switch="sw0", tenant_id=1, stage_ns=25.0)
    card.add_hop(1, 0, "tenant_map@s0", "set_tenant", hit=True, rule_id=0)
    card.add_hop(1, 0, "firewall@s0", "permit", hit=True, rule_id=3)
    card.add_hop(1, 1, "lb@s1", "no_op", hit=False, rule_id=None)
    card.add_hop(2, 0, "firewall@s0", "permit", hit=True, rule_id=4)
    assert [h.latency_ns for h in card.hops] == [25.0, 0.0, 25.0, 25.0]


def test_postcard_views_and_serialization():
    card = PacketPostcard(switch="sw0", tenant_id=7, stage_ns=10.0)
    card.add_hop(1, 0, "a@s0", "permit", hit=True, rule_id=2)
    card.add_hop(2, 1, "b@s1", "no_op", hit=False, rule_id=None)
    card.finish(passes=2, latency_ns=123.0, dropped=False)
    assert card.recirculations == 1
    assert [h.table for h in card.hops_for_pass(2)] == ["b@s1"]
    assert card.trace_rows() == [(1, 0, "a@s0", "permit"), (2, 1, "b@s1", "no_op")]
    d = card.to_dict()
    assert d["tenant_id"] == 7 and d["passes"] == 2
    assert d["hops"][0] == {
        "pass": 1, "stage": 0, "table": "a@s0", "action": "permit",
        "hit": True, "rule_id": 2, "latency_ns": 10.0,
    }
    assert "hit rule#2" in card.describe()
    assert "miss" in card.describe()


# ----------------------------------------------------------------------
# Collector sampling semantics
# ----------------------------------------------------------------------
def test_collector_counts_every_nth_packet_deterministically():
    collector = PostcardCollector(sample_every=4)
    picks = [collector.should_sample() for _ in range(12)]
    assert picks == [False, False, False, True] * 3
    assert collector.packets_seen == 12


def test_collector_zero_means_armed_but_never_samples():
    collector = PostcardCollector(sample_every=0)
    assert not any(collector.should_sample() for _ in range(100))
    assert collector.packets_seen == 100
    assert collector.postcards_sampled == 0


def test_collector_validates_arguments():
    with pytest.raises(ValueError):
        PostcardCollector(sample_every=-1)
    with pytest.raises(ValueError):
        PostcardCollector(capacity=0)


def test_collector_ring_is_bounded_and_counters_accumulate():
    collector = PostcardCollector(sample_every=1, capacity=3)
    for i in range(5):
        card = PacketPostcard(switch="sw0", tenant_id=i % 2)
        card.finish(passes=2, latency_ns=1.0, dropped=(i == 4))
        collector.record(card)
    assert len(collector.cards) == 3
    assert collector.postcards_sampled == 5
    assert collector.recirculations_observed == 5
    assert collector.drops_observed == 1
    assert collector.by_switch == {"sw0": 5}
    assert collector.by_tenant == {0: 3, 1: 2}
    snap = collector.snapshot()
    assert snap["by_tenant"] == {"0": 3, "1": 2}


def test_collector_publish_exports_gauges():
    collector = PostcardCollector(sample_every=1)
    card = PacketPostcard(switch="swX", tenant_id=9)
    card.finish(passes=1, latency_ns=0.0, dropped=False)
    collector.should_sample()
    collector.record(card)
    registry = MetricsRegistry()
    collector.publish(registry)
    snap = registry.snapshot()["gauges"]
    assert snap["telemetry.packets_seen"] == 1
    assert snap["telemetry.postcards_sampled.swX"] == 1
    assert snap["telemetry.postcards_sampled.tenant.9"] == 1


# ----------------------------------------------------------------------
# Pipeline integration: trace=True is a thin wrapper over postcards
# ----------------------------------------------------------------------
def test_traced_result_trace_equals_postcard_rows():
    pipeline, _ = build_demo_pipeline(seed=3)
    for result in pipeline.process_batch(make_batch(32, seed=3), trace=True):
        assert result.postcard is not None
        assert result.trace == result.postcard.trace_rows()
        assert result.postcard.passes == result.passes
        assert result.postcard.latency_ns == result.latency_ns


def test_sampled_postcards_match_traced_run_on_seeded_batches():
    """Same seeded batch through two fresh pipelines: every sampled
    postcard must agree hop-for-hop with the traced oracle run."""
    traced_pipeline, _ = build_demo_pipeline(seed=5)
    traced = traced_pipeline.process_batch(make_batch(64, seed=5), trace=True)

    sampled_pipeline, _ = build_demo_pipeline(seed=5)
    collector = PostcardCollector(sample_every=4)
    sampled_pipeline.telemetry = collector
    results = sampled_pipeline.process_batch(make_batch(64, seed=5))

    sampled_indices = [i for i, r in enumerate(results) if r.postcard]
    assert sampled_indices == list(range(3, 64, 4))
    for i in sampled_indices:
        assert results[i].postcard.trace_rows() == traced[i].trace
        assert results[i].postcard.passes == traced[i].passes
    # Untraced, unsampled results keep the legacy empty trace.
    assert all(
        not results[i].trace for i in range(64) if i not in sampled_indices
    )
    assert collector.postcards_sampled == len(sampled_indices)


def test_trace_true_does_not_consume_sampling_budget_cards():
    """A traced packet is recorded by the sampler only when the sampler
    itself picked it, so forced traces do not distort sampling stats."""
    pipeline, _ = build_demo_pipeline(seed=7)
    collector = PostcardCollector(sample_every=2)
    pipeline.telemetry = collector
    pipeline.process_batch(make_batch(10, seed=7), trace=True)
    assert collector.packets_seen == 10
    assert collector.postcards_sampled == 5
