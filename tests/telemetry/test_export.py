"""Prometheus text-format exporter: name sanitization, type lines, and
cumulative histogram buckets."""

from repro.telemetry.export import render_prometheus, sanitize_metric_name
from repro.telemetry.metrics import MetricsRegistry


def test_sanitize_metric_name():
    assert sanitize_metric_name("admit_latency_s.sw0") == "admit_latency_s_sw0"
    assert sanitize_metric_name("rejected.no-feasible") == "rejected_no_feasible"
    assert sanitize_metric_name("9lives") == "_9lives"
    assert sanitize_metric_name("") == "_"
    assert sanitize_metric_name("ok:name_1") == "ok:name_1"


def test_counters_and_gauges_render():
    registry = MetricsRegistry()
    registry.inc("admitted", 3)
    registry.gauge("backplane_gbps").set(12.5)
    text = render_prometheus(registry)
    assert "# TYPE sfp_admitted_total counter\nsfp_admitted_total 3\n" in text
    assert "# TYPE sfp_backplane_gbps gauge\nsfp_backplane_gbps 12.5\n" in text


def test_histogram_buckets_are_cumulative_and_close_with_inf():
    registry = MetricsRegistry()
    hist = registry.histogram("lat", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 1.7, 99.0):
        hist.observe(value)
    text = render_prometheus(registry)
    assert '# TYPE sfp_lat histogram' in text
    assert 'sfp_lat_bucket{le="1"} 1' in text
    assert 'sfp_lat_bucket{le="2"} 3' in text
    assert 'sfp_lat_bucket{le="+Inf"} 4' in text
    assert "sfp_lat_count 4" in text
    assert "sfp_lat_sum 102.7" in text


def test_accepts_a_snapshot_dict_and_custom_namespace():
    registry = MetricsRegistry()
    registry.inc("x")
    text = render_prometheus(registry.snapshot(), namespace="my.ns")
    assert text.startswith("# TYPE my_ns_x_total counter")


def test_empty_registry_renders_empty_page():
    assert render_prometheus(MetricsRegistry()) == ""


def test_output_is_deterministic_and_name_sorted():
    registry = MetricsRegistry()
    registry.inc("b")
    registry.inc("a")
    text = render_prometheus(registry)
    assert text.index("sfp_a_total") < text.index("sfp_b_total")
    assert render_prometheus(registry) == text
