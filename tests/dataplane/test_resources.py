"""Unit tests for per-stage SRAM block accounting."""

import pytest

from repro.dataplane.resources import StageResources
from repro.errors import ResourceExhaustedError


@pytest.fixture()
def sram():
    return StageResources(blocks_total=4, entries_per_block=100)


def test_reserve_and_free(sram):
    sram.reserve("fw")
    assert sram.blocks_used == 1
    assert sram.blocks_free == 3


def test_duplicate_reservation_rejected(sram):
    sram.reserve("fw")
    with pytest.raises(ResourceExhaustedError):
        sram.reserve("fw")


def test_reserve_beyond_capacity_rejected(sram):
    sram.reserve("a", blocks=4)
    with pytest.raises(ResourceExhaustedError):
        sram.reserve("b")


def test_reserve_zero_blocks_rejected(sram):
    with pytest.raises(ResourceExhaustedError):
        sram.reserve("fw", blocks=0)


def test_charge_grows_blocks(sram):
    sram.reserve("fw")
    sram.charge_entries("fw", 100)
    assert sram.blocks_used == 1
    sram.charge_entries("fw", 1)
    assert sram.blocks_used == 2


def test_charge_beyond_capacity_rejected(sram):
    sram.reserve("fw")
    with pytest.raises(ResourceExhaustedError):
        sram.charge_entries("fw", 401)
    # Failed charge must not leak partial state.
    assert sram.entries_used == 0
    assert sram.blocks_used == 1


def test_charge_unknown_owner_rejected(sram):
    with pytest.raises(ResourceExhaustedError):
        sram.charge_entries("ghost", 1)


def test_refund_shrinks_but_keeps_boot_block(sram):
    sram.reserve("fw")
    sram.charge_entries("fw", 250)
    assert sram.blocks_used == 3
    sram.refund_entries("fw", 250)
    assert sram.blocks_used == 1
    assert sram.entries_used == 0


def test_refund_more_than_used_rejected(sram):
    sram.reserve("fw")
    sram.charge_entries("fw", 10)
    with pytest.raises(ResourceExhaustedError):
        sram.refund_entries("fw", 11)


def test_release(sram):
    sram.reserve("fw")
    sram.release("fw")
    assert sram.blocks_used == 0
    with pytest.raises(ResourceExhaustedError):
        sram.release("fw")


def test_entry_utilization(sram):
    assert sram.entry_utilization == 0.0
    sram.reserve("fw")
    sram.charge_entries("fw", 50)
    assert sram.entry_utilization == pytest.approx(0.5)
    sram.reserve("lb")
    sram.charge_entries("lb", 150)  # 2 blocks
    # 200 entries in 3 blocks of 100.
    assert sram.entry_utilization == pytest.approx(200 / 300)


def test_multiple_owners_share_stage(sram):
    sram.reserve("fw")
    sram.reserve("lb")
    sram.charge_entries("fw", 100)
    sram.charge_entries("lb", 150)
    assert sram.blocks_used == 3
    with pytest.raises(ResourceExhaustedError):
        sram.charge_entries("lb", 200)
