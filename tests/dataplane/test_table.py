"""Unit tests for match-action tables (exact/ternary/LPM/range matching,
priorities, entry CRUD)."""

import pytest

from repro.dataplane.packet import Packet
from repro.dataplane.table import (
    MatchActionTable,
    MatchField,
    MatchKind,
    TableEntry,
)
from repro.errors import DataPlaneError


@pytest.fixture()
def acl():
    return MatchActionTable(
        name="acl",
        key=[
            MatchField("src_ip", MatchKind.TERNARY),
            MatchField("dst_port", MatchKind.RANGE),
            MatchField("protocol", MatchKind.EXACT),
        ],
    )


def test_exact_match():
    t = MatchActionTable("t", key=[MatchField("protocol", MatchKind.EXACT)])
    t.insert(TableEntry(match={"protocol": 6}, action="drop"))
    _, action, _ = t.lookup(Packet(protocol=6))
    assert action == "drop"
    _, action, _ = t.lookup(Packet(protocol=17))
    assert action == "no_op"


def test_ternary_match_with_mask(acl):
    acl.insert(
        TableEntry(
            match={"src_ip": (0x0A000000, 0xFF000000)},  # 10/8
            action="drop",
        )
    )
    _, action, _ = acl.lookup(Packet(src_ip=0x0A010203, protocol=6))
    assert action == "drop"
    _, action, _ = acl.lookup(Packet(src_ip=0x0B010203, protocol=6))
    assert action == "no_op"


def test_range_match(acl):
    acl.insert(TableEntry(match={"dst_port": (1000, 2000)}, action="drop"))
    assert acl.lookup(Packet(dst_port=1500))[1] == "drop"
    assert acl.lookup(Packet(dst_port=999))[1] == "no_op"
    assert acl.lookup(Packet(dst_port=2000))[1] == "drop"  # inclusive


def test_lpm_match_and_specificity():
    t = MatchActionTable("rt", key=[MatchField("dst_ip", MatchKind.LPM)])
    t.insert(TableEntry(match={"dst_ip": (0x0A000000, 8)}, action="forward", params={"port": 1}))
    t.insert(TableEntry(match={"dst_ip": (0x0A0A0000, 16)}, action="forward", params={"port": 2}))
    entry, action, params = t.lookup(Packet(dst_ip=0x0A0A0101))
    assert params["port"] == 2  # longest prefix wins
    entry, action, params = t.lookup(Packet(dst_ip=0x0A010101))
    assert params["port"] == 1


def test_lpm_zero_length_is_wildcard():
    t = MatchActionTable("rt", key=[MatchField("dst_ip", MatchKind.LPM)])
    t.insert(TableEntry(match={"dst_ip": (0, 0)}, action="forward", params={"port": 9}))
    assert t.lookup(Packet(dst_ip=12345))[2]["port"] == 9


def test_lpm_invalid_length_rejected_at_insert():
    # A malformed LPM spec must fail when the rule is written, not explode
    # mid-traffic on the per-packet lookup path.
    t = MatchActionTable("rt", key=[MatchField("dst_ip", MatchKind.LPM)])
    with pytest.raises(DataPlaneError):
        t.insert(TableEntry(match={"dst_ip": (0, 40)}, action="forward"))
    assert t.num_entries == 0
    t.lookup(Packet(dst_ip=1))  # traffic keeps flowing
    assert t.misses == 1


def test_priority_beats_order(acl):
    acl.insert(TableEntry(match={"protocol": 6}, action="permit", priority=1))
    acl.insert(TableEntry(match={"protocol": 6}, action="drop", priority=10))
    assert acl.lookup(Packet(protocol=6))[1] == "drop"


def test_insertion_order_breaks_priority_ties(acl):
    acl.insert(TableEntry(match={"protocol": 6}, action="permit", priority=5))
    acl.insert(TableEntry(match={"protocol": 6}, action="drop", priority=5))
    assert acl.lookup(Packet(protocol=6))[1] == "permit"


def test_omitted_fields_are_wildcards(acl):
    acl.insert(TableEntry(match={}, action="drop"))
    assert acl.lookup(Packet(src_ip=99, dst_port=99, protocol=99))[1] == "drop"


def test_unknown_field_in_entry_rejected(acl):
    with pytest.raises(DataPlaneError):
        acl.insert(TableEntry(match={"dscp": 1}, action="drop"))


def test_max_entries_enforced():
    t = MatchActionTable(
        "t", key=[MatchField("protocol", MatchKind.EXACT)], max_entries=1
    )
    t.insert(TableEntry(match={"protocol": 6}, action="drop"))
    with pytest.raises(DataPlaneError):
        t.insert(TableEntry(match={"protocol": 17}, action="drop"))


def test_delete_entry(acl):
    entry = TableEntry(match={"protocol": 6}, action="drop")
    acl.insert(entry)
    acl.delete(entry)
    assert acl.num_entries == 0
    with pytest.raises(DataPlaneError):
        acl.delete(entry)


def test_delete_where_by_tenant():
    t = MatchActionTable(
        "t",
        key=[
            MatchField("tenant_id", MatchKind.EXACT),
            MatchField("protocol", MatchKind.EXACT),
        ],
    )
    t.insert(TableEntry(match={"tenant_id": 1, "protocol": 6}, action="drop"))
    t.insert(TableEntry(match={"tenant_id": 1, "protocol": 17}, action="drop"))
    t.insert(TableEntry(match={"tenant_id": 2, "protocol": 6}, action="drop"))
    assert t.delete_where(tenant_id=1) == 2
    assert t.num_entries == 1


def test_hit_miss_counters(acl):
    acl.insert(TableEntry(match={"protocol": 6}, action="drop"))
    acl.lookup(Packet(protocol=6))
    acl.lookup(Packet(protocol=17))
    assert acl.hits == 1 and acl.misses == 1


def test_duplicate_key_fields_rejected():
    with pytest.raises(DataPlaneError):
        MatchActionTable(
            "t",
            key=[
                MatchField("protocol", MatchKind.EXACT),
                MatchField("protocol", MatchKind.TERNARY),
            ],
        )


def test_unknown_match_field_name_rejected():
    with pytest.raises(DataPlaneError):
        MatchField("bogus", MatchKind.EXACT)
