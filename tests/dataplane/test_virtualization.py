"""Tests for SFC virtualization: tenant/pass match prepends, REC at fold
points, first-fit allocation, atomic install/uninstall."""

import pytest

from repro.core.spec import SwitchSpec
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.dataplane.virtualization import (
    LogicalNF,
    LogicalSFC,
    SFCVirtualizer,
    physical_table_name,
)
from repro.errors import DataPlaneError, ResourceExhaustedError
from repro.nfs import install_physical_nf


def wildcard(action="permit", **params):
    return TableEntry(match={}, action=action, params=params)


@pytest.fixture()
def pipeline():
    """FW @ s0, TC @ s1, LB @ s2."""
    pl = SwitchPipeline(
        spec=SwitchSpec(stages=3, blocks_per_stage=6), max_passes=3
    )
    for stage, nf in enumerate(("firewall", "traffic_classifier", "load_balancer")):
        install_physical_nf(pl, nf, stage)
    return pl


@pytest.fixture()
def virtualizer(pipeline):
    return SFCVirtualizer(pipeline)


def _sfc(tenant, *names_rules):
    return LogicalSFC(
        tenant_id=tenant,
        nfs=tuple(LogicalNF(n, rules) for n, rules in names_rules),
    )


class TestPlanAllocation:
    def test_in_order_chain_single_pass(self, virtualizer):
        sfc = _sfc(1, ("firewall", (wildcard(),)), ("load_balancer", (wildcard(),)))
        assert virtualizer.plan_allocation(sfc) == (1, 3)

    def test_out_of_order_chain_folds(self, virtualizer):
        sfc = _sfc(1, ("load_balancer", (wildcard(),)), ("firewall", (wildcard(),)))
        assert virtualizer.plan_allocation(sfc) == (3, 4)  # fold to pass 2

    def test_unreachable_type_raises(self, virtualizer):
        sfc = _sfc(1, ("router", (wildcard(),)))
        with pytest.raises(ResourceExhaustedError):
            virtualizer.plan_allocation(sfc)

    def test_pass_budget_exhausted(self, pipeline, virtualizer):
        # 4 reversed hops over 3 passes: LB, TC, FW, LB again... construct a
        # chain needing more passes than allowed.
        sfc = _sfc(
            1,
            ("load_balancer", (wildcard(),)),
            ("traffic_classifier", (wildcard(),)),
            ("firewall", (wildcard(),)),
            ("load_balancer", (wildcard(),)),
            ("firewall", (wildcard(),)),
        )
        with pytest.raises(ResourceExhaustedError):
            virtualizer.plan_allocation(sfc)


class TestInstall:
    def test_rules_get_tenant_and_pass_fields(self, pipeline, virtualizer):
        sfc = _sfc(7, ("firewall", (wildcard(),)))
        virtualizer.install_sfc(sfc)
        table = pipeline.stage(0).table(physical_table_name("firewall", 0))
        assert table.num_entries == 1
        entry = table.entries[0]
        assert entry.match["tenant_id"] == 7
        assert entry.match["pass_id"] == 1

    def test_fold_point_rules_carry_rec(self, pipeline, virtualizer):
        sfc = _sfc(
            1,
            ("load_balancer", (wildcard(),)),
            ("firewall", (wildcard(),)),
        )
        virtualizer.install_sfc(sfc)
        lb = pipeline.stage(2).table(physical_table_name("load_balancer", 2))
        fw = pipeline.stage(0).table(physical_table_name("firewall", 0))
        assert lb.entries[0].params.get("rec") is True
        assert fw.entries[0].match["pass_id"] == 2
        assert "rec" not in fw.entries[0].params

    def test_duplicate_tenant_rejected(self, virtualizer):
        sfc = _sfc(1, ("firewall", (wildcard(),)))
        virtualizer.install_sfc(sfc)
        with pytest.raises(DataPlaneError):
            virtualizer.install_sfc(sfc)

    def test_explicit_assignment_respected(self, pipeline, virtualizer):
        sfc = _sfc(1, ("firewall", (wildcard(),)))
        virtualizer.install_sfc(sfc, assignment=(4,))  # pass 2, stage 0
        fw = pipeline.stage(0).table(physical_table_name("firewall", 0))
        assert fw.entries[0].match["pass_id"] == 2

    def test_bad_assignment_length_rejected(self, virtualizer):
        sfc = _sfc(1, ("firewall", (wildcard(),)))
        with pytest.raises(DataPlaneError):
            virtualizer.install_sfc(sfc, assignment=(1, 2))

    def test_non_increasing_assignment_rejected(self, virtualizer):
        sfc = _sfc(
            1, ("firewall", (wildcard(),)), ("traffic_classifier", (wildcard(),))
        )
        with pytest.raises(DataPlaneError):
            virtualizer.install_sfc(sfc, assignment=(2, 2))

    def test_assignment_beyond_passes_rejected(self, virtualizer):
        sfc = _sfc(1, ("firewall", (wildcard(),)))
        with pytest.raises(ResourceExhaustedError):
            virtualizer.install_sfc(sfc, assignment=(10,))  # pass 4 > max 3

    def test_install_charges_resources(self, pipeline, virtualizer):
        rules = tuple(wildcard() for _ in range(5))
        sfc = _sfc(1, ("firewall", rules))
        virtualizer.install_sfc(sfc)
        res = pipeline.stage(0).resources
        assert res.entries_used == 5

    def test_failed_install_rolls_back(self, pipeline, virtualizer):
        # Overfill: stage 0 has 6 blocks x 1000 entries... shrink by filling
        # with another tenant first is slow; instead make the table reject
        # via resource exhaustion using many rules.
        capacity = pipeline.stage(0).resources
        too_many = tuple(
            wildcard() for _ in range(capacity.blocks_total * capacity.entries_per_block + 1)
        )
        sfc = _sfc(
            1,
            ("firewall", (wildcard(),)),
            ("traffic_classifier", too_many),
        )
        before = pipeline.total_entries()
        with pytest.raises((DataPlaneError, ResourceExhaustedError)):
            SFCVirtualizer(pipeline).install_sfc(sfc)
        assert pipeline.total_entries() == before
        assert pipeline.stage(0).resources.entries_used == 0


class TestUninstall:
    def test_uninstall_removes_rules_and_refunds(self, pipeline, virtualizer):
        sfc = _sfc(1, ("firewall", (wildcard(), wildcard())))
        virtualizer.install_sfc(sfc)
        virtualizer.uninstall_sfc(1)
        assert pipeline.total_entries() == 0
        assert pipeline.stage(0).resources.entries_used == 0
        with pytest.raises(DataPlaneError):
            virtualizer.uninstall_sfc(1)

    def test_uninstall_keeps_other_tenants(self, pipeline, virtualizer):
        virtualizer.install_sfc(_sfc(1, ("firewall", (wildcard(),))))
        virtualizer.install_sfc(_sfc(2, ("firewall", (wildcard(),))))
        virtualizer.uninstall_sfc(1)
        fw = pipeline.stage(0).table(physical_table_name("firewall", 0))
        assert fw.num_entries == 1
        assert fw.entries[0].match["tenant_id"] == 2

    def test_tenant_passes(self, virtualizer):
        virtualizer.install_sfc(
            _sfc(1, ("load_balancer", (wildcard(),)), ("firewall", (wildcard(),)))
        )
        assert virtualizer.tenant_passes(1) == 2
        with pytest.raises(DataPlaneError):
            virtualizer.tenant_passes(9)


class TestEndToEnd:
    def test_folded_chain_processes_in_order(self, pipeline, virtualizer):
        # LB -> FW for tenant 3: LB rewrites dst, then (pass 2) FW drops
        # rewritten traffic.
        sfc = _sfc(
            3,
            ("load_balancer", (wildcard("set_dst", dst_ip=123),)),
            ("firewall", (TableEntry(match={"dst_ip": (123, 0xFFFFFFFF)},
                                     action="drop", priority=5),)),
        )
        virtualizer.install_sfc(sfc)
        result = pipeline.process(Packet(tenant_id=3), trace=True)
        assert result.passes == 2
        assert result.packet.dst_ip == 123
        assert result.packet.dropped  # FW saw the *rewritten* packet on pass 2

    def test_other_tenant_unaffected(self, pipeline, virtualizer):
        sfc = _sfc(3, ("firewall", (wildcard("drop"),)))
        virtualizer.install_sfc(sfc)
        result = pipeline.process(Packet(tenant_id=4))
        assert result.delivered


class TestRetag:
    def test_retag_moves_rules_to_new_tenant(self, pipeline, virtualizer):
        virtualizer.install_sfc(_sfc(1, ("firewall", (wildcard("drop"),))))
        rewritten = virtualizer.retag_tenant(1, 9)
        assert rewritten == 1
        assert pipeline.process(Packet(tenant_id=9)).packet.dropped
        assert pipeline.process(Packet(tenant_id=1)).delivered
        assert 9 in virtualizer.installed and 1 not in virtualizer.installed
        assert virtualizer.installed[9].sfc.tenant_id == 9

    def test_retag_preserves_resources_and_passes(self, pipeline, virtualizer):
        virtualizer.install_sfc(
            _sfc(1, ("load_balancer", (wildcard(),)), ("firewall", (wildcard(),)))
        )
        entries_before = pipeline.total_entries()
        virtualizer.retag_tenant(1, 2)
        assert pipeline.total_entries() == entries_before
        assert virtualizer.tenant_passes(2) == 2

    def test_retag_unknown_tenant_rejected(self, virtualizer):
        with pytest.raises(DataPlaneError):
            virtualizer.retag_tenant(5, 6)

    def test_retag_onto_live_tenant_rejected(self, virtualizer):
        virtualizer.install_sfc(_sfc(1, ("firewall", (wildcard(),))))
        virtualizer.install_sfc(_sfc(2, ("firewall", (wildcard(),))))
        with pytest.raises(DataPlaneError):
            virtualizer.retag_tenant(1, 2)

    def test_retagged_sfc_can_be_uninstalled(self, pipeline, virtualizer):
        virtualizer.install_sfc(_sfc(1, ("firewall", (wildcard(),))))
        virtualizer.retag_tenant(1, 3)
        virtualizer.uninstall_sfc(3)
        assert pipeline.total_entries() == 0
