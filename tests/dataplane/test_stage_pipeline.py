"""Tests for MAU stages and the multi-pass pipeline."""

import pytest

from repro.core.spec import SwitchSpec
from repro.dataplane.action import default_actions
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.stage import Stage
from repro.dataplane.table import MatchActionTable, MatchField, MatchKind, TableEntry
from repro.errors import DataPlaneError


def _table(name, action="drop", match=None, **params):
    t = MatchActionTable(
        name, key=[MatchField("protocol", MatchKind.EXACT)]
    )
    t.insert(TableEntry(match=match or {"protocol": 6}, action=action, params=params))
    return t


class TestStage:
    def test_install_reserves_block(self):
        stage = Stage(0)
        stage.install_table(_table("fw"))
        assert stage.resources.blocks_used == 1
        assert stage.table("fw").name == "fw"

    def test_duplicate_table_rejected(self):
        stage = Stage(0)
        stage.install_table(_table("fw"))
        with pytest.raises(DataPlaneError):
            stage.install_table(_table("fw"))

    def test_remove_table_releases(self):
        stage = Stage(0)
        stage.install_table(_table("fw"))
        stage.remove_table("fw")
        assert stage.resources.blocks_used == 0
        with pytest.raises(DataPlaneError):
            stage.table("fw")

    def test_apply_runs_tables_in_order(self):
        stage = Stage(0)
        stage.install_table(_table("classify", action="set_dscp", dscp=7))
        stage.install_table(_table("fw", action="drop"))
        p = Packet(protocol=6)
        trace = []
        stage.apply(p, default_actions(), pass_id=1, trace=trace)
        assert p.dscp == 7 and p.dropped
        assert [t for (_, _, t, _) in trace] == ["classify", "fw"]

    def test_apply_stops_after_drop(self):
        stage = Stage(0)
        stage.install_table(_table("fw", action="drop"))
        stage.install_table(_table("classify", action="set_dscp", dscp=7))
        p = Packet(protocol=6)
        stage.apply(p, default_actions(), pass_id=1)
        assert p.dropped and p.dscp == 0

    def test_negative_index_rejected(self):
        with pytest.raises(DataPlaneError):
            Stage(-1)


class TestPipeline:
    def _pipeline(self, stages=3, max_passes=3):
        return SwitchPipeline(
            spec=SwitchSpec(stages=stages, blocks_per_stage=4),
            max_passes=max_passes,
        )

    def test_stage_count_from_spec(self):
        assert self._pipeline(stages=5).num_stages == 5

    def test_process_single_pass(self):
        pl = self._pipeline()
        pl.stage(0).install_table(_table("mark", action="set_dscp", dscp=3))
        result = pl.process(Packet(protocol=6), trace=True)
        assert result.passes == 1
        assert result.packet.dscp == 3
        assert result.latency_ns > 0

    def test_recirculation_increments_pass(self):
        pl = self._pipeline()
        # A rule that recirculates on pass 1 only.
        t = MatchActionTable(
            "rec",
            key=[
                MatchField("pass_id", MatchKind.EXACT),
                MatchField("protocol", MatchKind.EXACT),
            ],
        )
        t.insert(TableEntry(match={"pass_id": 1, "protocol": 6}, action="no_op",
                            params={"rec": True}))
        pl.stage(2).install_table(t)
        result = pl.process(Packet(protocol=6))
        assert result.passes == 2
        assert result.packet.pass_id == 2
        assert result.recirculations == 1

    def test_max_passes_caps_recirculation(self):
        pl = self._pipeline(max_passes=2)
        t = MatchActionTable("rec", key=[MatchField("protocol", MatchKind.EXACT)])
        # Always asks to recirculate -> capped at max_passes.
        t.insert(TableEntry(match={"protocol": 6}, action="no_op", params={"rec": True}))
        pl.stage(0).install_table(t)
        result = pl.process(Packet(protocol=6))
        assert result.passes == 2
        assert pl.recirculation_overflows == 1

    def test_dropped_packet_stops(self):
        pl = self._pipeline()
        pl.stage(0).install_table(_table("fw", action="drop"))
        pl.stage(1).install_table(_table("mark", action="set_dscp", dscp=9))
        result = pl.process(Packet(protocol=6))
        assert result.packet.dropped and result.packet.dscp == 0

    def test_find_table(self):
        pl = self._pipeline()
        pl.stage(1).install_table(_table("fw"))
        stage, table = pl.find_table("fw")
        assert stage.index == 1 and table.name == "fw"
        with pytest.raises(DataPlaneError):
            pl.find_table("nope")

    def test_stage_bounds(self):
        pl = self._pipeline()
        with pytest.raises(DataPlaneError):
            pl.stage(99)

    def test_latency_grows_with_passes(self):
        pl = self._pipeline()
        t = MatchActionTable(
            "rec",
            key=[MatchField("pass_id", MatchKind.EXACT)],
        )
        t.insert(TableEntry(match={"pass_id": 1}, action="no_op", params={"rec": True}))
        pl.stage(0).install_table(t)
        double = pl.process(Packet())
        single = pl.process(Packet())  # pass 2 rule absent -> single pass now?
        # First packet recirculated once; a fresh packet still matches the
        # pass-1 rule, so compare against an explicitly single-pass packet:
        clean = SwitchPipeline(spec=SwitchSpec(stages=3, blocks_per_stage=4))
        base = clean.process(Packet())
        assert double.latency_ns > base.latency_ns

    def test_process_batch(self):
        pl = self._pipeline()
        results = pl.process_batch([Packet(), Packet()])
        assert len(results) == 2

    def test_invalid_max_passes(self):
        with pytest.raises(DataPlaneError):
            SwitchPipeline(max_passes=0)

    def test_totals(self):
        pl = self._pipeline()
        pl.stage(0).install_table(_table("fw"))
        assert pl.total_entries() == 1
        assert pl.blocks_used_by_stage() == [1, 0, 0]
