"""Tests for the P4Runtime-style batched CRUD API."""

import pytest

from repro.core.spec import SwitchSpec
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.runtime_api import OpType, RuntimeAPI, WriteOp
from repro.dataplane.table import MatchActionTable, MatchField, MatchKind, TableEntry
from repro.errors import DataPlaneError


@pytest.fixture()
def pipeline():
    pl = SwitchPipeline(spec=SwitchSpec(stages=2, blocks_per_stage=2))
    t = MatchActionTable("acl", key=[MatchField("protocol", MatchKind.EXACT)])
    pl.stage(0).install_table(t)
    return pl


@pytest.fixture()
def api(pipeline):
    return RuntimeAPI(pipeline)


def _entry(proto=6, action="drop"):
    return TableEntry(match={"protocol": proto}, action=action)


def test_insert_and_read(api):
    result = api.insert("acl", _entry())
    assert result.ok and result.applied == 1
    assert len(api.read_entries("acl")) == 1


def test_insert_charges_resources(api, pipeline):
    api.insert("acl", _entry())
    assert pipeline.stage(0).resources.entries_used == 1


def test_delete_refunds(api, pipeline):
    entry = _entry()
    api.insert("acl", entry)
    result = api.delete("acl", entry)
    assert result.ok
    assert pipeline.stage(0).resources.entries_used == 0
    assert api.read_entries("acl") == []


def test_modify_swaps_entry(api):
    old = _entry(action="drop")
    new = _entry(action="permit")
    api.insert("acl", old)
    result = api.modify("acl", old, new)
    assert result.ok
    entries = api.read_entries("acl")
    assert len(entries) == 1 and entries[0].action == "permit"


def test_modify_without_replacement_rejected(api):
    api.insert("acl", _entry())
    with pytest.raises(DataPlaneError):
        api._apply_one(WriteOp(OpType.MODIFY, "acl", _entry()))


def test_batch_atomic_rollback(api, pipeline):
    good = _entry(proto=6)
    missing = _entry(proto=99)
    result = api.write(
        [
            WriteOp(OpType.INSERT, "acl", good),
            WriteOp(OpType.DELETE, "acl", missing),  # fails: never inserted
        ]
    )
    assert not result.ok
    assert result.applied == 0
    assert api.read_entries("acl") == []
    assert pipeline.stage(0).resources.entries_used == 0


def test_batch_resource_overflow_rolls_back(api, pipeline):
    capacity = pipeline.stage(0).resources
    max_entries = capacity.blocks_total * capacity.entries_per_block
    ops = [WriteOp(OpType.INSERT, "acl", _entry(proto=i)) for i in range(max_entries + 1)]
    result = api.write(ops)
    assert not result.ok
    assert api.read_entries("acl") == []


def test_unknown_table(api):
    result = api.write([WriteOp(OpType.INSERT, "ghost", _entry())])
    assert not result.ok
    assert "ghost" in result.errors[0]


def test_stats_and_counters(api):
    api.insert("acl", _entry())
    stats = api.table_stats("acl")
    assert stats["entries"] == 1
    assert api.writes_total == 1
    assert api.batches_total == 1
