"""Tests for the calibrated ASIC performance model."""

import pytest

from repro.core.spec import SwitchSpec
from repro.dataplane.latency import AsicModel
from repro.errors import DataPlaneError


def test_paper_calibration_points():
    m = AsicModel()
    assert m.latency_ns(passes=1) == pytest.approx(341.0)
    # Three recirculations cost ~35 ns (paper §VI-C).
    assert m.latency_ns(passes=4) - m.latency_ns(passes=1) == pytest.approx(35.1)


def test_latency_monotone_in_passes():
    m = AsicModel()
    values = [m.latency_ns(p) for p in range(1, 6)]
    assert all(a < b for a, b in zip(values, values[1:]))


def test_invalid_passes():
    with pytest.raises(DataPlaneError):
        AsicModel().latency_ns(0)


def test_throughput_saturates_port_at_all_sizes():
    m = AsicModel()
    for size in (64, 128, 512, 1500):
        assert m.throughput_gbps(100.0, size) == pytest.approx(100.0)


def test_throughput_bounded_by_offered_load():
    m = AsicModel()
    assert m.throughput_gbps(40.0, 64) == pytest.approx(40.0)


def test_recirculation_halves_pps_budget():
    m = AsicModel()
    assert m.max_pps(2) == pytest.approx(m.max_pps(1) / 2)


def test_from_spec_uses_switch_parameters():
    spec = SwitchSpec(stages=12, stage_latency_ns=30.0)
    m = AsicModel.from_spec(spec)
    assert m.stages == 12
    assert m.latency_ns(1) == pytest.approx(70.0 + 71.0 + 12 * 30.0)


def test_negative_offered_load_rejected():
    with pytest.raises(DataPlaneError):
        AsicModel().throughput_gbps(-1.0, 64)


def test_invalid_model_parameters():
    with pytest.raises(DataPlaneError):
        AsicModel(stages=0)
    with pytest.raises(DataPlaneError):
        AsicModel(stage_ns=-1.0)
