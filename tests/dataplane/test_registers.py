"""Tests for stateful externs: registers, counters, meters."""

import pytest

from repro.dataplane.registers import (
    CounterArray,
    MeterArray,
    MeterColor,
    RegisterArray,
)
from repro.errors import DataPlaneError


class TestRegisterArray:
    def test_read_write(self):
        reg = RegisterArray("r", 4)
        reg.write(2, 99)
        assert reg.read(2) == 99
        assert reg.read(0) == 0

    def test_width_masking(self):
        reg = RegisterArray("r", 2, width_bits=8)
        reg.write(0, 0x1FF)
        assert reg.read(0) == 0xFF

    def test_read_modify_write(self):
        reg = RegisterArray("r", 1)
        assert reg.read_modify_write(0, lambda v: v + 5) == 5
        assert reg.read_modify_write(0, lambda v: v * 2) == 10

    def test_bounds(self):
        reg = RegisterArray("r", 2)
        with pytest.raises(DataPlaneError):
            reg.read(2)
        with pytest.raises(DataPlaneError):
            reg.write(-1, 0)

    def test_total_bits(self):
        assert RegisterArray("r", 10, width_bits=16).total_bits == 160

    def test_clear(self):
        reg = RegisterArray("r", 3)
        reg.write(1, 7)
        reg.clear()
        assert reg.read(1) == 0

    def test_validation(self):
        with pytest.raises(DataPlaneError):
            RegisterArray("r", 0)
        with pytest.raises(DataPlaneError):
            RegisterArray("r", 1, width_bits=65)


class TestCounterArray:
    def test_count_packets_and_bytes(self):
        c = CounterArray("c", 2)
        c.count(0, 64)
        c.count(0, 1500)
        assert c.read(0) == (2, 1564)
        assert c.read(1) == (0, 0)

    def test_bounds(self):
        c = CounterArray("c", 1)
        with pytest.raises(DataPlaneError):
            c.count(1, 64)
        with pytest.raises(DataPlaneError):
            c.read(5)

    def test_size_validated(self):
        with pytest.raises(DataPlaneError):
            CounterArray("c", 0)


class TestMeterArray:
    def test_green_within_committed_rate(self):
        # 8 Mbps committed = 1 MB/s; burst 10 kB.
        m = MeterArray("m", 1, committed_bps=8e6, burst_bytes=10_000)
        assert m.execute(0, 1000, now_ns=0) is MeterColor.GREEN

    def test_burst_exhaustion_goes_yellow_then_red(self):
        # committed 8 Mbps = 0.001 B/ns, peak 16 Mbps = 0.002 B/ns.
        m = MeterArray("m", 1, committed_bps=8e6, peak_bps=16e6, burst_bytes=1500)
        assert m.execute(0, 1500, now_ns=0) is MeterColor.GREEN  # drains both
        # After 0.5 ms: committed refilled 500 B, peak 1000 B.
        assert m.execute(0, 600, now_ns=500_000) is MeterColor.YELLOW
        assert m.execute(0, 600, now_ns=500_000) is MeterColor.RED

    def test_tokens_refill_over_time(self):
        m = MeterArray("m", 1, committed_bps=8e9, burst_bytes=1500)
        assert m.execute(0, 1500, now_ns=0) is MeterColor.GREEN
        assert m.execute(0, 1500, now_ns=1) is not MeterColor.GREEN
        # 8 Gbps = 1 byte/ns: after 1500 ns the bucket is full again.
        assert m.execute(0, 1500, now_ns=3000) is MeterColor.GREEN

    def test_independent_indices(self):
        m = MeterArray("m", 2, committed_bps=8e6, burst_bytes=1500)
        assert m.execute(0, 1500, 0) is MeterColor.GREEN
        assert m.execute(1, 1500, 0) is MeterColor.GREEN

    def test_time_must_not_go_backwards(self):
        m = MeterArray("m", 1, committed_bps=8e6)
        m.execute(0, 100, now_ns=1000)
        with pytest.raises(DataPlaneError):
            m.execute(0, 100, now_ns=500)

    def test_validation(self):
        with pytest.raises(DataPlaneError):
            MeterArray("m", 0, committed_bps=1e6)
        with pytest.raises(DataPlaneError):
            MeterArray("m", 1, committed_bps=0)
        with pytest.raises(DataPlaneError):
            MeterArray("m", 1, committed_bps=2e6, peak_bps=1e6)
        m = MeterArray("m", 1, committed_bps=1e6)
        with pytest.raises(DataPlaneError):
            m.execute(5, 100, 0)
