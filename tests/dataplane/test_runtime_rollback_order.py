"""Rollback must restore insertion-order tie-breaks, not just entry sets.

Replaying inverse ops re-inserts a deleted entry at the *end* of the table,
which silently flips the winner between equal-priority overlapping entries.
``RuntimeAPI.write`` therefore restores whole-table snapshots; these tests
pin that behavior on both the indexed fast path and the linear oracle.
"""

import pytest

from repro.core.spec import SwitchSpec
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.runtime_api import OpType, RuntimeAPI, WriteOp
from repro.dataplane.table import MatchActionTable, MatchField, MatchKind, TableEntry


def _setup(indexed: bool):
    pipeline = SwitchPipeline(spec=SwitchSpec(stages=1))
    table = MatchActionTable(
        "acl",
        key=[MatchField("protocol", MatchKind.EXACT)],
        indexed=indexed,
    )
    pipeline.stage(0).install_table(table)
    api = RuntimeAPI(pipeline)
    # Equal-priority overlapping entries: insertion order is the only
    # tie-break, and `first` wins it.
    first = TableEntry(match={"protocol": 6}, action="permit", priority=5)
    second = TableEntry(match={"protocol": 6}, action="drop", priority=5)
    assert api.write(
        [WriteOp(OpType.INSERT, "acl", first), WriteOp(OpType.INSERT, "acl", second)]
    ).ok
    return pipeline, api, table, first, second


@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "oracle"])
def test_failed_batch_restores_tie_break_winner(indexed):
    pipeline, api, table, first, second = _setup(indexed)
    assert table.lookup(Packet(protocol=6))[0] is first

    poison = TableEntry(match={"protocol": 99}, action="drop")
    result = api.write(
        [
            WriteOp(OpType.DELETE, "acl", first),   # applied, then undone
            WriteOp(OpType.DELETE, "acl", poison),  # fails the batch
        ]
    )
    assert not result.ok and result.applied == 0

    # Entry set AND order are back: `first` still wins the tie.
    assert [e for e in table.entries] == [first, second]
    entry, action, _ = table.lookup(Packet(protocol=6))
    assert entry is first
    assert action == "permit"


@pytest.mark.parametrize("indexed", [True, False], ids=["indexed", "oracle"])
def test_failed_batch_restores_resources_and_modify_order(indexed):
    pipeline, api, table, first, second = _setup(indexed)
    used_before = pipeline.stage(0).resources.entries_used
    blocks_before = pipeline.stage(0).resources.blocks_used

    replacement = TableEntry(match={"protocol": 6}, action="drop", priority=5)
    poison = TableEntry(match={"protocol": 99}, action="drop")
    result = api.write(
        [
            WriteOp(OpType.MODIFY, "acl", first, replacement=replacement),
            WriteOp(OpType.INSERT, "acl", TableEntry(match={"protocol": 17}, action="drop")),
            WriteOp(OpType.DELETE, "acl", poison),
        ]
    )
    assert not result.ok
    assert table.lookup(Packet(protocol=6))[0] is first
    assert pipeline.stage(0).resources.entries_used == used_before
    assert pipeline.stage(0).resources.blocks_used == blocks_before


def test_indexed_and_oracle_agree_after_rollback():
    """The index's undo path yields the same post-rollback lookups as a
    freshly rebuilt linear table — the differential guard for satellites."""
    results = {}
    for indexed in (True, False):
        _pipeline, _api, table, _first, _second = _setup(indexed)
        entry, action, params = table.lookup(Packet(protocol=6))
        results[indexed] = (entry.match, entry.priority, action, dict(params))
    assert results[True] == results[False]
