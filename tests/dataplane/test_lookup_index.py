"""Unit tests for the indexed lookup engine (:mod:`repro.dataplane.lookup_index`).

The differential harness proves equivalence statistically; these tests pin
the structural behaviors directly — shape grouping, bucket ordering,
residue early exit, insert-time spec validation, and index consistency
through every mutation path.
"""

import pytest

from repro.dataplane.lookup_index import LookupIndex, validate_spec
from repro.dataplane.packet import Packet
from repro.dataplane.table import (
    MatchActionTable,
    MatchField,
    MatchKind,
    TableEntry,
)
from repro.errors import DataPlaneError

KEY = (
    MatchField("tenant_id", MatchKind.EXACT),
    MatchField("pass_id", MatchKind.EXACT),
    MatchField("dst_ip", MatchKind.LPM),
    MatchField("dst_port", MatchKind.RANGE),
)


def _table(**kwargs):
    return MatchActionTable("t", key=KEY, **kwargs)


class TestShapeGrouping:
    def test_tenant_rules_share_one_shape(self):
        index = LookupIndex(KEY)
        for tenant in range(50):
            index.add(
                TableEntry(match={"tenant_id": tenant, "pass_id": 1}, action="permit"),
                tenant,
            )
        assert index.num_shapes == 1
        assert len(index) == 50

    def test_distinct_masks_make_distinct_shapes(self):
        index = LookupIndex(KEY)
        index.add(TableEntry(match={"tenant_id": 1}, action="permit"), 0)
        index.add(TableEntry(match={"dst_ip": (0x0A000000, 8)}, action="permit"), 1)
        index.add(TableEntry(match={"dst_ip": (0x0A000000, 16)}, action="permit"), 2)
        assert index.num_shapes == 3

    def test_wildcardish_specs_collapse_to_wildcard_shape(self):
        # /0 LPM and mask-0 ternary constrain nothing: same (empty) shape as
        # a match-all entry.
        key = (
            MatchField("src_ip", MatchKind.TERNARY),
            MatchField("dst_ip", MatchKind.LPM),
        )
        index = LookupIndex(key)
        index.add(TableEntry(match={}, action="permit"), 0)
        index.add(TableEntry(match={"src_ip": (123, 0)}, action="permit"), 1)
        index.add(TableEntry(match={"dst_ip": (456, 0)}, action="permit"), 2)
        assert index.num_shapes == 1

    def test_range_specs_go_to_residue(self):
        index = LookupIndex(KEY)
        index.add(
            TableEntry(match={"tenant_id": 1, "dst_port": (0, 80)}, action="drop"), 0
        )
        assert index.num_shapes == 0
        assert index.residue_size == 1


class TestRanking:
    def test_bucket_head_is_equal_priority_insertion_winner(self):
        t = _table()
        first = TableEntry(match={"tenant_id": 1}, action="permit", priority=5)
        second = TableEntry(match={"tenant_id": 1}, action="drop", priority=5)
        t.insert(first)
        t.insert(second)
        assert t.lookup(Packet(tenant_id=1))[0] is first

    def test_priority_beats_order_across_shapes(self):
        t = _table()
        t.insert(TableEntry(match={"tenant_id": 1}, action="permit", priority=1))
        loser = TableEntry(match={"dst_ip": (0x0A000000, 8)}, action="drop", priority=9)
        t.insert(loser)
        assert t.lookup(Packet(tenant_id=1, dst_ip=0x0A010101))[0] is loser

    def test_lpm_specificity_breaks_priority_ties(self):
        t = _table()
        t.insert(TableEntry(match={"dst_ip": (0x0A000000, 8)}, action="permit"))
        longer = TableEntry(match={"dst_ip": (0x0A0A0000, 16)}, action="drop")
        t.insert(longer)
        assert t.lookup(Packet(dst_ip=0x0A0A0101))[0] is longer

    def test_residue_outranks_indexed_candidate(self):
        t = _table()
        t.insert(TableEntry(match={"tenant_id": 1}, action="permit", priority=1))
        ranged = TableEntry(match={"dst_port": (0, 100)}, action="drop", priority=9)
        t.insert(ranged)
        assert t.lookup(Packet(tenant_id=1, dst_port=50))[0] is ranged

    def test_residue_scan_early_exits_behind_indexed_winner(self):
        t = _table()
        winner = TableEntry(match={"tenant_id": 1}, action="permit", priority=9)
        t.insert(winner)
        t.insert(TableEntry(match={"dst_port": (0, 65535)}, action="drop", priority=1))
        assert t.lookup(Packet(tenant_id=1, dst_port=50))[0] is winner


class TestSpecValidation:
    def test_malformed_lpm_rejected_at_insert(self):
        t = _table()
        with pytest.raises(DataPlaneError):
            t.insert(TableEntry(match={"dst_ip": (0, 40)}, action="drop"))
        with pytest.raises(DataPlaneError):
            t.insert(TableEntry(match={"dst_ip": (0, -1)}, action="drop"))
        with pytest.raises(DataPlaneError):
            t.insert(TableEntry(match={"dst_ip": 7}, action="drop"))  # not a pair
        assert t.num_entries == 0
        # Traffic keeps flowing after the rejected writes.
        assert t.lookup(Packet())[1] == t.default_action

    def test_malformed_exact_and_range_rejected(self):
        t = _table()
        with pytest.raises(DataPlaneError):
            t.insert(TableEntry(match={"tenant_id": "not-an-int"}, action="drop"))
        with pytest.raises(DataPlaneError):
            t.insert(TableEntry(match={"dst_port": (1, 2, 3)}, action="drop"))

    def test_validate_spec_accepts_wildcards_and_good_specs(self):
        validate_spec(MatchKind.EXACT, None)
        validate_spec(MatchKind.EXACT, 6)
        validate_spec(MatchKind.LPM, (0x0A000000, 24))
        validate_spec(MatchKind.TERNARY, (0x0A000000, 0xFF000000))
        validate_spec(MatchKind.RANGE, (0, 65535))

    def test_insert_many_is_atomic_on_bad_spec(self):
        t = _table()
        good = TableEntry(match={"tenant_id": 1}, action="permit")
        bad = TableEntry(match={"dst_ip": (0, 99)}, action="drop")
        with pytest.raises(DataPlaneError):
            t.insert_many([good, bad])
        assert t.num_entries == 0

    def test_insert_many_is_atomic_on_capacity(self):
        t = _table(max_entries=2)
        batch = [
            TableEntry(match={"tenant_id": i}, action="permit") for i in range(3)
        ]
        with pytest.raises(DataPlaneError):
            t.insert_many(batch)
        assert t.num_entries == 0
        t.insert_many(batch[:2])
        assert t.num_entries == 2


class TestIndexConsistency:
    def test_index_tracks_entry_count_through_mutations(self):
        t = _table()
        entries = [
            TableEntry(match={"tenant_id": i % 3, "pass_id": 1}, action="permit")
            for i in range(12)
        ]
        for e in entries:
            t.insert(e)
        assert len(t._index) == 12
        t.delete(entries[5])
        assert len(t._index) == 11
        assert t.delete_where(tenant_id=0) == 4
        assert len(t._index) == len(t.entries) == 7

    def test_duplicate_object_install_and_delete(self):
        t = _table()
        e = TableEntry(match={"tenant_id": 1}, action="permit")
        t.insert(e)
        t.insert(e)
        assert len(t._index) == 2
        t.delete(e)
        assert len(t._index) == 1
        assert t.lookup(Packet(tenant_id=1))[0] is e
        t.delete(e)
        assert len(t._index) == 0

    def test_restore_rebuilds_index(self):
        t = _table()
        e1 = TableEntry(match={"tenant_id": 1}, action="permit")
        e2 = TableEntry(match={"tenant_id": 1}, action="drop")
        t.insert(e1)
        t.insert(e2)
        snap = t.snapshot()
        t.delete(e1)
        t.restore(snap)
        assert len(t._index) == 2
        assert t.lookup(Packet(tenant_id=1))[0] is e1  # order restored

    def test_unindexed_table_has_no_index(self):
        t = _table(indexed=False)
        assert t._index is None
        e = TableEntry(match={"tenant_id": 1}, action="drop")
        t.insert(e)
        assert t.lookup(Packet(tenant_id=1))[0] is e
        assert t.hits == 1

    def test_counters_identical_between_paths(self):
        fast, slow = _table(), _table(indexed=False)
        for t in (fast, slow):
            t.insert(TableEntry(match={"tenant_id": 1}, action="permit"))
            t.lookup(Packet(tenant_id=1))
            t.lookup(Packet(tenant_id=2))
        assert (fast.hits, fast.misses) == (slow.hits, slow.misses) == (1, 1)
