"""Differential tests: the indexed lookup engine vs the linear-scan oracle.

Hundreds of seeded random cases (entries, packets, interleaved mutations,
and batched writes with rollback) assert the fast path is observationally
identical to the reference semantics — same winning entry (by identity),
same action and params, same hit/miss counters — per the acceptance bar of
>= 500 generated cases with zero divergence.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import SwitchSpec
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.runtime_api import OpType, RuntimeAPI, WriteOp
from repro.dataplane.table import MatchActionTable, TableEntry
from repro.rng import DEFAULT_SEED, make_rng

from tests.dataplane.differential.harness import (
    KEY,
    TwinTables,
    random_entry,
    random_packet,
)

#: Enough seeded cases that the suite comfortably clears 500 comparisons.
NUM_CASES = 40


def test_differential_bulk_and_interleaved_mutations():
    """>= 500 random lookups across insert/delete/delete_where/restore
    sequences, all agreeing between the indexed and reference engines."""
    from tests.dataplane.differential.harness import run_random_case

    compared = 0
    for case in range(NUM_CASES):
        compared += run_random_case(DEFAULT_SEED + case)
    assert compared >= 500, f"only {compared} differential comparisons ran"


def test_differential_empty_and_tiny_tables():
    """Degenerate sizes: empty table (all misses) and single-entry table."""
    rng = make_rng(DEFAULT_SEED)
    twins = TwinTables()
    twins.check_many(rng, 25)  # empty: every lookup must be a miss on both
    twins.insert(random_entry(rng))
    twins.check_many(rng, 25)
    assert twins.fast.misses == twins.oracle.misses >= 25


class _TwinRuntime:
    """Two single-stage pipelines (indexed vs oracle table) driven through
    identical :class:`RuntimeAPI` batches, including failing ones."""

    def __init__(self, max_entries: int | None = None) -> None:
        self.sides = []
        for indexed in (True, False):
            pipeline = SwitchPipeline(spec=SwitchSpec(stages=1))
            table = MatchActionTable(
                "t", key=KEY, max_entries=max_entries, indexed=indexed
            )
            pipeline.stage(0).install_table(table)
            self.sides.append((RuntimeAPI(pipeline), table))

    def write(self, ops: list[WriteOp]):
        results = [api.write(ops) for api, _table in self.sides]
        assert results[0].ok == results[1].ok
        assert results[0].applied == results[1].applied
        return results[0]

    @property
    def live(self) -> list[TableEntry]:
        # The oracle's entry list is ground truth for what survived.
        return list(self.sides[1][1].entries)

    def check_many(self, rng, num_packets: int) -> int:
        fast, oracle = self.sides[0][1], self.sides[1][1]
        for _ in range(num_packets):
            packet = random_packet(rng)
            fast_hit = fast.lookup(packet)
            ref_hit = oracle.lookup(packet)
            assert fast_hit[0] is ref_hit[0], (
                f"divergence after batched writes for {packet}"
            )
            assert fast_hit[1:] == ref_hit[1:]
        assert (fast.hits, fast.misses) == (oracle.hits, oracle.misses)
        return num_packets


def test_differential_runtime_batches_with_rollback():
    """Random INSERT/DELETE/MODIFY batches — roughly a third poisoned so
    they roll back — leave both engines in identical states throughout."""
    rng = make_rng(DEFAULT_SEED + 1000)
    twins = _TwinRuntime()
    compared = 0
    failed_batches = 0
    for _round in range(30):
        live = twins.live
        ops: list[WriteOp] = []
        for _ in range(int(rng.integers(1, 6))):
            roll = rng.random()
            if live and roll < 0.3:
                victim = live[int(rng.integers(0, len(live)))]
                ops.append(WriteOp(OpType.DELETE, "t", victim))
                live = [e for e in live if e is not victim]
            elif live and roll < 0.5:
                victim = live[int(rng.integers(0, len(live)))]
                ops.append(
                    WriteOp(OpType.MODIFY, "t", victim, replacement=random_entry(rng))
                )
                live = [e for e in live if e is not victim]
            else:
                ops.append(WriteOp(OpType.INSERT, "t", random_entry(rng)))
        if rng.random() < 0.35:
            # Poison: deleting a never-installed entry fails the whole batch.
            ops.append(WriteOp(OpType.DELETE, "t", random_entry(rng)))
        result = twins.write(ops)
        if not result.ok:
            failed_batches += 1
        compared += twins.check_many(rng, 10)
    assert compared >= 300
    assert failed_batches > 0, "no rollback was ever exercised"


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_differential_hypothesis_fuzzed_seeds(seed):
    """Hypothesis drives the case seed so failures shrink to a small one."""
    from tests.dataplane.differential.harness import run_random_case

    assert run_random_case(seed, num_entries=12, num_packets=8) > 0
