"""Property-based parser tests: build -> parse round-trips for arbitrary
field values, for plain, VLAN-tagged and VxLAN-encapsulated frames."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dataplane.parser import (
    PROTO_TCP,
    PROTO_UDP,
    build_frame,
    build_vxlan_frame,
    parse_packet,
)

ips = st.integers(0, 2**32 - 1)
ports = st.integers(0, 65535)
protocols = st.sampled_from([PROTO_TCP, PROTO_UDP])
dscps = st.integers(0, 63)


@given(src=ips, dst=ips, sport=ports, dport=ports, proto=protocols, dscp=dscps)
@settings(max_examples=150, deadline=None)
def test_plain_frame_roundtrip(src, dst, sport, dport, proto, dscp):
    # A UDP frame whose dst_port happens to be 4789 parses as (truncated)
    # VxLAN and is rejected; exclude that single well-known-port collision.
    assume(not (proto == PROTO_UDP and dport == 4789))
    frame = build_frame(
        src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
        protocol=proto, dscp=dscp,
    )
    packet, headers = parse_packet(frame)
    assert packet.five_tuple() == (src, dst, sport, dport, proto)
    assert packet.dscp == dscp
    assert headers.vni is None


@given(
    src=ips, dst=ips, sport=ports, dport=ports, proto=protocols,
    vlan=st.integers(0, 4095),
)
@settings(max_examples=100, deadline=None)
def test_vlan_frame_roundtrip(src, dst, sport, dport, proto, vlan):
    # Same well-known-port collision as the plain-frame roundtrip: a VLAN
    # frame whose UDP dst_port is 4789 parses as (truncated) VxLAN.
    assume(not (proto == PROTO_UDP and dport == 4789))
    frame = build_frame(
        src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
        protocol=proto, vlan_id=vlan,
    )
    packet, headers = parse_packet(frame)
    assert packet.tenant_id == vlan
    assert headers.vlan_id == vlan
    assert packet.five_tuple() == (src, dst, sport, dport, proto)


@given(
    vni=st.integers(0, 2**24 - 1),
    src=ips, dst=ips, sport=ports, dport=ports, proto=protocols,
)
@settings(max_examples=100, deadline=None)
def test_vxlan_frame_roundtrip(vni, src, dst, sport, dport, proto):
    frame = build_vxlan_frame(
        vni=vni, src_ip=src, dst_ip=dst, src_port=sport, dst_port=dport,
        protocol=proto,
    )
    packet, headers = parse_packet(frame)
    assert packet.tenant_id == vni
    assert headers.vni == vni
    assert packet.five_tuple() == (src, dst, sport, dport, proto)
