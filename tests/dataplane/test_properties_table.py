"""Property-based tests for table matching against a brute-force reference.

The reference re-implements the match semantics naively (filter all entries,
rank by (priority, LPM specificity, insertion order)); hypothesis drives
random tables/packets and checks :meth:`MatchActionTable.lookup` agrees.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataplane.packet import Packet
from repro.dataplane.table import (
    MatchActionTable,
    MatchField,
    MatchKind,
    TableEntry,
    _match_one,
)

FIELDS = [
    MatchField("src_ip", MatchKind.TERNARY),
    MatchField("dst_ip", MatchKind.LPM),
    MatchField("dst_port", MatchKind.RANGE),
    MatchField("protocol", MatchKind.EXACT),
]


@st.composite
def entries(draw):
    match = {}
    if draw(st.booleans()):
        value = draw(st.integers(0, 2**32 - 1))
        mask = draw(st.sampled_from([0, 0xFF000000, 0xFFFFFF00, 0xFFFFFFFF]))
        match["src_ip"] = (value, mask)
    if draw(st.booleans()):
        length = draw(st.sampled_from([0, 8, 16, 24, 32]))
        prefix = draw(st.integers(0, 2**32 - 1))
        match["dst_ip"] = (prefix, length)
    if draw(st.booleans()):
        lo = draw(st.integers(0, 65535))
        hi = draw(st.integers(lo, 65535))
        match["dst_port"] = (lo, hi)
    if draw(st.booleans()):
        match["protocol"] = draw(st.sampled_from([6, 17]))
    priority = draw(st.integers(0, 3))
    return TableEntry(match=match, action="permit", priority=priority)


@st.composite
def packets(draw):
    return Packet(
        src_ip=draw(st.integers(0, 2**32 - 1)),
        dst_ip=draw(st.integers(0, 2**32 - 1)),
        dst_port=draw(st.integers(0, 65535)),
        protocol=draw(st.sampled_from([6, 17])),
    )


def reference_lookup(table, entry_list, packet):
    """Naive reference: filter, then max by the documented ranking."""
    candidates = []
    for order, entry in enumerate(entry_list):
        if all(
            _match_one(f.kind, entry.match.get(f.name), packet.get_field(f.name))
            for f in FIELDS
        ):
            candidates.append(
                ((entry.priority, entry.lpm_specificity(FIELDS), -order), entry)
            )
    if not candidates:
        return None
    return max(candidates, key=lambda pair: pair[0])[1]


@given(
    entry_list=st.lists(entries(), min_size=0, max_size=8),
    packet=packets(),
)
@settings(max_examples=200, deadline=None)
def test_lookup_matches_reference(entry_list, packet):
    table = MatchActionTable("t", key=FIELDS)
    for entry in entry_list:
        table.insert(entry)
    winner, action, _params = table.lookup(packet)
    expected = reference_lookup(table, entry_list, packet)
    assert winner == expected
    if expected is None:
        assert action == table.default_action


@given(
    entry_list=st.lists(entries(), min_size=1, max_size=6),
    packet=packets(),
)
@settings(max_examples=100, deadline=None)
def test_delete_restores_previous_behaviour(entry_list, packet):
    """Insert all, delete the last -> behaves as if it was never there."""
    table_with = MatchActionTable("a", key=FIELDS)
    table_without = MatchActionTable("b", key=FIELDS)
    for entry in entry_list:
        table_with.insert(entry)
    for entry in entry_list[:-1]:
        table_without.insert(entry)
    table_with.delete(entry_list[-1])
    assert table_with.lookup(packet)[0] == table_without.lookup(packet)[0]
