"""Unit tests for packets and per-packet metadata."""

import pytest

from repro.dataplane.packet import Packet, PacketResult
from repro.errors import DataPlaneError


def test_defaults():
    p = Packet()
    assert p.pass_id == 1
    assert not p.recirculate
    assert not p.dropped
    assert p.egress_port is None


def test_get_set_field():
    p = Packet(src_ip=5)
    assert p.get_field("src_ip") == 5
    p.set_field("dst_ip", 7)
    assert p.dst_ip == 7


def test_unknown_field_rejected():
    p = Packet()
    with pytest.raises(DataPlaneError):
        p.get_field("ttl")
    with pytest.raises(DataPlaneError):
        p.set_field("ttl", 1)


def test_pass_id_not_writable_by_actions():
    p = Packet()
    with pytest.raises(DataPlaneError):
        p.set_field("pass_id", 2)


def test_size_validation():
    with pytest.raises(DataPlaneError):
        Packet(size_bytes=0)


def test_pass_id_one_based():
    with pytest.raises(DataPlaneError):
        Packet(pass_id=0)


def test_five_tuple():
    p = Packet(src_ip=1, dst_ip=2, src_port=3, dst_port=4, protocol=17)
    assert p.five_tuple() == (1, 2, 3, 4, 17)


def test_result_properties():
    p = Packet()
    r = PacketResult(packet=p, passes=3, trace=[(1, 0, "t", "no_op"), (2, 0, "t", "drop")])
    assert r.recirculations == 2
    assert r.delivered
    assert r.applied_tables() == ["t"]  # only the non-no_op application
    p.dropped = True
    assert not r.delivered
