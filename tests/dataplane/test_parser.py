"""Tests for the byte-level parser/deparser (tenant classification §III)."""

import pytest

from repro.dataplane.parser import (
    PROTO_TCP,
    PROTO_UDP,
    build_frame,
    build_ipv4_l4,
    build_vxlan_frame,
    deparse_packet,
    parse_packet,
)
from repro.errors import DataPlaneError


class TestPlainFrames:
    def test_tcp_roundtrip(self):
        frame = build_frame(
            src_ip=0x0A000001, dst_ip=0x0A000002, src_port=1234, dst_port=80,
            protocol=PROTO_TCP, dscp=12,
        )
        packet, headers = parse_packet(frame)
        assert packet.five_tuple() == (0x0A000001, 0x0A000002, 1234, 80, PROTO_TCP)
        assert packet.dscp == 12
        assert headers.stack == ("ethernet", "ipv4", "tcp")
        assert packet.tenant_id == 0  # default

    def test_udp_frame(self):
        frame = build_frame(
            src_ip=1, dst_ip=2, src_port=53, dst_port=5353, protocol=PROTO_UDP
        )
        packet, headers = parse_packet(frame)
        assert packet.protocol == PROTO_UDP
        assert headers.stack[-1] == "udp"

    def test_default_tenant_applied(self):
        frame = build_frame(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        packet, _ = parse_packet(frame, default_tenant=9)
        assert packet.tenant_id == 9

    def test_size_matches_frame(self):
        frame = build_frame(src_ip=1, dst_ip=2, src_port=3, dst_port=4,
                            payload=b"x" * 100)
        packet, _ = parse_packet(frame)
        assert packet.size_bytes == len(frame)


class TestVlan:
    def test_vlan_id_becomes_tenant(self):
        frame = build_frame(
            src_ip=1, dst_ip=2, src_port=3, dst_port=4, vlan_id=123
        )
        packet, headers = parse_packet(frame)
        assert packet.tenant_id == 123
        assert headers.vlan_id == 123
        assert "vlan" in headers.stack

    def test_vlan_id_range_validated(self):
        with pytest.raises(DataPlaneError):
            build_frame(src_ip=1, dst_ip=2, src_port=3, dst_port=4, vlan_id=5000)


class TestVxlan:
    def test_vni_becomes_tenant_and_inner_tuple_parsed(self):
        frame = build_vxlan_frame(
            vni=0xABCDE,
            src_ip=0x0A010101,
            dst_ip=0x0A020202,
            src_port=1111,
            dst_port=443,
            protocol=PROTO_TCP,
        )
        packet, headers = parse_packet(frame)
        assert packet.tenant_id == 0xABCDE
        assert headers.vni == 0xABCDE
        # The pipeline matches on the *inner* (tenant) 5-tuple.
        assert packet.five_tuple() == (0x0A010101, 0x0A020202, 1111, 443, PROTO_TCP)
        assert headers.stack[:5] == ("ethernet", "ipv4", "udp", "vxlan",
                                     "inner_ethernet")

    def test_vni_wins_over_vlan_priority(self):
        # VxLAN framing has no VLAN here, but the precedence rule is
        # documented: craft VLAN-tagged outer carrying VxLAN.
        inner = build_frame(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        frame = build_vxlan_frame(vni=77, inner=inner)
        packet, _ = parse_packet(frame)
        assert packet.tenant_id == 77

    def test_vni_range_validated(self):
        with pytest.raises(DataPlaneError):
            build_vxlan_frame(vni=2**24, src_ip=1, dst_ip=2, src_port=3, dst_port=4)

    def test_vxlan_without_valid_flag_rejected(self):
        frame = bytearray(
            build_vxlan_frame(vni=5, src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        )
        # Outer eth(14) + ipv4(20) + udp(8) -> VxLAN flags byte.
        frame[14 + 20 + 8] = 0x00
        with pytest.raises(DataPlaneError):
            parse_packet(bytes(frame))


class TestRejects:
    def test_truncated_ethernet(self):
        with pytest.raises(DataPlaneError):
            parse_packet(b"\x00" * 10)

    def test_unknown_ethertype(self):
        frame = bytearray(build_frame(src_ip=1, dst_ip=2, src_port=3, dst_port=4))
        frame[12:14] = b"\x86\xdd"  # IPv6
        with pytest.raises(DataPlaneError):
            parse_packet(bytes(frame))

    def test_non_ipv4_version(self):
        frame = bytearray(build_frame(src_ip=1, dst_ip=2, src_port=3, dst_port=4))
        frame[14] = (6 << 4) | 5
        with pytest.raises(DataPlaneError):
            parse_packet(bytes(frame))

    def test_truncated_l4(self):
        frame = build_frame(src_ip=1, dst_ip=2, src_port=3, dst_port=4)
        with pytest.raises(DataPlaneError):
            parse_packet(frame[: 14 + 20 + 4])

    def test_unsupported_protocol(self):
        with pytest.raises(DataPlaneError):
            build_ipv4_l4(1, 2, 3, 4, protocol=47)  # GRE not in the L4 builder


class TestDeparse:
    def test_deparse_reparses_identically(self):
        frame = build_frame(
            src_ip=0x0A000001, dst_ip=0x0A000002, src_port=9, dst_port=80, dscp=5
        )
        packet, _ = parse_packet(frame)
        packet.set_field("dst_ip", 0x0A0000FF)  # LB rewrite
        out = deparse_packet(packet, vlan_id=42)
        packet2, headers2 = parse_packet(out)
        assert packet2.dst_ip == 0x0A0000FF
        assert packet2.tenant_id == 42  # re-tagged
        assert headers2.vlan_id == 42


class TestPipelineIntegration:
    def test_parsed_vxlan_packet_hits_tenant_rules(self):
        from repro.core.spec import SwitchSpec
        from repro.dataplane.pipeline import SwitchPipeline
        from repro.dataplane.table import TableEntry
        from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
        from repro.nfs import install_physical_nf

        pl = SwitchPipeline(spec=SwitchSpec(stages=1, blocks_per_stage=4))
        install_physical_nf(pl, "firewall", 0)
        SFCVirtualizer(pl).install_sfc(
            LogicalSFC(
                tenant_id=42,
                nfs=(LogicalNF("firewall", (TableEntry(match={}, action="drop"),)),),
            )
        )
        frame = build_vxlan_frame(
            vni=42, src_ip=1, dst_ip=2, src_port=3, dst_port=4
        )
        packet, _ = parse_packet(frame)
        assert pl.process(packet).packet.dropped
        other_frame = build_vxlan_frame(
            vni=43, src_ip=1, dst_ip=2, src_port=3, dst_port=4
        )
        other, _ = parse_packet(other_frame)
        assert pl.process(other).delivered
