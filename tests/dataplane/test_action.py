"""Unit tests for action primitives and the registry."""

import pytest

from repro.dataplane.action import default_actions
from repro.dataplane.packet import Packet
from repro.errors import DataPlaneError


@pytest.fixture()
def actions():
    return default_actions()


def _run(actions, name, packet, **params):
    actions.resolve(name).fn(packet, params)


def test_no_op_leaves_packet(actions):
    p = Packet(dst_ip=5)
    _run(actions, "no_op", p)
    assert p.dst_ip == 5 and not p.dropped and not p.recirculate


def test_rec_argument_sets_recirculate(actions):
    p = Packet()
    _run(actions, "no_op", p, rec=True)
    assert p.recirculate


def test_rec_false_does_not_recirculate(actions):
    p = Packet()
    _run(actions, "permit", p, rec=False)
    assert not p.recirculate


def test_drop(actions):
    p = Packet()
    _run(actions, "drop", p)
    assert p.dropped


def test_set_dscp(actions):
    p = Packet()
    _run(actions, "set_dscp", p, dscp=46)
    assert p.dscp == 46


def test_set_dst_rewrites(actions):
    p = Packet(dst_ip=1, dst_port=80)
    _run(actions, "set_dst", p, dst_ip=99, dst_port=8080)
    assert (p.dst_ip, p.dst_port) == (99, 8080)


def test_set_dst_port_optional(actions):
    p = Packet(dst_port=80)
    _run(actions, "set_dst", p, dst_ip=99)
    assert p.dst_port == 80


def test_snat(actions):
    p = Packet(src_ip=1, src_port=1000)
    _run(actions, "snat", p, src_ip=42, src_port=2000)
    assert (p.src_ip, p.src_port) == (42, 2000)


def test_forward_sets_egress(actions):
    p = Packet()
    _run(actions, "forward", p, port=7)
    assert p.egress_port == 7


def test_rate_limit_consumes_tokens(actions):
    p = Packet()
    for _ in range(3):
        _run(actions, "rate_limit", p, bucket="b", burst=3)
    assert not p.dropped
    _run(actions, "rate_limit", p, bucket="b", burst=3)
    assert p.dropped


def test_count_increments(actions):
    p = Packet()
    _run(actions, "count", p, counter="c")
    _run(actions, "count", p, counter="c")
    assert p.scratch["_counters"]["c"] == 2


def test_unknown_action_rejected(actions):
    with pytest.raises(DataPlaneError):
        actions.resolve("teleport")


def test_duplicate_registration_rejected(actions):
    with pytest.raises(DataPlaneError):
        actions.register("drop", lambda p, params: None)


def test_registry_names_sorted(actions):
    names = actions.names()
    assert names == sorted(names)
    assert "no_op" in names
