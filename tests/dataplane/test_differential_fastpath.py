"""Differential tests: the compiled fast path vs the interpreter oracle.

Every test builds the *same* workload twice — one pipeline left on the
interpreter, one with a :class:`FastPathEngine` attached — pushes the same
packets through both, and asserts bit-identity: every header field,
``pass_id``/``recirculate``/``dropped``/``egress_port``, the modeled
latency, per-table hit/miss counters, recirculation overflows, and (when
sampling) the postcard stream.
"""

from __future__ import annotations

import pytest

from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.runtime_api import RuntimeAPI
from repro.dataplane.table import (
    MatchActionTable,
    MatchField,
    MatchKind,
    TableEntry,
)
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.core.spec import SwitchSpec
from repro.fastpath import HAS_NUMPY, FastPathEngine
from repro.nfs import get_nf, install_physical_nf
from repro.rng import make_rng
from repro.telemetry import PostcardCollector
from repro.traffic.flows import FlowGenerator

CHAIN = ("firewall", "traffic_classifier", "load_balancer", "router")
TENANTS = (1, 2, 3)

BACKENDS = ["python"] + (["numpy"] if HAS_NUMPY else [])


#: Broad low-priority rules guaranteeing hits (generated NF rules match
#: narrow address slices, so random flows rarely hit them): the classifier
#: catch-all is what carries REC when the chain folds, and the router one
#: gives recirculated packets a deterministic egress.
CATCH_ALLS = {
    "traffic_classifier": TableEntry(
        match={"src_ip": (0, 0), "dst_port": (0, 65535), "protocol": 6},
        action="set_dscp", params={"dscp": 10}, priority=0,
    ),
    "router": TableEntry(
        match={"dst_ip": (0, 0)}, action="forward", params={"port": 1},
        priority=0,
    ),
}


def build_pipeline(stages: int = 4, rules_per_nf: int = 24, seed: int = 7):
    """``len(TENANTS)`` virtualized Fig. 4 chains.  With ``stages=4`` each
    chain runs in one pass; with ``stages=2`` the §IV first-fit walk folds
    it across two passes, so recirculation is exercised end to end."""
    rng = make_rng(seed)
    pipeline = SwitchPipeline(
        spec=SwitchSpec(stages=stages, blocks_per_stage=64), max_passes=4
    )
    for i, name in enumerate(CHAIN):
        install_physical_nf(pipeline, name, i % stages)
    virtualizer = SFCVirtualizer(pipeline)
    for tenant_id in TENANTS:
        nfs = []
        for name in CHAIN:
            rules = list(get_nf(name).generate_rules(rng, rules_per_nf))
            if name in CATCH_ALLS:
                rules.append(CATCH_ALLS[name])
            nfs.append(LogicalNF(nf_name=name, rules=tuple(rules)))
        virtualizer.install_sfc(LogicalSFC(tenant_id=tenant_id, nfs=tuple(nfs)))
    return pipeline


def make_batch(num_per_tenant: int, seed: int = 3):
    batch = []
    for tenant_id in TENANTS:
        gen = FlowGenerator(seed + tenant_id)
        flows = gen.flows(8, tenant_id=tenant_id)
        batch.extend(gen.packets(flows, num_per_tenant, size_bytes=64))
    return batch


def result_key(r):
    p = r.packet
    return (
        p.tenant_id, p.src_ip, p.dst_ip, p.src_port, p.dst_port,
        p.protocol, p.dscp, p.pass_id, p.recirculate, p.dropped,
        p.egress_port, r.passes, r.latency_ns, p.scratch,
    )


def table_counters(pipeline):
    return [
        (t.name, t.hits, t.misses)
        for s in pipeline.stages
        for t in s.tables
    ]


def assert_identical(ref_pipeline, got_pipeline, ref_results, got_results):
    assert len(ref_results) == len(got_results)
    for a, b in zip(ref_results, got_results):
        assert result_key(a) == result_key(b)
    assert table_counters(ref_pipeline) == table_counters(got_pipeline)
    assert (
        ref_pipeline.recirculation_overflows
        == got_pipeline.recirculation_overflows
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_single_pass_chains_bit_identical(backend):
    """500+ packets (per the three tenants together, >170 each) through
    the 4-stage single-pass layout."""
    ref = build_pipeline(stages=4)
    got = build_pipeline(stages=4)
    engine = FastPathEngine.attach(got, backend=backend)
    ref_results = ref.process_batch(make_batch(180))
    got_results = got.process_batch(make_batch(180))
    assert len(got_results) == 540
    assert_identical(ref, got, ref_results, got_results)
    assert engine.stats["compiled_packets"] == 540
    assert engine.stats["interpreted_packets"] == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_folded_chains_recirculate_identically(backend):
    """On a 2-stage pipeline the 4-NF chain folds across two passes; the
    static recirculation plan must replay the interpreter exactly."""
    ref = build_pipeline(stages=2)
    got = build_pipeline(stages=2)
    FastPathEngine.attach(got, backend=backend)
    ref_results = ref.process_batch(make_batch(180))
    got_results = got.process_batch(make_batch(180))
    assert any(r.passes > 1 for r in ref_results), "workload never folded"
    assert_identical(ref, got, ref_results, got_results)


@pytest.mark.parametrize("backend", BACKENDS)
def test_recirculation_overflow_counted_identically(backend):
    """A rule that recirculates on every pass overflows the budget; the
    kernels must freeze state and bump the counter like the interpreter."""

    def build():
        pl = SwitchPipeline(
            spec=SwitchSpec(stages=1, blocks_per_stage=4), max_passes=3
        )
        t = MatchActionTable(
            "spin",
            key=[
                MatchField("tenant_id", MatchKind.EXACT),
                MatchField("dst_port", MatchKind.RANGE),
            ],
        )
        t.insert(TableEntry(
            match={"tenant_id": 1, "dst_port": (0, 40000)},
            action="no_op", params={"rec": True},
        ))
        pl.stage(0).install_table(t)
        return pl

    ref, got = build(), build()
    FastPathEngine.attach(got, backend=backend)
    gen = FlowGenerator(5)
    flows = gen.flows(8, tenant_id=1)
    ref_results = ref.process_batch(gen.packets(flows, 64, size_bytes=64))
    gen = FlowGenerator(5)
    flows = gen.flows(8, tenant_id=1)
    got_results = got.process_batch(gen.packets(flows, 64, size_bytes=64))
    assert ref.recirculation_overflows > 0
    assert_identical(ref, got, ref_results, got_results)
    assert all(
        r.passes == 3 for r in got_results if r.packet.dst_port <= 40000
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_rule_churn_between_batches_stays_identical(backend):
    """Admit-style churn through RuntimeAPI between batches: the engine
    must invalidate exactly the written tenant and keep matching the
    oracle afterwards."""
    ref = build_pipeline(stages=4)
    got = build_pipeline(stages=4)
    engine = FastPathEngine.attach(got, backend=backend)

    assert_identical(
        ref, got,
        ref.process_batch(make_batch(64)),
        got.process_batch(make_batch(64)),
    )
    cached_before = engine.cached_plans
    assert cached_before == len(TENANTS)

    # Flip one tenant-1 firewall rule to a drop via both RuntimeAPIs.
    for pipeline in (ref, got):
        api = RuntimeAPI(pipeline)
        entries = [
            e for e in api.read_entries("firewall@s0")
            if e.match.get("tenant_id") == 1
        ]
        victim = entries[0]
        replacement = TableEntry(
            match=victim.match, action="drop", params={},
            priority=victim.priority,
        )
        assert api.modify("firewall@s0", victim, replacement).ok

    compiles_before = engine.stats["compiles"]
    assert_identical(
        ref, got,
        ref.process_batch(make_batch(64, seed=11)),
        got.process_batch(make_batch(64, seed=11)),
    )
    # Only tenant 1 recompiled; tenants 2 and 3 kept their plans.
    assert engine.stats["compiles"] == compiles_before + 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_postcards_bit_identical_under_sampling(backend):
    """1-in-N sampled postcards out of the fast path must be the exact
    cards (and counters) the pure interpreter would emit."""
    ref = build_pipeline(stages=2)
    got = build_pipeline(stages=2)
    ref.telemetry = PostcardCollector(sample_every=7, capacity=4096)
    got.telemetry = PostcardCollector(sample_every=7, capacity=4096)
    engine = FastPathEngine.attach(got, backend=backend)

    for seed in (3, 9):  # two batches: the counter must carry across
        ref_results = ref.process_batch(make_batch(70, seed=seed))
        got_results = got.process_batch(make_batch(70, seed=seed))
        assert_identical(ref, got, ref_results, got_results)

    assert ref.telemetry.snapshot() == got.telemetry.snapshot()
    ref_cards = [c.to_dict() for c in ref.telemetry.cards]
    got_cards = [c.to_dict() for c in got.telemetry.cards]
    assert ref_cards == got_cards
    assert got.telemetry.postcards_sampled > 0
    # Sampled packets really did take the oracle.
    assert engine.stats["interpreted_packets"] == got.telemetry.postcards_sampled


@pytest.mark.parametrize("backend", BACKENDS)
def test_trace_requests_route_to_interpreter(backend):
    """``trace=True`` batches must produce interpreter postcards."""
    ref = build_pipeline(stages=2)
    got = build_pipeline(stages=2)
    FastPathEngine.attach(got, backend=backend)
    ref_results = ref.process_batch(make_batch(8), trace=True)
    got_results = got.process_batch(make_batch(8), trace=True)
    assert_identical(ref, got, ref_results, got_results)
    for a, b in zip(ref_results, got_results):
        assert a.postcard is not None and b.postcard is not None
        assert a.postcard.to_dict() == b.postcard.to_dict()


@pytest.mark.parametrize("backend", BACKENDS)
def test_scalar_state_actions_stay_identical(backend):
    """``count``/``rate_limit`` mutate per-packet scratch state (token
    buckets, counters) and can drop or recirculate; the kernels call the
    real registered functions, so scratch, drops and REC must all match
    the oracle exactly (``result_key`` includes ``scratch``)."""

    def build():
        pl = SwitchPipeline(
            spec=SwitchSpec(stages=1, blocks_per_stage=4), max_passes=4
        )
        t = MatchActionTable(
            "limiter",
            key=[
                MatchField("tenant_id", MatchKind.EXACT),
                MatchField("dst_port", MatchKind.RANGE),
            ],
        )
        # Recirculates while charging a 2-token bucket: pass 3 finds the
        # bucket empty and drops mid-flight.
        t.insert(TableEntry(
            match={"tenant_id": 1, "dst_port": (101, 65535)},
            action="rate_limit", params={"burst": 2, "rec": True},
        ))
        t.insert(TableEntry(
            match={"tenant_id": 1, "dst_port": (0, 100)},
            action="count", params={"counter": "lo_ports"},
        ))
        pl.stage(0).install_table(t)
        return pl

    ref, got = build(), build()
    FastPathEngine.attach(got, backend=backend)
    gen = FlowGenerator(4)
    flows = gen.flows(16, tenant_id=1)
    ref_results = ref.process_batch(gen.packets(flows, 200, size_bytes=64))
    gen = FlowGenerator(4)
    flows = gen.flows(16, tenant_id=1)
    got_results = got.process_batch(gen.packets(flows, 200, size_bytes=64))
    assert any(r.packet.dropped for r in ref_results), "limiter never fired"
    assert any(
        r.packet.scratch.get("_counters") for r in ref_results
    ), "counter never fired"
    assert_identical(ref, got, ref_results, got_results)
