"""Recirculation overflow accounting.

A chain that still requests REC on its ``max_passes``-th traversal must be
counted as exactly one overflow, must not have its ``pass_id`` bumped past
the budget, and must report latency for the passes actually taken.
"""

from repro.core.spec import SwitchSpec
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import MatchActionTable, MatchField, MatchKind, TableEntry


def _pipeline(max_passes: int) -> SwitchPipeline:
    pl = SwitchPipeline(spec=SwitchSpec(stages=2), max_passes=max_passes)
    t = MatchActionTable("rec", key=[MatchField("protocol", MatchKind.EXACT)])
    # Every TCP packet asks to recirculate, on every pass, forever.
    t.insert(TableEntry(match={"protocol": 6}, action="no_op", params={"rec": True}))
    pl.stage(0).install_table(t)
    return pl


def test_overflow_counted_exactly_once_per_packet():
    pl = _pipeline(max_passes=3)
    result = pl.process(Packet(protocol=6))
    assert result.passes == 3
    assert pl.recirculation_overflows == 1


def test_overflow_leaves_pass_id_unbumped():
    pl = _pipeline(max_passes=3)
    result = pl.process(Packet(protocol=6))
    # pass_id was bumped entering passes 2 and 3; the REC requested *at*
    # max_passes is refused, so the counter stays at the budget.
    assert result.packet.pass_id == 3
    assert result.packet.recirculate  # the unserved request is still visible


def test_overflow_latency_covers_passes_actually_taken():
    pl = _pipeline(max_passes=3)
    result = pl.process(Packet(protocol=6))
    assert result.latency_ns == pl.latency_model.latency_ns(passes=3)
    # Strictly more than a single-pass packet would have paid.
    assert result.latency_ns > pl.latency_model.latency_ns(passes=1)


def test_overflow_accumulates_across_packets():
    pl = _pipeline(max_passes=2)
    batch = [Packet(protocol=6) for _ in range(5)]
    results = pl.process_batch(batch)
    assert pl.recirculation_overflows == 5
    assert all(r.passes == 2 for r in results)


def test_chain_within_budget_does_not_overflow():
    pl = _pipeline(max_passes=2)
    # UDP never matches the REC rule: single pass, no overflow.
    result = pl.process(Packet(protocol=17))
    assert result.passes == 1
    assert pl.recirculation_overflows == 0
    assert result.packet.pass_id == 1


def test_rec_consumed_on_final_pass_is_not_an_overflow():
    pl = SwitchPipeline(spec=SwitchSpec(stages=2), max_passes=2)
    t = MatchActionTable(
        "rec",
        key=[
            MatchField("pass_id", MatchKind.EXACT),
            MatchField("protocol", MatchKind.EXACT),
        ],
    )
    # Recirculates on pass 1 only; pass 2 runs clean.
    t.insert(
        TableEntry(
            match={"pass_id": 1, "protocol": 6}, action="no_op", params={"rec": True}
        )
    )
    pl.stage(0).install_table(t)
    result = pl.process(Packet(protocol=6))
    assert result.passes == 2
    assert result.packet.pass_id == 2
    assert pl.recirculation_overflows == 0
