"""Generators and twin-table runner for the lookup differential tests.

Everything random is drawn from an explicit :class:`numpy.random.Generator`
(via :func:`repro.rng.make_rng`), so a failing case reproduces from its seed
alone.  Value pools are deliberately small and overlapping: packets must
collide with entries often enough that hits, ties, and LPM specificity
races are all exercised, not just misses.
"""

from __future__ import annotations

from repro.dataplane.packet import Packet
from repro.dataplane.table import (
    MatchActionTable,
    MatchField,
    MatchKind,
    TableEntry,
)
from repro.rng import make_rng

#: The SFP-shaped key: virtualization's (tenant, pass) exact prefix, then a
#: ternary, an LPM, a range, and another exact field — every match kind.
KEY = (
    MatchField("tenant_id", MatchKind.EXACT),
    MatchField("pass_id", MatchKind.EXACT),
    MatchField("src_ip", MatchKind.TERNARY),
    MatchField("dst_ip", MatchKind.LPM),
    MatchField("dst_port", MatchKind.RANGE),
    MatchField("protocol", MatchKind.EXACT),
)

#: Small overlapping pools so random entries/packets actually collide.
TENANTS = (1, 2, 3)
PASSES = (1, 2)
IP_BASES = (0x0A000000, 0x0A0A0000, 0xC0A80000)
TERNARY_MASKS = (0, 0xFF000000, 0xFFFF0000, 0xFFFFFFFF)
LPM_LENGTHS = (0, 8, 16, 24, 32)
PROTOCOLS = (6, 17)
ACTIONS = ("permit", "drop", "no_op")


def _ip(rng) -> int:
    return int(rng.choice(IP_BASES)) + int(rng.integers(0, 1 << 16))


def random_entry(rng) -> TableEntry:
    """One random rule over :data:`KEY`; each field independently present."""
    match: dict[str, object] = {}
    if rng.random() < 0.8:
        match["tenant_id"] = int(rng.choice(TENANTS))
    if rng.random() < 0.8:
        match["pass_id"] = int(rng.choice(PASSES))
    if rng.random() < 0.5:
        match["src_ip"] = (_ip(rng), int(rng.choice(TERNARY_MASKS)))
    if rng.random() < 0.5:
        match["dst_ip"] = (_ip(rng), int(rng.choice(LPM_LENGTHS)))
    if rng.random() < 0.4:
        lo = int(rng.integers(0, 1024))
        match["dst_port"] = (lo, lo + int(rng.integers(0, 1024)))
    if rng.random() < 0.4:
        match["protocol"] = int(rng.choice(PROTOCOLS))
    return TableEntry(
        match=match,
        action=str(rng.choice(ACTIONS)),
        params={"tag": int(rng.integers(0, 8))},
        priority=int(rng.integers(0, 4)),
    )


def random_packet(rng) -> Packet:
    """A packet drawn from the same pools the entries match on."""
    return Packet(
        tenant_id=int(rng.choice(TENANTS)),
        pass_id=int(rng.choice(PASSES)),
        src_ip=_ip(rng),
        dst_ip=_ip(rng),
        dst_port=int(rng.integers(0, 2048)),
        protocol=int(rng.choice(PROTOCOLS)),
    )


class TwinTables:
    """An indexed table and its linear-scan oracle, mutated in lockstep.

    Every entry object is shared by both tables, so agreement is checked by
    *identity*, the strictest possible form: the engines must pick the very
    same installed rule, not merely an equal-looking one.
    """

    def __init__(self, key=KEY, max_entries: int | None = None) -> None:
        self.fast = MatchActionTable("fast", key=key, max_entries=max_entries)
        self.oracle = MatchActionTable(
            "oracle", key=key, max_entries=max_entries, indexed=False
        )
        self.live: list[TableEntry] = []

    # -- mirrored mutations ------------------------------------------------
    def insert(self, entry: TableEntry) -> None:
        self.fast.insert(entry)
        self.oracle.insert(entry)
        self.live.append(entry)

    def insert_many(self, entries) -> None:
        entries = list(entries)
        self.fast.insert_many(entries)
        self.oracle.insert_many(entries)
        self.live.extend(entries)

    def delete(self, entry: TableEntry) -> None:
        self.fast.delete(entry)
        self.oracle.delete(entry)
        self.live.remove(entry)

    def delete_where(self, **match_fields) -> int:
        removed_fast = self.fast.delete_where(**match_fields)
        removed_oracle = self.oracle.delete_where(**match_fields)
        assert removed_fast == removed_oracle
        self.live = list(self.oracle.entries)
        return removed_fast

    def snapshot_restore_roundtrip(self) -> None:
        """Restore both tables from their own snapshots (index rebuild)."""
        self.fast.restore(self.fast.snapshot())
        self.oracle.restore(self.oracle.snapshot())

    # -- the differential check --------------------------------------------
    def check_lookup(self, packet: Packet) -> None:
        fast_entry, fast_action, fast_params = self.fast.lookup(packet)
        ref_entry, ref_action, ref_params = self.oracle.lookup(packet)
        assert fast_entry is ref_entry, (
            f"winner divergence for {packet}:\n"
            f"  indexed -> {fast_entry}\n  oracle  -> {ref_entry}"
        )
        assert fast_action == ref_action
        assert fast_params == ref_params
        assert (self.fast.hits, self.fast.misses) == (
            self.oracle.hits,
            self.oracle.misses,
        ), "hit/miss counter divergence"

    def check_many(self, rng, num_packets: int) -> int:
        for _ in range(num_packets):
            self.check_lookup(random_packet(rng))
        return num_packets


def run_random_case(seed: int, num_entries: int = 24, num_packets: int = 20) -> int:
    """One self-contained differential case; returns lookups compared.

    Phase 1: bulk insert, lookups.  Phase 2: interleaved deletes/inserts
    with lookups after each mutation.  Phase 3: per-tenant teardown
    (``delete_where``) plus a snapshot/restore round-trip, then lookups.
    """
    rng = make_rng(seed)
    twins = TwinTables()
    compared = 0

    entries = [random_entry(rng) for _ in range(num_entries)]
    twins.insert_many(entries)
    compared += twins.check_many(rng, num_packets)

    for _ in range(num_entries // 2):
        if twins.live and rng.random() < 0.5:
            victim = twins.live[int(rng.integers(0, len(twins.live)))]
            twins.delete(victim)
        else:
            twins.insert(random_entry(rng))
        compared += twins.check_many(rng, 2)

    twins.delete_where(tenant_id=int(rng.choice(TENANTS)))
    twins.snapshot_restore_roundtrip()
    compared += twins.check_many(rng, num_packets)
    return compared
