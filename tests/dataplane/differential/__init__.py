"""Differential-testing package: indexed fast path vs. linear-scan oracle.

The harness here generates random tables, entries, packets, and mutation
sequences (seeded through :mod:`repro.rng`) and asserts the indexed lookup
engine is observationally identical to the reference linear scan — winners,
actions, params, and hit/miss counters alike.
"""
