"""Tests for the §VI-A SFC dataset generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.traffic.workload import WorkloadConfig, make_instance, make_sfcs


class TestConfigValidation:
    def test_defaults_match_paper(self):
        cfg = WorkloadConfig()
        assert cfg.num_types == 10
        assert cfg.rules_min == 100 and cfg.rules_max == 2100
        assert cfg.avg_chain_length == 5

    def test_chain_longer_than_catalog_rejected(self):
        # Types are sampled without replacement -> length <= num_types.
        with pytest.raises(WorkloadError):
            WorkloadConfig(num_types=4, avg_chain_length=5, chain_length_spread=0)

    def test_length_below_one_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(avg_chain_length=2, chain_length_spread=2)

    def test_rules_range_validated(self):
        with pytest.raises(WorkloadError):
            WorkloadConfig(rules_min=100, rules_max=50)

    def test_with_num_sfcs(self):
        cfg = WorkloadConfig(num_sfcs=5).with_num_sfcs(9)
        assert cfg.num_sfcs == 9


class TestGeneration:
    def test_count_and_names(self):
        sfcs = make_sfcs(WorkloadConfig(num_sfcs=7), rng=1)
        assert len(sfcs) == 7
        assert len({s.name for s in sfcs}) == 7

    def test_rules_within_paper_range(self):
        sfcs = make_sfcs(WorkloadConfig(num_sfcs=40), rng=1)
        rules = [r for s in sfcs for r in s.rules]
        assert min(rules) >= 100 and max(rules) <= 2100

    def test_chain_lengths_within_spread(self):
        cfg = WorkloadConfig(num_sfcs=60, avg_chain_length=5, chain_length_spread=2)
        lengths = [s.length for s in make_sfcs(cfg, rng=2)]
        assert min(lengths) >= 3 and max(lengths) <= 7

    def test_fixed_length_mode(self):
        cfg = WorkloadConfig(num_sfcs=20, avg_chain_length=8, chain_length_spread=0)
        assert all(s.length == 8 for s in make_sfcs(cfg, rng=3))

    def test_types_within_chain_distinct(self):
        sfcs = make_sfcs(WorkloadConfig(num_sfcs=50), rng=4)
        for sfc in sfcs:
            assert len(set(sfc.nf_types)) == sfc.length

    def test_types_within_catalog(self):
        cfg = WorkloadConfig(num_sfcs=30, num_types=6, avg_chain_length=4,
                             chain_length_spread=1)
        for sfc in make_sfcs(cfg, rng=5):
            assert all(1 <= t <= 6 for t in sfc.nf_types)

    def test_bandwidth_long_tail(self):
        sfcs = make_sfcs(WorkloadConfig(num_sfcs=4000), rng=6)
        bw = np.array([s.bandwidth_gbps for s in sfcs])
        assert bw.mean() > np.median(bw)
        assert bw.min() >= WorkloadConfig().min_bandwidth_gbps

    def test_seeded_determinism(self):
        a = make_sfcs(WorkloadConfig(num_sfcs=10), rng=42)
        b = make_sfcs(WorkloadConfig(num_sfcs=10), rng=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = make_sfcs(WorkloadConfig(num_sfcs=10), rng=1)
        b = make_sfcs(WorkloadConfig(num_sfcs=10), rng=2)
        assert a != b


class TestMakeInstance:
    def test_paper_default_switch(self):
        inst = make_instance(WorkloadConfig(num_sfcs=5), rng=1)
        assert inst.switch.stages == 8
        assert inst.switch.blocks_per_stage == 20
        assert inst.switch.entries_per_block == 1000
        assert inst.max_recirculations == 2
        assert inst.num_sfcs == 5

    def test_custom_switch_passed_through(self):
        from repro.core.spec import SwitchSpec

        switch = SwitchSpec(stages=4)
        inst = make_instance(WorkloadConfig(num_sfcs=2), switch=switch, rng=1)
        assert inst.switch.stages == 4
