"""Tests for trace synthesis, persistence, and replay."""

import pytest

from repro.core.spec import SwitchSpec
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.errors import WorkloadError
from repro.nfs import install_physical_nf
from repro.traffic import (
    FlowGenerator,
    PacketSizeMix,
    Trace,
    TraceRecord,
    replay,
    synthesize_trace,
    trace_from_generator,
)


@pytest.fixture()
def flows():
    return FlowGenerator(1).flows(8, tenant_id=1)


class TestSynthesis:
    def test_records_ordered_in_time(self, flows):
        trace = synthesize_trace(flows, 10.0, duration_ms=0.1, size_bytes=64, rng=1)
        times = [r.timestamp_ns for r in trace]
        assert times == sorted(times)
        assert len(trace) > 10

    def test_offered_load_close_to_target(self, flows):
        trace = synthesize_trace(flows, 20.0, duration_ms=1.0, size_bytes=512, rng=2)
        assert trace.offered_gbps() == pytest.approx(20.0, rel=0.15)

    def test_size_mix_sampling(self, flows):
        mix = PacketSizeMix()
        trace = synthesize_trace(flows, 10.0, duration_ms=0.05, size_mix=mix, rng=3)
        assert {r.size_bytes for r in trace} <= set(mix.sizes)

    def test_validation(self, flows):
        with pytest.raises(WorkloadError):
            synthesize_trace([], 10.0, size_bytes=64)
        with pytest.raises(WorkloadError):
            synthesize_trace(flows, 10.0)  # no size spec
        with pytest.raises(WorkloadError):
            synthesize_trace(flows, 10.0, size_bytes=64, size_mix=PacketSizeMix())
        with pytest.raises(WorkloadError):
            synthesize_trace(flows, -1.0, size_bytes=64)

    def test_determinism(self, flows):
        a = synthesize_trace(flows, 10.0, duration_ms=0.05, size_bytes=64, rng=7)
        b = synthesize_trace(flows, 10.0, duration_ms=0.05, size_bytes=64, rng=7)
        assert a.records == b.records

    def test_multi_tenant_convenience(self):
        trace = trace_from_generator({1: 4, 2: 4}, 10.0, duration_ms=0.1, rng=1)
        tenants = {r.tenant_id for r in trace}
        assert tenants == {1, 2}


class TestPersistence:
    def test_save_load_roundtrip(self, flows, tmp_path):
        trace = synthesize_trace(flows, 10.0, duration_ms=0.05, size_bytes=64, rng=1)
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.records == trace.records

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        with pytest.raises(WorkloadError):
            Trace.load(path)

    def test_load_skips_blank_lines(self, tmp_path):
        record = TraceRecord(0.0, 1, 2, 3, 4, 5, 6, 64)
        path = tmp_path / "trace.jsonl"
        trace = Trace([record])
        trace.save(path)
        path.write_text(path.read_text() + "\n\n")
        assert len(Trace.load(path)) == 1


class TestReplay:
    def _pipeline(self):
        pl = SwitchPipeline(spec=SwitchSpec(stages=1, blocks_per_stage=4))
        install_physical_nf(pl, "firewall", 0)
        SFCVirtualizer(pl).install_sfc(
            LogicalSFC(
                tenant_id=1,
                nfs=(
                    LogicalNF(
                        "firewall",
                        (
                            TableEntry(match={"dst_port": (23, 23)}, action="drop",
                                       priority=10),
                            TableEntry(match={}, action="permit"),
                        ),
                    ),
                ),
            )
        )
        return pl

    def test_replay_stats(self, flows):
        trace = synthesize_trace(flows, 10.0, duration_ms=0.05, size_bytes=64, rng=1)
        stats = replay(trace, self._pipeline())
        assert stats.packets == len(trace)
        assert stats.delivered + stats.dropped == stats.packets
        assert stats.latency_ns_mean > 0
        assert stats.latency_ns_p99 >= stats.latency_ns_p50
        assert 0 < stats.delivery_ratio <= 1.0

    def test_acl_drops_show_up(self):
        from repro.traffic.flows import Flow

        telnet = Flow(tenant_id=1, src_ip=1, dst_ip=2, src_port=3, dst_port=23)
        trace = synthesize_trace([telnet], 5.0, duration_ms=0.02, size_bytes=64, rng=1)
        stats = replay(trace, self._pipeline())
        assert stats.delivered == 0
        assert stats.dropped == stats.packets

    def test_empty_trace_rejected(self):
        with pytest.raises(WorkloadError):
            replay(Trace([]), self._pipeline())

    def test_achieved_tracks_offered_when_unconstrained(self, flows):
        trace = synthesize_trace(flows, 10.0, duration_ms=0.2, size_bytes=512, rng=4)
        stats = replay(trace, self._pipeline())
        # All packets delivered; achieved (payload-only) sits below the
        # wire-rate offered figure but in the same ballpark.
        assert stats.delivery_ratio == 1.0
        assert 0.5 * trace.offered_gbps() < stats.achieved_gbps <= trace.offered_gbps()
