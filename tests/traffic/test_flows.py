"""Tests for flow/packet generation."""

import pytest

from repro.errors import WorkloadError
from repro.traffic.distributions import PacketSizeMix
from repro.traffic.flows import Flow, FlowGenerator


def test_flow_make_packet_carries_tenant():
    flow = Flow(tenant_id=5, src_ip=1, dst_ip=2, src_port=3, dst_port=4)
    packet = flow.make_packet(128)
    assert packet.tenant_id == 5
    assert packet.size_bytes == 128
    assert packet.five_tuple() == (1, 2, 3, 4, 6)


def test_flows_count_and_tenant():
    flows = FlowGenerator(1).flows(10, tenant_id=3)
    assert len(flows) == 10
    assert all(f.tenant_id == 3 for f in flows)
    # Private address space.
    assert all(0x0A000000 <= f.src_ip < 0x0B000000 for f in flows)


def test_flows_negative_count_rejected():
    with pytest.raises(WorkloadError):
        FlowGenerator(1).flows(-1)


def test_packets_fixed_size():
    gen = FlowGenerator(1)
    flows = gen.flows(4)
    packets = gen.packets(flows, 20, size_bytes=256)
    assert len(packets) == 20
    assert all(p.size_bytes == 256 for p in packets)


def test_packets_from_size_mix():
    gen = FlowGenerator(1)
    flows = gen.flows(4)
    mix = PacketSizeMix()
    packets = gen.packets(flows, 200, size_mix=mix)
    assert set(p.size_bytes for p in packets) <= set(mix.sizes)


def test_packets_need_exactly_one_size_spec():
    gen = FlowGenerator(1)
    flows = gen.flows(2)
    with pytest.raises(WorkloadError):
        gen.packets(flows, 5)
    with pytest.raises(WorkloadError):
        gen.packets(flows, 5, size_bytes=64, size_mix=PacketSizeMix())


def test_packets_need_flows():
    with pytest.raises(WorkloadError):
        FlowGenerator(1).packets([], 5, size_bytes=64)


def test_generator_determinism():
    a = FlowGenerator(7).flows(5)
    b = FlowGenerator(7).flows(5)
    assert a == b
