"""Tests for workload distributions (long-tail bandwidth, packet-size mix)."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.traffic.distributions import (
    PacketSizeMix,
    lognormal_bandwidth,
    pareto_bandwidth,
)


class TestLognormalBandwidth:
    def test_bounds_respected(self):
        draws = lognormal_bandwidth(1, 1000, min_gbps=1.0, max_gbps=50.0)
        assert draws.min() >= 1.0 and draws.max() <= 50.0

    def test_mean_close_to_target(self):
        draws = lognormal_bandwidth(1, 50_000, mean_gbps=6.0, sigma=0.8,
                                    min_gbps=0.01, max_gbps=1e6)
        assert draws.mean() == pytest.approx(6.0, rel=0.05)

    def test_long_tail_shape(self):
        draws = lognormal_bandwidth(1, 20_000, mean_gbps=6.0)
        # Heavy tail: mean well above median.
        assert draws.mean() > np.median(draws)

    def test_seeded_determinism(self):
        a = lognormal_bandwidth(9, 10)
        b = lognormal_bandwidth(9, 10)
        np.testing.assert_array_equal(a, b)

    def test_invalid_parameters(self):
        with pytest.raises(WorkloadError):
            lognormal_bandwidth(1, -1)
        with pytest.raises(WorkloadError):
            lognormal_bandwidth(1, 10, mean_gbps=0)
        with pytest.raises(WorkloadError):
            lognormal_bandwidth(1, 10, min_gbps=5, max_gbps=1)


class TestParetoBandwidth:
    def test_bounds(self):
        draws = pareto_bandwidth(1, 1000, scale_gbps=2.0, max_gbps=40.0)
        assert draws.min() >= 2.0 and draws.max() <= 40.0

    def test_heavy_tail(self):
        draws = pareto_bandwidth(1, 20_000, shape=1.5)
        assert draws.mean() > np.median(draws)

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            pareto_bandwidth(1, 10, shape=0)
        with pytest.raises(WorkloadError):
            pareto_bandwidth(1, -2)


class TestPacketSizeMix:
    def test_default_is_bimodal(self):
        mix = PacketSizeMix()
        probs = mix.probabilities
        # Most mass at the extremes (IMC'10 shape).
        assert probs[0] + probs[-1] > 0.6

    def test_probabilities_normalized(self):
        assert PacketSizeMix().probabilities.sum() == pytest.approx(1.0)

    def test_mean_bytes(self):
        mix = PacketSizeMix(sizes=(100, 200), weights=(1.0, 1.0))
        assert mix.mean_bytes == pytest.approx(150.0)

    def test_sample_values_from_support(self):
        mix = PacketSizeMix()
        draws = mix.sample(3, 500)
        assert set(np.unique(draws)) <= set(mix.sizes)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PacketSizeMix(sizes=(64,), weights=(0.5, 0.5))
        with pytest.raises(WorkloadError):
            PacketSizeMix(sizes=(64,), weights=(-1.0,))
        with pytest.raises(WorkloadError):
            PacketSizeMix(sizes=(0,), weights=(1.0,))
