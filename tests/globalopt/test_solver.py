"""Solver behaviour: determinism, mode dispatch, defragmentation against
live usage, constraint compliance, and the balance pass."""

import pytest

from repro.globalopt.model import ConstraintSet, snapshot_fabric
from repro.globalopt.solver import solve_global, solve_greedy, solve_ilp

from .conftest import chain, make_fabric


def _stitched_plans(solution, model):
    return {
        tid for tid, plan in solution.plans.items() if plan.stitched
    }


class TestModes:
    def test_bad_mode_raises(self, fragmented):
        fabric, _ = fragmented
        model = snapshot_fabric(fabric)
        with pytest.raises(ValueError, match="unknown solve mode"):
            solve_global(model, mode="simulated-annealing")

    def test_auto_picks_ilp_for_small_fleets(self, fragmented):
        fabric, _ = fragmented
        model = snapshot_fabric(fabric)
        assert solve_global(model, mode="auto").mode == "ilp"
        assert solve_global(model, mode="greedy").mode == "greedy"
        assert solve_global(model, mode="ilp").mode == "ilp"

    def test_empty_fleet_solves_to_nothing(self):
        model = snapshot_fabric(make_fabric())
        solution = solve_global(model, mode="auto")
        assert solution.plans == {}


class TestGreedy:
    def test_unstitches_the_fragmented_fleet(self, fragmented):
        fabric, stitched = fragmented
        model = snapshot_fabric(fabric)
        solution = solve_greedy(model)
        for tenant_id in stitched:
            plan = solution.plans[tenant_id]
            assert not plan.stitched
            # Stay-home preference: the target is one of the switches the
            # tenant already half-occupies (cheapest make-before-break).
            assert plan.switches[0] in model.current[tenant_id].switches

    def test_settled_single_home_tenants_stay_put(self, fragmented):
        fabric, stitched = fragmented
        model = snapshot_fabric(fabric)
        solution = solve_greedy(model)
        for tenant_id, current in model.current.items():
            if tenant_id in stitched:
                continue
            assert solution.plans[tenant_id] == current

    def test_deterministic_across_calls(self, fragmented):
        fabric, _ = fragmented
        model = snapshot_fabric(fabric)
        a = solve_greedy(model)
        b = solve_greedy(model)
        assert a.plans == b.plans
        assert a.kept == b.kept

    def test_pin_forces_the_target(self, fragmented):
        fabric, stitched = fragmented
        model = snapshot_fabric(fabric)
        tenant_id = stitched[0]
        cs = ConstraintSet(pins=((tenant_id, "sw2"),))
        solution = solve_greedy(model, cs)
        plan = solution.plans[tenant_id]
        assert "sw2" in plan.switches

    def test_forbid_excludes_the_switch(self, fragmented):
        fabric, stitched = fragmented
        model = snapshot_fabric(fabric)
        tenant_id = stitched[0]
        forbidden = set(model.current[tenant_id].switches)
        cs = ConstraintSet(
            forbids=tuple((tenant_id, s) for s in sorted(forbidden))
        )
        solution = solve_greedy(model, cs)
        plan = solution.plans[tenant_id]
        if plan != model.current[tenant_id]:  # kept counts as no move
            assert not set(plan.switches) & forbidden

    def test_full_fleet_keeps_stitched_tenants(self):
        """With zero headroom anywhere the stitched tenants stay stitched
        (kept), never dropped."""
        fabric = make_fabric()
        tenant_id = 1
        while True:
            ok = fabric.admit(
                chain(tenant_id, nf_types=(1,), rules=(1,), bandwidth_gbps=7.2)
            ).ok
            if not ok:
                break
            tenant_id += 1
        for k in range(4):
            fabric.admit(
                chain(
                    500 + k, nf_types=(1, 2, 3, 4, 5), rules=(4,) * 5,
                    bandwidth_gbps=2.0,
                )
            )
        # No fillers evicted: nothing can be consolidated.
        model = snapshot_fabric(fabric)
        stitched = [t for t, p in model.current.items() if p.stitched]
        assert stitched
        solution = solve_greedy(model)
        assert set(solution.kept) == set(stitched)
        for tenant_id in stitched:
            assert solution.plans[tenant_id] == model.current[tenant_id]


class TestBalancePass:
    def test_hot_switch_sheds_load_to_the_cold_one(self):
        """All tenants piled on one switch via a modulo-free hash trick:
        admit to a 2-switch fabric where one switch is drained, undrain,
        and let the solver's balance pass spread the load."""
        fabric = make_fabric(num_switches=2)
        fabric.drain("sw1")
        for t in range(1, 7):
            assert fabric.admit(
                chain(t, nf_types=(1,), rules=(2,), bandwidth_gbps=6.0)
            ).ok
        fabric.undrain("sw1")
        model = snapshot_fabric(fabric)
        assert all(
            plan.switches == ("sw0",) for plan in model.current.values()
        )
        solution = solve_greedy(model)
        moved = [
            tid
            for tid, plan in solution.plans.items()
            if plan.switches == ("sw1",)
        ]
        assert moved, "balance pass never moved anything off the hot switch"
        assert any("balance:" in note for note in solution.notes)


class TestIlp:
    def test_ilp_unstitches_and_reports_status(self, fragmented):
        fabric, stitched = fragmented
        model = snapshot_fabric(fabric)
        solution = solve_ilp(model)
        assert solution is not None
        assert solution.ilp_status is not None
        for tenant_id in stitched:
            assert not solution.plans[tenant_id].stitched

    def test_ilp_respects_tenant_separation(self, fragmented):
        fabric, stitched = fragmented
        model = snapshot_fabric(fabric)
        a, b = stitched[0], stitched[1]
        solution = solve_ilp(model, ConstraintSet(separate_tenants=((a, b),)))
        assert solution is not None
        shared = set(solution.plans[a].switches) & set(
            solution.plans[b].switches
        )
        assert not shared

    def test_every_tenant_remains_placed(self, fragmented):
        fabric, _ = fragmented
        model = snapshot_fabric(fabric)
        for mode in ("ilp", "greedy"):
            solution = solve_global(model, mode=mode)
            assert sorted(solution.plans) == sorted(model.tenants)
