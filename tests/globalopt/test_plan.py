"""Planner gates: cost/benefit filtering, move caps, benefit-ordered
headroom-proved emission, and step classification."""

from repro.globalopt.model import (
    ConstraintSet,
    TenantPlan,
    Usage,
    snapshot_fabric,
)
from repro.globalopt.plan import MigrationStep, build_plan
from repro.globalopt.solver import GlobalSolution, solve_greedy

from .conftest import make_fabric


def _solved(fragmented):
    fabric, stitched = fragmented
    model = snapshot_fabric(fabric)
    return fabric, stitched, model, solve_greedy(model)


class TestGates:
    def test_unstitch_steps_survive_the_default_gate(self, fragmented):
        _fabric, stitched, model, solution = _solved(fragmented)
        plan = build_plan(model, solution)
        assert {s.tenant_id for s in plan.steps} >= set(stitched)
        for step in plan.steps:
            assert step.benefit >= 0.5
            assert step.kind == "unstitch"

    def test_high_min_benefit_gates_everything(self, fragmented):
        _fabric, _stitched, model, solution = _solved(fragmented)
        plan = build_plan(model, solution, min_benefit=1e9)
        assert plan.steps == ()
        assert plan.skipped
        assert all(reason == "low-yield" for _s, reason in plan.skipped)

    def test_move_cap_truncates_the_plan(self, fragmented):
        _fabric, _stitched, model, solution = _solved(fragmented)
        full = build_plan(model, solution)
        assert len(full.steps) >= 2
        capped = build_plan(model, solution, max_moves=1)
        assert len(capped.steps) == 1
        reasons = {reason for _s, reason in capped.skipped}
        assert "move-cap" in reasons

    def test_no_delta_no_steps(self, fragmented):
        fabric, _stitched, model, _solution = _solved(fragmented)
        identity = GlobalSolution(plans=dict(model.current))
        plan = build_plan(model, identity)
        assert plan.steps == ()
        assert plan.skipped == ()

    def test_infeasible_target_is_skipped_as_no_headroom(self, fragmented):
        """A hand-forged solution that single-homes a stitched tenant onto
        a switch with no backplane headroom must be gated, not emitted."""
        _fabric, stitched, model, _solution = _solved(fragmented)
        tenant_id = stitched[0]
        current = model.current[tenant_id]
        # Pick a switch the tenant does not occupy: its old charges are
        # not discounted there, and the fillers keep it nearly full.
        others = [s for s in model.active if s not in current.switches]
        target = TenantPlan(tenant_id=tenant_id, switches=(others[0],))
        forged = GlobalSolution(plans={**model.current, tenant_id: target})
        plan = build_plan(model, forged, min_benefit=0.0)
        skipped = {s.tenant_id: r for s, r in plan.skipped}
        emitted = {s.tenant_id for s in plan.steps}
        assert tenant_id in skipped or tenant_id in emitted
        if tenant_id in skipped:
            assert skipped[tenant_id] in ("no-headroom", "low-yield")


class TestOrdering:
    def test_emission_is_benefit_sorted_and_transient_proved(self, fragmented):
        _fabric, _stitched, model, solution = _solved(fragmented)
        constraints = ConstraintSet()
        plan = build_plan(model, solution)
        benefits = [step.benefit for step in plan.steps]
        assert benefits == sorted(benefits, reverse=True)
        # Replaying the emitted order against a fresh usage clone proves
        # every intermediate state fits (the planner's own invariant).
        usage = Usage.from_current(model)
        for step in plan.steps:
            assert usage.plan_fits(step.target, constraints) or any(
                s in step.current.switches for s in step.target.switches
            )
            usage.release(step.current)
            usage.charge(step.target)

    def test_plan_summary_counts(self, fragmented):
        _fabric, _stitched, model, solution = _solved(fragmented)
        plan = build_plan(model, solution)
        summary = plan.summary()
        assert summary["moves_planned"] == len(plan.steps)
        assert summary["unstitches"] == sum(
            1 for s in plan.steps if s.kind == "unstitch"
        )
        assert summary["total_benefit"] > 0


class TestStepKinds:
    def _step(self, current_switches, target_switches):
        current = TenantPlan(
            tenant_id=1, switches=current_switches,
            split=1 if len(current_switches) > 1 else 0,
        )
        target = TenantPlan(
            tenant_id=1, switches=target_switches,
            split=1 if len(target_switches) > 1 else 0,
        )
        return MigrationStep(
            tenant_id=1, current=current, target=target, benefit=1.0, cost=0.0
        )

    def test_kind_classification(self):
        assert self._step(("a", "b"), ("a",)).kind == "unstitch"
        assert self._step(("a",), ("a", "b")).kind == "stitch"
        assert self._step(("a",), ("b",)).kind == "move"
        assert self._step(("a", "b"), ("a", "c")).kind == "move"
        assert self._step(("a", "b"), ("a", "b")).kind == "restitch"
