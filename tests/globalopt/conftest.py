"""Shared fixtures for the global re-optimizer suite: a tight 4-switch
fabric and the deterministic fragmentation recipe (fillers to the
bandwidth brim, long chains that must stitch, one filler evicted per
switch so re-optimization has room to consolidate)."""

import pytest

from repro.core.spec import SFC, SwitchSpec
from repro.fabric import FabricOrchestrator, FabricTopology

#: 8 fillers per switch = 57.6 of 60 Gbps: the 2.4 Gbps left is less than
#: the 4.0 Gbps a len-5 chain needs single-home (two passes) but more than
#: the 2.0 Gbps each stitched half needs (one pass each).
FILLER_BW = 7.2


def chain(
    tenant_id: int,
    nf_types=(1, 2, 3),
    rules=(10, 10, 10),
    bandwidth_gbps: float = 1.0,
) -> SFC:
    """A small deterministic chain request for tenant ``tenant_id``."""
    return SFC(
        name=f"tenant-{tenant_id}",
        nf_types=tuple(nf_types),
        rules=tuple(rules),
        bandwidth_gbps=bandwidth_gbps,
        tenant_id=tenant_id,
    )


def make_fabric(
    num_switches: int = 4, with_dataplane: bool = False, **kwargs
) -> FabricOrchestrator:
    """The durability sweep's fabric: 4 stages x 6 blocks, 60 Gbps."""
    spec = SwitchSpec(
        stages=4,
        blocks_per_stage=6,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=60.0,
    )
    topology = FabricTopology.full_mesh(
        num_switches, spec=spec, link_capacity_gbps=100.0, max_recirculations=1
    )
    return FabricOrchestrator(
        topology, num_types=6, with_dataplane=with_dataplane, **kwargs
    )


def fragment(fabric: FabricOrchestrator) -> list[int]:
    """Deterministically fragment the fleet; returns the ids of the long
    chains that were admitted stitched."""
    fillers = []
    tenant_id = 1
    while True:
        result = fabric.admit(
            chain(tenant_id, nf_types=(1,), rules=(1,), bandwidth_gbps=FILLER_BW)
        )
        if not result.ok:
            break
        fillers.append((tenant_id, result.switches[0]))
        tenant_id += 1
    stitched = []
    for k in range(4):
        result = fabric.admit(
            chain(
                500 + k,
                nf_types=(1, 2, 3, 4, 5),
                rules=(4,) * 5,
                bandwidth_gbps=2.0,
            )
        )
        if result.ok and len(result.switches) > 1:
            stitched.append(500 + k)
    seen: set[str] = set()
    for filler_id, switch in fillers:
        if switch not in seen:
            seen.add(switch)
            fabric.evict(filler_id)
    return stitched


@pytest.fixture
def fragmented():
    """A control-plane-only fragmented fleet and its stitched tenant ids."""
    fabric = make_fabric()
    stitched = fragment(fabric)
    assert len(stitched) >= 2
    return fabric, stitched
