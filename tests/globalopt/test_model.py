"""Snapshot fidelity, constraint families, usage accounting, and the
multi-hop router."""

from repro.fabric.topology import link_key
from repro.globalopt.model import (
    ConstraintSet,
    FabricModel,
    SwitchModel,
    TenantFootprint,
    TenantPlan,
    Usage,
    route,
    snapshot_fabric,
)

from .conftest import chain, make_fabric


class TestSnapshot:
    def test_switches_mirror_topology_and_shard_actuals(self):
        fabric = make_fabric()
        for t in range(1, 6):
            assert fabric.admit(chain(t)).ok
        model = snapshot_fabric(fabric)
        assert sorted(model.switches) == fabric.topology.switch_names
        for name, sw in model.switches.items():
            shard = fabric.shards[name]
            spec = fabric.topology.nodes[name].spec
            assert sw.stages == spec.stages
            assert sw.total_blocks == spec.stages * spec.blocks_per_stage
            assert sw.used_blocks == sum(
                shard.state.blocks_at_stage(s) for s in range(spec.stages)
            )
            assert sw.used_backplane_gbps == shard.state.backplane_gbps
        for key, link in fabric.links.items():
            assert model.link_capacity[key] == link.capacity_gbps
            assert model.link_load[key] == link.load_gbps

    def test_tenants_and_current_plans_round_trip(self, fragmented):
        fabric, stitched = fragmented
        model = snapshot_fabric(fabric)
        assert sorted(model.tenants) == sorted(fabric.tenants)
        for tenant_id, record in fabric.tenants.items():
            foot = model.tenants[tenant_id]
            assert foot.nf_types == tuple(record.sfc.nf_types)
            assert foot.rules == tuple(record.sfc.rules)
            plan = model.current[tenant_id]
            assert plan.switches == tuple(
                seg.switch for seg in record.segments
            )
            assert plan.stitched == (len(record.segments) > 1)
        for tenant_id in stitched:
            plan = model.current[tenant_id]
            assert plan.stitched
            assert plan.split > 0
            assert plan.links

    def test_drained_switch_is_marked(self):
        fabric = make_fabric()
        fabric.drain("sw2")
        model = snapshot_fabric(fabric)
        assert model.switches["sw2"].drained
        assert "sw2" not in model.active


class TestDemandMath:
    def test_blocks_needed_consolidated(self):
        fabric = make_fabric()
        model = snapshot_fabric(fabric)
        name = model.active[0]
        epb = model.switches[name].entries_per_block
        assert model.blocks_needed((1,), name) == 1
        assert model.blocks_needed((epb, epb), name) == 2
        assert model.blocks_needed((), name) == 0

    def test_backplane_passes(self):
        fabric = make_fabric()
        model = snapshot_fabric(fabric)
        name = model.active[0]
        stages = model.switches[name].stages
        assert model.passes_needed(stages, name) == 1
        assert model.passes_needed(stages + 1, name) == 2
        assert model.backplane_needed(stages + 1, 2.0, name) == 4.0


class TestUsage:
    def test_from_current_seeds_exact_actuals(self, fragmented):
        fabric, _stitched = fragmented
        model = snapshot_fabric(fabric)
        usage = Usage.from_current(model)
        for name, sw in model.switches.items():
            assert usage.blocks[name] == sw.used_blocks
            assert usage.backplane[name] == sw.used_backplane_gbps
        for key, load in model.link_load.items():
            assert usage.link_load[key] == load
        occupants = {
            name: set(occ) for name, occ in usage.occupants.items()
        }
        for tenant_id, plan in model.current.items():
            for switch in plan.switches:
                assert tenant_id in occupants[switch]

    def test_charge_release_round_trips(self, fragmented):
        fabric, stitched = fragmented
        model = snapshot_fabric(fabric)
        usage = Usage.from_current(model)
        before = (
            dict(usage.blocks),
            dict(usage.backplane),
            dict(usage.link_load),
        )
        plan = model.current[stitched[0]]
        usage.release(plan)
        usage.charge(plan)
        assert usage.blocks == before[0]
        assert usage.backplane == before[1]
        assert usage.link_load == before[2]


class TestConstraintFamilies:
    def _foot(self, nf_types=(1, 2, 3), rules=None):
        rules = rules or (1,) * len(nf_types)
        return TenantFootprint(
            tenant_id=9, nf_types=tuple(nf_types), rules=tuple(rules),
            bandwidth_gbps=1.0,
        )

    def test_pins_and_forbids(self):
        cs = ConstraintSet(pins=((1, "sw0"),), forbids=((1, "sw2"), (2, "sw3")))
        assert cs.pinned(1) == "sw0"
        assert cs.pinned(2) is None
        assert cs.forbidden(1) == {"sw2"}
        assert cs.forbidden(3) == frozenset()

    def test_intra_chain_separation_constrains_the_cut(self):
        cs = ConstraintSet(split_between=((1, 3),))
        foot = self._foot((1, 2, 3, 4))
        assert cs.must_split(foot)
        assert cs.allowed_splits(foot) == [1, 2]
        # A type pair the chain does not contain forces nothing.
        assert not cs.must_split(self._foot((2, 4)))
        assert ConstraintSet().allowed_splits(foot) is None

    def test_unsatisfiable_partial_order_yields_no_split(self):
        cs = ConstraintSet(split_between=((2, 3),))
        foot = self._foot((1, 2, 3, 2))  # a "2" sits after the "3"
        assert cs.allowed_splits(foot) == []

    def test_tenant_separation_blocks_cohabitation(self):
        cs = ConstraintSet(separate_tenants=((9, 5),))
        foot = self._foot()
        occupants = {5: frozenset({4})}
        assert not cs.switch_ok(foot, foot.nf_types, occupants)
        assert cs.switch_ok(foot, foot.nf_types, {6: frozenset({4})})

    def test_nf_anti_affinity_is_cross_tenant(self):
        cs = ConstraintSet(nf_anti_affinity=((1, 4),))
        foot = self._foot((1, 2))
        assert not cs.switch_ok(foot, (1, 2), {5: frozenset({4})})
        assert cs.switch_ok(foot, (1, 2), {5: frozenset({3})})
        # The tenant's own occupancy entry never conflicts with itself.
        assert cs.switch_ok(foot, (1, 2), {9: frozenset({4})})


class TestRoute:
    def _line_model(self):
        """sw0 - sw1 - sw2 line: a multi-hop path is the only option."""
        switches = {
            name: SwitchModel(
                name=name, stages=4, virtual_stages=8, total_blocks=24,
                entries_per_block=100, capacity_gbps=60.0,
            )
            for name in ("sw0", "sw1", "sw2")
        }
        caps = {
            link_key("sw0", "sw1"): 10.0,
            link_key("sw1", "sw2"): 10.0,
        }
        return FabricModel(
            switches=switches,
            tenants={},
            current={},
            link_capacity=caps,
            adjacency={
                "sw0": ("sw1",), "sw1": ("sw0", "sw2"), "sw2": ("sw1",)
            },
        )

    def test_multi_hop_path_over_non_adjacent_switches(self):
        model = self._line_model()
        usage = Usage(model)
        path = route(model, usage, "sw0", "sw2", 5.0)
        assert path == (link_key("sw0", "sw1"), link_key("sw1", "sw2"))

    def test_saturated_link_blocks_the_route(self):
        model = self._line_model()
        usage = Usage(model)
        usage.link_load[link_key("sw1", "sw2")] = 9.0
        assert route(model, usage, "sw0", "sw2", 5.0) is None
        assert route(model, usage, "sw0", "sw2", 1.0) is not None

    def test_same_switch_needs_no_route(self):
        model = self._line_model()
        assert route(model, Usage(model), "sw0", "sw0", 1.0) is None


def test_plan_demands_splits_the_chain_at_the_cut():
    switches = {
        "sw0": SwitchModel(
            name="sw0", stages=4, virtual_stages=8, total_blocks=24,
            entries_per_block=100, capacity_gbps=60.0,
        ),
        "sw1": SwitchModel(
            name="sw1", stages=4, virtual_stages=8, total_blocks=24,
            entries_per_block=100, capacity_gbps=60.0,
        ),
    }
    foot = TenantFootprint(
        tenant_id=7, nf_types=(1, 2, 3, 4, 5), rules=(4, 4, 4, 4, 4),
        bandwidth_gbps=2.0,
    )
    model = FabricModel(
        switches=switches, tenants={7: foot}, current={},
        link_capacity={}, adjacency={},
    )
    plan = TenantPlan(tenant_id=7, switches=("sw0", "sw1"), split=3)
    demands = model.plan_demands(plan)
    assert demands == [
        ("sw0", (1, 2, 3), (4, 4, 4), 3),
        ("sw1", (4, 5), (4, 4), 2),
    ]
