"""End-to-end re-optimization through the orchestrator, the drift-gated
cadence, the telemetry counters on the Prometheus page, and the frontend's
``POST /v1/reoptimize`` endpoint."""

import pytest

from repro.errors import FrontendError
from repro.frontend import FrontendServer, HttpFrontendClient
from repro.telemetry.export import render_prometheus

from .conftest import chain, fragment, make_fabric


class TestOrchestrator:
    def test_reoptimize_consolidates_a_fragmented_fleet(self, fragmented):
        fabric, stitched = fragmented
        report = fabric.reoptimize(mode="greedy")
        assert report.ok
        assert report.stitched_before == len(stitched)
        assert report.stitched_after < report.stitched_before
        assert report.stitch_reduction > 0
        assert report.links_after < report.links_before
        assert fabric.check_invariant() == []
        summary = report.summary()
        assert summary["invariant_ok"]
        assert summary["stitch_reduction"] == report.stitch_reduction
        assert "reoptimize[greedy]" in report.describe()

    def test_dry_run_touches_nothing(self, fragmented):
        fabric, stitched = fragmented
        before = fabric.digest()
        report = fabric.reoptimize(mode="greedy", execute=False)
        assert not report.executed
        assert report.migration is None
        assert report.moves_planned > 0
        assert report.stitched_after == report.stitched_before
        assert fabric.digest() == before

    def test_maybe_reoptimize_gates_on_churn_and_fragmentation(self):
        fabric = make_fabric()
        fragment(fabric)
        # Plenty stitched, but not enough lifecycle churn yet.
        assert fabric.maybe_reoptimize(min_interval_ops=10_000) is None
        # Churn passed and the fleet is fragmented: the pass runs.
        report = fabric.maybe_reoptimize(min_interval_ops=0, mode="greedy")
        assert report is not None and report.ok
        # Defragmented now: the stitched gate holds (and resets the clock).
        assert fabric.maybe_reoptimize(min_interval_ops=0) is None

    def test_maybe_reoptimize_gates_on_stitched_count(self):
        fabric = make_fabric()
        for t in range(1, 5):
            assert fabric.admit(chain(t)).ok
        assert fabric.maybe_reoptimize(min_interval_ops=0) is None


class TestTelemetry:
    def test_counters_reach_the_prometheus_page(self, fragmented):
        fabric, _stitched = fragmented
        report = fabric.reoptimize(mode="greedy")
        assert report.ok and report.migration is not None
        page = render_prometheus(fabric.metrics)
        assert "sfp_globalopt_runs_total 1" in page
        assert (
            f"sfp_globalopt_moves_planned_total {report.moves_planned}"
            in page
        )
        assert (
            f"sfp_globalopt_moves_executed_total {report.migration.executed}"
            in page
        )
        assert "sfp_globalopt_solve_s_count 1" in page
        assert 'sfp_globalopt_solve_s_bucket{le="+Inf"} 1' in page
        assert "sfp_globalopt_step_s_count" in page
        assert "sfp_globalopt_migrations_tenant_" in page

    def test_skipped_moves_are_counted(self, fragmented):
        fabric, _stitched = fragmented
        fabric.reoptimize(mode="greedy", max_moves=0)
        counters = fabric.metrics.snapshot()["counters"]
        assert counters.get("globalopt.moves_skipped", 0) > 0
        assert counters.get("globalopt.moves_executed", 0) == 0


class TestFrontend:
    @pytest.fixture
    def served(self, fragmented):
        fabric, stitched = fragmented
        server = FrontendServer(fabric, port=0).start()
        try:
            yield HttpFrontendClient(server.url, timeout=10.0), stitched
        finally:
            server.close(timeout=10.0)

    def test_post_reoptimize_runs_a_pass(self, served):
        client, stitched = served
        body = client.reoptimize(mode="greedy")
        assert body["ok"]
        assert body["stitched_before"] == len(stitched)
        assert body["stitch_reduction"] > 0
        assert body["moves_executed"] == body["stitch_reduction"]

    def test_post_reoptimize_dry_run(self, served):
        client, stitched = served
        body = client.reoptimize(mode="greedy", execute=False)
        assert body["ok"]
        assert not body["executed"]
        assert body["moves_planned"] > 0
        assert body["stitched_after"] == len(stitched)

    def test_bad_mode_is_a_client_error(self, served):
        client, _stitched = served
        with pytest.raises(FrontendError, match="-> 400"):
            client.reoptimize(mode="tabu-search")
