"""Hitless execution against a live fabric: make-before-break unstitches,
probe-before-teardown, skip conditions, and transactional rollback."""

from repro.core.state import stable_digest
from repro.globalopt.migrate import execute_plan, execute_step
from repro.globalopt.model import TenantPlan, snapshot_fabric
from repro.globalopt.plan import build_plan
from repro.globalopt.solver import solve_greedy

from .conftest import chain, fragment, make_fabric


def _plan_for(fabric):
    model = snapshot_fabric(fabric)
    return model, build_plan(model, solve_greedy(model), min_benefit=0.0)


class TestExecutePlan:
    def test_unstitches_hitlessly_with_dataplane_probes(self):
        fabric = make_fabric(with_dataplane=True)
        stitched = fragment(fabric)
        model, plan = _plan_for(fabric)
        assert plan.steps
        report = execute_plan(fabric, plan)
        assert report.ok
        assert report.executed == len(plan.steps)
        for result in report.results:
            assert result.action == "executed"
            assert result.probed  # the new path forwarded before teardown
        for tenant_id in stitched:
            record = fabric.tenants[tenant_id]
            assert len({seg.switch for seg in record.segments}) == 1
            assert fabric.probe_tenant(tenant_id)
        assert fabric.check_invariant() == []

    def test_control_plane_only_skips_probing(self, fragmented):
        fabric, _stitched = fragmented
        _model, plan = _plan_for(fabric)
        report = execute_plan(fabric, plan)
        assert report.ok and report.executed
        assert all(not r.probed for r in report.results)
        assert fabric.check_invariant() == []

    def test_migration_metrics_are_counted(self, fragmented):
        fabric, _stitched = fragmented
        _model, plan = _plan_for(fabric)
        report = execute_plan(fabric, plan)
        counters = fabric.metrics.snapshot()["counters"]
        assert counters.get("globalopt.moves_executed", 0) == report.executed
        per_tenant = [
            name
            for name in counters
            if name.startswith("globalopt.migrations.tenant.")
        ]
        assert len(per_tenant) == report.executed


class TestSkips:
    def test_departed_tenant_is_skipped(self, fragmented):
        fabric, stitched = fragmented
        _model, plan = _plan_for(fabric)
        victim = plan.steps[0].tenant_id
        fabric.evict(victim)
        report = execute_plan(fabric, plan)
        by_tenant = {r.tenant_id: r for r in report.results}
        assert by_tenant[victim].action == "skipped"
        assert by_tenant[victim].reason == "tenant-departed"
        assert report.ok  # skips do not fail the migration

    def test_changed_chain_is_skipped(self, fragmented):
        fabric, _stitched = fragmented
        _model, plan = _plan_for(fabric)
        victim = plan.steps[0].tenant_id
        new_chain = chain(
            victim, nf_types=(1, 2), rules=(1, 1), bandwidth_gbps=0.5
        )
        assert fabric.modify(victim, new_chain).ok
        report = execute_plan(fabric, plan)
        by_tenant = {r.tenant_id: r for r in report.results}
        assert by_tenant[victim].action == "skipped"
        assert by_tenant[victim].reason == "chain-changed"

    def test_no_op_target_is_skipped(self, fragmented):
        fabric, _stitched = fragmented
        model = snapshot_fabric(fabric)
        tenant_id = sorted(model.current)[0]
        result = execute_step(fabric, model.current[tenant_id])
        assert result.action == "skipped"
        assert result.reason == "no-op"


class TestRollback:
    def test_refused_step_leaves_the_fabric_bit_identical(self):
        """Single-homing a stitched tenant onto a full foreign switch must
        be refused by the real shard and rolled back completely.  No
        fillers are evicted here, so every switch is 57.6/60 Gbps full and
        the 4.0 Gbps single-home demand cannot fit anywhere."""
        fabric = make_fabric()
        tenant_id = 1
        while fabric.admit(
            chain(tenant_id, nf_types=(1,), rules=(1,), bandwidth_gbps=7.2)
        ).ok:
            tenant_id += 1
        stitched = []
        for k in range(4):
            result = fabric.admit(
                chain(
                    500 + k, nf_types=(1, 2, 3, 4, 5), rules=(4,) * 5,
                    bandwidth_gbps=2.0,
                )
            )
            if result.ok and len(result.switches) > 1:
                stitched.append(500 + k)
        assert stitched
        model = snapshot_fabric(fabric)
        tenant_id = stitched[0]
        current = model.current[tenant_id]
        others = [s for s in model.active if s not in current.switches]
        before = fabric.digest()
        result = execute_step(
            fabric,
            TenantPlan(tenant_id=tenant_id, switches=(others[0],)),
            expect_sfc_digest=stable_digest(
                fabric.tenants[tenant_id].sfc.to_dict()
            ),
        )
        assert result.action == "failed"
        assert "refused" in result.reason
        assert fabric.digest() == before
        assert fabric.check_invariant() == []
        counters = fabric.metrics.snapshot()["counters"]
        assert counters.get("globalopt.moves_failed", 0) == 1

    def test_failed_step_does_not_abort_the_rest(self):
        """Room is freed only around the second stitched tenant, so a
        forged move of the first one onto a still-full switch fails — and
        the second tenant's real unstitch must still execute after it.
        Six switches guarantee a full foreign switch exists outside both
        tenants' homes."""
        fabric = make_fabric(num_switches=6)
        fillers = []
        tenant_id = 1
        while True:
            result = fabric.admit(
                chain(tenant_id, nf_types=(1,), rules=(1,), bandwidth_gbps=7.2)
            )
            if not result.ok:
                break
            fillers.append((tenant_id, result.switches[0]))
            tenant_id += 1
        stitched = []
        for k in range(4):
            result = fabric.admit(
                chain(
                    500 + k, nf_types=(1, 2, 3, 4, 5), rules=(4,) * 5,
                    bandwidth_gbps=2.0,
                )
            )
            if result.ok and len(result.switches) > 1:
                stitched.append(500 + k)
        assert len(stitched) >= 2
        homes = {
            seg.switch for seg in fabric.tenants[stitched[1]].segments
        }
        seen: set[str] = set()
        for filler_id, switch in fillers:
            if switch in homes and switch not in seen:
                seen.add(switch)
                fabric.evict(filler_id)

        model, plan = _plan_for(fabric)
        bad_tenant = stitched[0]
        full_foreign = [
            s
            for s in model.active
            if s not in model.current[bad_tenant].switches and s not in homes
        ]
        from repro.globalopt.plan import MigrationPlan, MigrationStep

        bad = MigrationStep(
            tenant_id=bad_tenant,
            current=model.current[bad_tenant],
            target=TenantPlan(
                tenant_id=bad_tenant, switches=(full_foreign[0],)
            ),
            benefit=99.0,
            cost=0.0,
        )
        rest = tuple(s for s in plan.steps if s.tenant_id != bad_tenant)
        assert rest, "expected a real unstitch step for the second tenant"
        report = execute_plan(fabric, MigrationPlan(steps=(bad,) + rest))
        assert report.failed == 1
        assert report.executed == len(rest)
        assert not report.aborted
        assert fabric.check_invariant() == []
