"""API-stability tests for the exception hierarchy.

Callers catch ``ReproError`` to handle any library failure; these tests pin
the subclass relationships that contract relies on.
"""

import pytest

from repro import errors


def test_everything_derives_from_repro_error():
    for name in (
        "ModelError",
        "SolverError",
        "InfeasibleError",
        "UnboundedError",
        "DataPlaneError",
        "ResourceExhaustedError",
        "PlacementError",
        "WorkloadError",
    ):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError), name


def test_solver_sub_hierarchy():
    assert issubclass(errors.InfeasibleError, errors.SolverError)
    assert issubclass(errors.UnboundedError, errors.SolverError)


def test_resource_exhausted_is_dataplane():
    assert issubclass(errors.ResourceExhaustedError, errors.DataPlaneError)


def test_catching_base_catches_subsystem_failures():
    with pytest.raises(errors.ReproError):
        raise errors.PlacementError("x")
    with pytest.raises(errors.DataPlaneError):
        raise errors.ResourceExhaustedError("y")
