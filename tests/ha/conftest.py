"""Shared fixtures for the HA suite: a deterministic fake clock, the churn
stream the replication and failover tests replay, and the per-LSN digest
oracle an uninterrupted run journals."""

import pytest

from repro.controller import ChurnConfig, synthesize_churn
from repro.durability import FabricDurability
from repro.traffic.workload import WorkloadConfig
from tests.durability.conftest import SWEEP_SEED, make_fabric

#: A shorter stream than the durability sweep's (every failover point
#: replays it from scratch): ~60 committed ops with arrivals, departures
#: and modifies, enough to cross several checkpoint/compaction cycles at
#: checkpoint_every=16.
HA_CHURN = ChurnConfig(
    duration_s=6.0,
    arrival_rate_per_s=10.0,
    mean_lifetime_s=4.0,
    modify_fraction=0.25,
    workload=WorkloadConfig(
        num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
        rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0,
        max_bandwidth_gbps=4.0,
    ),
)


class FakeClock:
    """An injectable clock whose ``sleep`` *is* the passage of time — lease
    expiry and failover waits run deterministically and instantly."""

    def __init__(self, now: float = 1_000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt

    def sleep(self, dt: float) -> None:
        self.now += dt


@pytest.fixture
def clock() -> FakeClock:
    return FakeClock()


def apply_event(fabric, event):
    """Replay one churn event through the fabric's public ops."""
    kind = event.kind.value
    if kind == "arrival":
        return fabric.admit(event.sfc)
    if kind == "departure":
        return fabric.evict(event.tenant_id)
    return fabric.modify(event.tenant_id, event.sfc)


@pytest.fixture(scope="session")
def ha_events():
    events = synthesize_churn(HA_CHURN, SWEEP_SEED)
    assert len(events) >= 50
    return events


@pytest.fixture(scope="session")
def ha_oracle(ha_events, tmp_path_factory):
    """LSN -> post-op fabric digest for the uninterrupted run of
    ``ha_events`` (LSN 0 = the genesis digest)."""
    directory = tmp_path_factory.mktemp("ha-oracle")
    fabric = make_fabric()
    durability = FabricDurability(directory, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    digests = {0: fabric.digest()}
    for event in ha_events:
        apply_event(fabric, event)
    for record in durability.wal.records():
        digests[record.lsn] = record.data["digest"]
    durability.close()
    return digests
