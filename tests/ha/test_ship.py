"""The shipping layer: frame encode/decode on real sockets, the WAL tailer's
incremental reads and compaction-gap detection, and the shipper end to end
over both transports (in-process and TCP)."""

import socket
import struct
import time

import pytest

from repro.durability import FabricDurability, WriteAheadLog
from repro.durability.wal import WalTailer
from repro.errors import DurabilityError
from repro.ha import (
    InProcessSink,
    ReplicationListener,
    SocketSink,
    StandbyReplica,
    WalShipper,
    encode_frame,
    recv_frame,
)
from tests.durability.conftest import chain, make_fabric


# ----------------------------------------------------------------------
# Frames on the wire
# ----------------------------------------------------------------------
def test_frame_roundtrip_over_a_socketpair():
    a, b = socket.socketpair()
    payload = {"kind": "heartbeat", "epoch": 3, "last_lsn": 17}
    a.sendall(encode_frame(payload))
    a.sendall(encode_frame({"kind": "hello"}))
    assert recv_frame(b) == payload
    assert recv_frame(b) == {"kind": "hello"}
    a.close()
    assert recv_frame(b) is None  # clean EOF at a frame boundary
    b.close()


def test_eof_mid_frame_raises():
    a, b = socket.socketpair()
    frame = encode_frame({"kind": "record", "line": "x" * 100})
    a.sendall(frame[: len(frame) - 20])  # die mid-body
    a.close()
    with pytest.raises(DurabilityError, match="mid-frame"):
        recv_frame(b)
    b.close()


def test_oversized_length_prefix_rejected():
    a, b = socket.socketpair()
    a.sendall(struct.pack(">I", 2**31))
    with pytest.raises(DurabilityError, match="too large"):
        recv_frame(b)
    a.close()
    b.close()


def test_non_object_payload_rejected():
    a, b = socket.socketpair()
    body = b"[1,2,3]"
    a.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(DurabilityError, match="JSON object"):
        recv_frame(b)
    a.close()
    b.close()


# ----------------------------------------------------------------------
# The tailer
# ----------------------------------------------------------------------
def test_tailer_reads_incrementally_without_rescanning(tmp_path):
    wal = WriteAheadLog(tmp_path / "t.jsonl", fsync="always")
    first = [wal.append("op", {"i": i}) for i in range(3)]
    tailer = WalTailer(wal.path)
    records, gap = tailer.poll()
    assert records == first
    assert not gap
    more = [wal.append("op", {"i": i}) for i in range(3, 6)]
    records, gap = tailer.poll()
    assert records == more  # only the new tail, not a re-read
    assert not gap
    assert tailer.poll() == ([], False)
    assert tailer.last_lsn == 6
    wal.close()


def test_tailer_resumes_after_a_given_lsn(tmp_path):
    wal = WriteAheadLog(tmp_path / "t.jsonl", fsync="always")
    for i in range(5):
        wal.append("op", {"i": i})
    tailer = WalTailer(wal.path, after_lsn=3)
    records, gap = tailer.poll()
    assert [r.lsn for r in records] == [4, 5]
    assert not gap
    wal.close()


def test_tailer_reports_a_gap_after_compaction(tmp_path):
    """A checkpoint compacts the WAL; a replica that never saw the
    compacted records must get gap=True (ship a checkpoint, not records)."""
    fabric = make_fabric()
    durability = FabricDurability(tmp_path, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    for t in range(1, 6):
        fabric.admit(chain(t))
    durability.checkpoint(fabric)  # compacts the log behind base_lsn
    fabric.admit(chain(6))

    behind = WalTailer(durability.wal.path, after_lsn=0)
    records, gap = behind.poll()
    assert gap
    caught_up = WalTailer(durability.wal.path, after_lsn=durability.wal.last_lsn)
    assert caught_up.poll() == ([], False)
    durability.close()


# ----------------------------------------------------------------------
# The shipper end to end
# ----------------------------------------------------------------------
def test_shipper_streams_records_in_process(tmp_path):
    fabric = make_fabric()
    durability = FabricDurability(tmp_path, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    standby = StandbyReplica(verify_every=2)
    shipper = WalShipper(tmp_path, InProcessSink(standby), epoch_fn=lambda: 1)

    for t in range(1, 8):
        fabric.admit(chain(t))
        shipper.pump()
    assert standby.applied_lsn == durability.wal.last_lsn
    assert standby.fabric.digest() == fabric.digest()
    assert standby.fabric.role == "standby"
    assert standby.primary_lsn == durability.wal.last_lsn  # heartbeats landed
    durability.close()


def test_shipper_bridges_a_compaction_gap_with_a_checkpoint(tmp_path):
    """A standby connecting *after* compaction can never see the compacted
    records — the shipper must send the latest checkpoint first, then the
    tail, and the replica must land digest-identical anyway."""
    fabric = make_fabric()
    durability = FabricDurability(tmp_path, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    for t in range(1, 10):
        fabric.admit(chain(t))
    durability.checkpoint(fabric)
    fabric.evict(3)
    fabric.admit(chain(10))

    standby = StandbyReplica(verify_every=4)
    shipper = WalShipper(tmp_path, InProcessSink(standby), epoch_fn=lambda: 1)
    shipper.pump()
    assert standby.checkpoints_restored == 1
    assert standby.applied_lsn == durability.wal.last_lsn
    assert standby.fabric.digest() == fabric.digest()
    assert shipper.shipped_checkpoints == 1
    durability.close()


def test_shipper_requires_a_checkpoint_to_cover_a_gap(tmp_path):
    """Compacted WAL + no loadable checkpoint = the stream cannot be
    reconstructed; the shipper must refuse loudly, not ship a hole."""
    fabric = make_fabric()
    durability = FabricDurability(
        tmp_path, fsync="always", checkpoint_every=0, keep_checkpoints=1
    )
    durability.attach(fabric)
    for t in range(1, 5):
        fabric.admit(chain(t))
    durability.checkpoint(fabric)
    durability.close()
    for path in tmp_path.glob("checkpoint-*.json"):
        path.unlink()

    standby = StandbyReplica()
    shipper = WalShipper(tmp_path, InProcessSink(standby), epoch_fn=lambda: 1)
    with pytest.raises(DurabilityError, match="no loadable checkpoint"):
        shipper.pump()


def wait_for(predicate, timeout_s: float = 5.0) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise AssertionError("condition not reached in time")
        time.sleep(0.01)


def test_socket_transport_replicates_and_resumes(tmp_path):
    """The TCP path: listener hello -> shipper resume -> frames over the
    wire -> replica digest-identical.  A reconnect resumes from the
    replica's applied LSN instead of re-shipping history."""
    fabric = make_fabric()
    durability = FabricDurability(tmp_path, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    for t in range(1, 6):
        fabric.admit(chain(t))

    standby = StandbyReplica(verify_every=2)
    listener = ReplicationListener(standby)
    try:
        sink = SocketSink(listener.host, listener.port)
        assert sink.hello() == {"kind": "hello", "last_lsn": 0, "epoch": 0}
        shipper = WalShipper(tmp_path, sink, epoch_fn=lambda: 1)
        shipper.pump()
        wait_for(lambda: standby.applied_lsn == durability.wal.last_lsn)
        assert standby.fabric.digest() == fabric.digest()
        shipper.close()

        # Reconnect: the fresh hello carries the resume point, so only the
        # records committed since the disconnect flow.
        fabric.admit(chain(6))
        sink2 = SocketSink(listener.host, listener.port)
        assert sink2.hello()["last_lsn"] == standby.applied_lsn
        shipper2 = WalShipper(tmp_path, sink2, epoch_fn=lambda: 1)
        shipper2.pump()
        wait_for(lambda: standby.applied_lsn == durability.wal.last_lsn)
        assert shipper2.shipped_records == 1
        assert standby.fabric.digest() == fabric.digest()
        shipper2.close()
    finally:
        listener.close()
        durability.close()
