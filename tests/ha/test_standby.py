"""The hot standby: replay identity under churn, the digest cross-check
cadence, checkpoint bootstrap, the epoch gate, and promote-time guards."""

import pytest

from repro.durability import FabricDurability
from repro.durability.checkpoint import read_manifest
from repro.durability.wal import WalRecord
from repro.errors import DurabilityError
from repro.ha import InProcessSink, StandbyReplica, WalShipper
from tests.durability.conftest import chain, make_fabric
from tests.ha.conftest import apply_event


@pytest.fixture
def primary(tmp_path):
    fabric = make_fabric()
    durability = FabricDurability(tmp_path, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    yield fabric, durability, tmp_path
    durability.close()


def test_standby_tracks_the_primary_through_churn(primary, ha_events):
    fabric, durability, directory = primary
    standby = StandbyReplica(verify_every=8)
    shipper = WalShipper(directory, InProcessSink(standby), epoch_fn=lambda: 1)
    for event in ha_events:
        apply_event(fabric, event)
        shipper.pump()
    assert standby.applied_lsn == durability.wal.last_lsn
    assert standby.fabric.digest() == fabric.digest()
    assert standby.problems == []
    assert standby.fabric.role == "standby"
    status = standby.status()
    assert status["lag_records"] == 0
    assert status["records_applied"] == durability.wal.last_lsn


def test_digest_verification_runs_on_cadence(primary):
    fabric, durability, directory = primary
    standby = StandbyReplica(verify_every=4)
    shipper = WalShipper(directory, InProcessSink(standby), epoch_fn=lambda: 1)
    for t in range(1, 11):
        fabric.admit(chain(t))
    shipper.pump()
    snapshot = standby.metrics.snapshot()["counters"]
    # LSNs 4 and 8 hit the strict check; every record retains its digest
    # for the promote-time final comparison.
    assert snapshot["ha.digest_verifications"] == 2
    assert standby.last_digest_lsn == standby.applied_lsn == 10
    assert standby.last_digest == fabric.digest()


def test_corrupted_digest_on_cadence_is_caught(primary):
    """A record whose journaled digest disagrees with the replayed state
    must surface as a replay problem (and fail the later promote)."""
    fabric, durability, directory = primary
    standby = StandbyReplica(verify_every=1)  # strict check on every LSN
    standby.feed({
        "kind": "manifest", "epoch": 1,
        "manifest": read_manifest(directory),
    })
    fabric.admit(chain(1))
    record = durability.wal.records()[-1]
    tampered = WalRecord(
        lsn=record.lsn,
        op=record.op,
        data={**record.data, "digest": "0" * 32},
        epoch=record.epoch,
    )
    standby.feed({
        "kind": "record", "epoch": 1,
        "line": tampered.to_line().decode("utf-8").rstrip("\n"),
    })
    assert standby.applied_lsn == 1
    assert any("digest" in p for p in standby.problems)
    with pytest.raises(DurabilityError, match="diverged"):
        standby.promote(2)  # a divergent replica never promotes


def test_checkpoint_frame_bootstraps_a_late_standby(primary):
    """A replica connecting after compaction starts from the checkpoint
    frame, then replays only the tail."""
    fabric, durability, directory = primary
    for t in range(1, 9):
        fabric.admit(chain(t))
    durability.checkpoint(fabric)
    fabric.evict(2)

    standby = StandbyReplica(verify_every=2)
    shipper = WalShipper(directory, InProcessSink(standby), epoch_fn=lambda: 1)
    shipper.pump()
    assert standby.checkpoints_restored == 1
    assert standby.records_applied == 1  # just the post-checkpoint evict
    assert standby.applied_lsn == durability.wal.last_lsn
    assert standby.fabric.digest() == fabric.digest()


def test_stale_epoch_frames_are_rejected(primary):
    fabric, durability, directory = primary
    standby = StandbyReplica()
    shipper = WalShipper(directory, InProcessSink(standby), epoch_fn=lambda: 1)
    fabric.admit(chain(1))
    shipper.pump()
    applied = standby.applied_lsn

    standby.observe_epoch(5)  # a new primary won the lease
    fabric.admit(chain(2))
    stale = WalShipper(directory, InProcessSink(standby), epoch_fn=lambda: 1)
    stale.pump()  # the deposed primary limps on at epoch 1
    assert standby.applied_lsn == applied  # nothing landed
    assert standby.frames_rejected > 0
    counters = standby.metrics.snapshot()["counters"]
    assert counters["ha.frames_rejected_stale_epoch"] == standby.frames_rejected

    fresh = WalShipper(directory, InProcessSink(standby), epoch_fn=lambda: 5)
    fresh.pump()  # the same records at the new epoch are welcome
    assert standby.applied_lsn == durability.wal.last_lsn


def test_record_frames_keep_their_original_epochs(primary):
    """History is immutable: the epoch gate checks the frame envelope, not
    the record inside — a new primary re-ships old epoch-0 records."""
    fabric, durability, directory = primary
    fabric.admit(chain(1))
    standby = StandbyReplica()
    standby.observe_epoch(3)
    shipper = WalShipper(directory, InProcessSink(standby), epoch_fn=lambda: 3)
    shipper.pump()
    assert standby.applied_lsn == durability.wal.last_lsn


def test_malformed_frames_raise(primary):
    fabric, durability, directory = primary
    standby = StandbyReplica()
    valid_line = (
        WalRecord(lsn=1, op="noop", data={})
        .to_line().decode("utf-8").rstrip("\n")
    )
    with pytest.raises(DurabilityError, match="before the manifest"):
        standby.feed({"kind": "record", "epoch": 0, "line": valid_line})
    with pytest.raises(DurabilityError, match="before the manifest"):
        standby.feed({"kind": "checkpoint", "epoch": 0,
                      "checkpoint": {"lsn": 1}})
    standby.feed({
        "kind": "manifest", "epoch": 0, "manifest": read_manifest(directory)
    })
    with pytest.raises(DurabilityError, match="CRC"):
        standby.feed({"kind": "record", "epoch": 0,
                      "line": '{"crc": 1, "rec": {}}'})
    with pytest.raises(DurabilityError, match="unknown frame kind"):
        standby.feed({"kind": "mystery", "epoch": 0})


def test_promote_requires_a_manifest():
    with pytest.raises(DurabilityError, match="no manifest"):
        StandbyReplica().promote(1)


def test_promote_refuses_a_divergent_replica(primary):
    fabric, durability, directory = primary
    standby = StandbyReplica(verify_every=0)  # no per-record checks...
    shipper = WalShipper(directory, InProcessSink(standby), epoch_fn=lambda: 1)
    fabric.admit(chain(1))
    shipper.pump()
    standby.last_digest = "0" * 32  # ...so divergence surfaces at promote
    standby.last_digest_lsn = standby.applied_lsn
    with pytest.raises(DurabilityError, match="diverged"):
        standby.promote(2)
