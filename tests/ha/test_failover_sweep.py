"""The HA acceptance sweep: kill the primary at every seeded crash site
across the durability boundaries (WAL append/fsync and checkpoint/compaction
rename windows), mutilate its disk, and fail over.  Every point must promote
a standby that (a) holds **every acknowledged op** and (b) is
digest-identical to the committed-LSN oracle — and the deposed primary must
be fenced out of journaling and shipping forever after.

The lease runs on the shared fake clock (``sleep`` advances it), so waiting
out the dead primary's TTL costs no wall time and the whole sweep is
deterministic.
"""

import pytest

from repro.durability import (
    DISK_MODES,
    DURABILITY_SITES,
    CrashError,
    FaultInjector,
    crash_sites,
)
from repro.errors import FencedError
from repro.ha import HaCluster, InProcessSink, WalShipper
from tests.durability.conftest import SWEEP_SEED, make_fabric
from tests.ha.conftest import FakeClock, apply_event

#: Ordinals span the ~60-op stream: every site gets its first visit, seeded
#: middles, and a last one (sites whose ordinal exceeds their actual visit
#: count simply crash at stream end — still a valid kill+failover drill).
MAX_ORDINAL = 30

SWEEP_POINTS = crash_sites(SWEEP_SEED, MAX_ORDINAL, sites=DURABILITY_SITES)


def test_sweep_meets_the_acceptance_floor():
    """>= 16 crash sites x disk-mutilation modes, every durability site
    represented."""
    assert len(SWEEP_POINTS) >= 16
    assert {p.site for p in SWEEP_POINTS} == set(DURABILITY_SITES)


def run_cluster(tmp_path, events, point=None):
    clock = FakeClock()
    cluster = HaCluster(
        tmp_path,
        make_fabric,
        ttl_s=2.0,
        checkpoint_every=16,
        verify_every=4,
        fault_hook=FaultInjector(point) if point is not None else None,
        clock=clock,
        sleep=clock.sleep,
    )
    cluster.start()
    acked = 0
    try:
        for event in events:
            apply_event(cluster.fabric, event)
            # The op returned: its WAL append is durable (fsync=always) —
            # the promoted standby must reach at least this LSN.
            acked = cluster.durability.wal.last_lsn
            cluster.pump()
    except CrashError:
        pass
    return cluster, acked


@pytest.mark.parametrize(
    "index,point",
    list(enumerate(SWEEP_POINTS)),
    ids=[f"{p.site}@{p.at}" for p in SWEEP_POINTS],
)
def test_kill_primary_promotes_standby_with_zero_lost_acks(
    ha_events, ha_oracle, tmp_path, index, point
):
    mode = DISK_MODES[index % len(DISK_MODES)]
    cluster, acked = run_cluster(tmp_path, ha_events, point)
    cluster.kill_primary(mode)
    report = cluster.failover()
    assert report.ok, report.problems
    assert report.epoch == 2
    assert report.applied_lsn >= acked  # zero lost acknowledged ops
    assert report.digest == ha_oracle[report.applied_lsn]
    assert cluster.fabric.check_invariant() == []
    cluster.close()


def test_failover_without_a_crash_loses_nothing(ha_events, ha_oracle, tmp_path):
    """The clean-kill baseline: primary dies at stream end, standby promotes
    at exactly the committed LSN."""
    cluster, acked = run_cluster(tmp_path, ha_events)
    committed = cluster.kill_primary("keep")["committed_lsn"]
    report = cluster.failover()
    assert report.ok, report.problems
    assert report.applied_lsn == committed == acked
    assert report.digest == ha_oracle[committed]
    cluster.close()


def test_promoted_standby_serves_new_ops(ha_events, tmp_path):
    from tests.durability.conftest import chain

    cluster, _acked = run_cluster(tmp_path, ha_events[:20])
    cluster.kill_primary("tear")
    report = cluster.failover()
    assert report.ok
    lsn_before = cluster.durability.wal.last_lsn
    result = cluster.fabric.admit(chain(9001))
    assert result.ok
    assert cluster.durability.wal.last_lsn == lsn_before + 1
    assert cluster.fabric.role == "primary"
    assert cluster.fabric.epoch == 2
    cluster.close()


def test_deposed_primary_is_fenced_after_failover(ha_events, tmp_path):
    """After the takeover the old primary's lease checks fail and its
    shipped frames are rejected — it cannot journal or replicate again."""
    cluster, _acked = run_cluster(tmp_path, ha_events[:20])
    cluster.kill_primary("keep")
    cluster.failover()
    with pytest.raises(FencedError):
        cluster.primary_lease.check_fence()
    rejected_before = cluster.standby.frames_rejected
    stale = WalShipper(
        cluster.primary_dir, InProcessSink(cluster.standby),
        epoch_fn=lambda: 1,
    )
    stale.pump()
    assert cluster.standby.frames_rejected > rejected_before
    cluster.close()


def test_failover_report_describes_itself(ha_events, tmp_path):
    cluster, _acked = run_cluster(tmp_path, ha_events[:10])
    cluster.kill_primary("keep")
    report = cluster.failover()
    text = report.describe()
    assert "epoch 2" in text
    assert "ok" in text
    cluster.close()
