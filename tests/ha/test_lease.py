"""The lease: acquisition, renewal, expiry, release, and the fence — all
driven by the injectable clock, plus the monotonic-epoch guarantees the
fencing protocol rests on."""

import json

import pytest

from repro.errors import DurabilityError, FencedError
from repro.ha import LeaseCoordinator, LeaseStore
from repro.ha.lease import LeaseState


@pytest.fixture
def store(tmp_path) -> LeaseStore:
    return LeaseStore(tmp_path / "lease")


def coordinator(node, store, clock, ttl=2.0) -> LeaseCoordinator:
    return LeaseCoordinator(node, store, ttl_s=ttl, clock=clock)


def test_fresh_acquire_grants_epoch_one(store, clock):
    a = coordinator("a", store, clock)
    assert a.try_acquire() == 1
    assert a.is_primary
    state = store.read()
    assert state.holder == "a"
    assert state.epoch == 1
    assert state.max_epoch == 1
    assert state.deadline == clock.now + 2.0


def test_second_node_cannot_steal_an_unexpired_lease(store, clock):
    a = coordinator("a", store, clock)
    b = coordinator("b", store, clock)
    assert a.try_acquire() == 1
    assert b.try_acquire() is None
    assert not b.is_primary
    assert store.read().holder == "a"


def test_renew_extends_the_deadline(store, clock):
    a = coordinator("a", store, clock)
    a.try_acquire()
    clock.advance(1.5)
    assert a.renew()
    assert store.read().deadline == clock.now + 2.0
    assert a.epoch == 1  # renewal never mints a new epoch


def test_renew_fails_once_expired(store, clock):
    a = coordinator("a", store, clock)
    a.try_acquire()
    clock.advance(2.5)
    assert not a.renew()
    assert a.epoch is None  # belief dropped: back through try_acquire


def test_takeover_after_expiry_bumps_the_epoch(store, clock):
    a = coordinator("a", store, clock)
    b = coordinator("b", store, clock)
    a.try_acquire()
    clock.advance(2.5)
    assert b.try_acquire() == 2
    state = store.read()
    assert state.holder == "b"
    assert state.max_epoch == 2


def test_reacquire_of_own_live_lease_keeps_the_epoch(store, clock):
    a = coordinator("a", store, clock)
    assert a.try_acquire() == 1
    clock.advance(0.5)
    assert a.try_acquire() == 1  # our own live lease: renewal semantics


def test_release_then_reacquire_still_mints_a_fresh_epoch(store, clock):
    """max_epoch survives release: even the same node re-acquiring its own
    released lease can never see a previously-granted epoch again."""
    a = coordinator("a", store, clock)
    assert a.try_acquire() == 1
    a.release()
    assert store.read().holder is None
    assert store.read().max_epoch == 1
    assert a.try_acquire() == 2


def test_restarted_node_cannot_reuse_an_epoch(store, clock):
    a = coordinator("a", store, clock)
    a.try_acquire()
    clock.advance(3.0)
    # Crash-restart: a brand-new coordinator object, same store.
    a2 = coordinator("a", store, clock)
    assert a2.try_acquire() == 2


def test_check_fence_passes_for_the_live_holder(store, clock):
    a = coordinator("a", store, clock)
    a.try_acquire()
    assert a.check_fence() == 1


def test_check_fence_raises_without_a_lease(store, clock):
    a = coordinator("a", store, clock)
    with pytest.raises(FencedError):
        a.check_fence()


def test_check_fence_raises_after_expiry(store, clock):
    a = coordinator("a", store, clock)
    a.try_acquire()
    clock.advance(2.5)
    with pytest.raises(FencedError):
        a.check_fence()


def test_check_fence_raises_after_a_takeover(store, clock):
    """The deposed primary still *believes* it is primary (epoch set) but
    the fence re-reads the file and sees the successor."""
    a = coordinator("a", store, clock)
    b = coordinator("b", store, clock)
    a.try_acquire()
    clock.advance(2.5)
    b.try_acquire()
    assert a.is_primary  # stale belief...
    with pytest.raises(FencedError, match="held by 'b' at epoch 2"):
        a.check_fence()  # ...corrected here


def test_corrupt_lease_file_degrades_to_the_empty_lease(store, clock):
    a = coordinator("a", store, clock)
    a.try_acquire()
    store.path.write_text("{not json", encoding="utf-8")
    assert store.read() == LeaseState.empty()
    # And the next acquire starts the epoch sequence over from the file's
    # point of view — corruption of the election substrate is the same
    # failure domain as losing the WAL directory it fences.
    b = coordinator("b", store, clock)
    assert b.try_acquire() == 1


def test_lease_file_is_valid_json_with_no_tmp_residue(store, clock):
    a = coordinator("a", store, clock)
    a.try_acquire()
    raw = json.loads(store.path.read_text(encoding="utf-8"))
    assert raw == {
        "holder": "a", "epoch": 1, "deadline": clock.now + 2.0, "max_epoch": 1
    }
    leftovers = [p.name for p in store.directory.iterdir()]
    assert leftovers == ["lease.json"]  # tmp file renamed away atomically


def test_missing_file_reads_as_empty(store):
    assert store.read() == LeaseState.empty()


def test_ttl_must_be_positive(store, clock):
    with pytest.raises(DurabilityError):
        LeaseCoordinator("a", store, ttl_s=0.0, clock=clock)
