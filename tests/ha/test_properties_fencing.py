"""Property tests for the fencing protocol.

Two invariants the whole HA design rests on:

1. **Fencing tokens are strictly monotonic** across arbitrary interleavings
   of acquisitions, renewals, releases, expiries, and crash-restarts by two
   competing nodes — no epoch is ever granted twice, ``max_epoch`` tracks
   the high-water mark, and at most one node ever passes its fence check.
2. **A stale-epoch writer can never get a frame applied**: whatever order
   frames and epoch observations arrive in, a frame stamped below the
   replica's accepted epoch is rejected without touching the shadow fabric,
   and the accepted epoch never moves backwards.
"""

import tempfile
from functools import lru_cache

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.durability import FabricDurability
from repro.errors import FencedError
from repro.ha import InProcessSink, LeaseCoordinator, LeaseStore, StandbyReplica, WalShipper
from tests.durability.conftest import chain, make_fabric
from tests.ha.conftest import FakeClock

actions = st.lists(
    st.tuples(
        st.integers(0, 1),  # which node
        st.sampled_from(["acquire", "renew", "release", "crash"]),
        st.sampled_from([0.0, 0.5, 1.0, 3.0]),  # clock advance first
    ),
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(actions=actions)
def test_epochs_strictly_monotonic_across_elections_and_crashes(actions):
    with tempfile.TemporaryDirectory() as directory:
        clock = FakeClock()
        store = LeaseStore(directory)
        nodes = [
            LeaseCoordinator(f"n{i}", store, ttl_s=2.0, clock=clock)
            for i in range(2)
        ]
        granted: list[int] = []
        for index, action, advance in actions:
            clock.advance(advance)
            if action == "acquire":
                epoch = nodes[index].try_acquire()
                if epoch is not None and epoch not in granted:
                    # A fresh grant must exceed every epoch ever granted —
                    # including ones whose holders crashed or released.
                    assert all(epoch > seen for seen in granted)
                    granted.append(epoch)
            elif action == "renew":
                nodes[index].renew()
            elif action == "release":
                nodes[index].release()
            else:  # crash-restart: new coordinator object, same store
                nodes[index] = LeaseCoordinator(
                    f"n{index}", store, ttl_s=2.0, clock=clock
                )
            fenced_in = 0
            for node in nodes:
                try:
                    node.check_fence()
                    fenced_in += 1
                except FencedError:
                    pass
            assert fenced_in <= 1  # never two unexpired holders
        state = store.read()
        assert state.max_epoch == (max(granted) if granted else 0)


class RecordingSink:
    """Captures the shipper's frames instead of delivering them."""

    def __init__(self) -> None:
        self.frames: list[dict] = []

    def hello(self) -> dict:
        return {"kind": "hello", "last_lsn": 0, "epoch": 0}

    def send(self, frame: dict) -> None:
        self.frames.append(frame)

    def close(self) -> None:
        pass


@lru_cache(maxsize=1)
def real_frames() -> tuple[dict, ...]:
    """One manifest + six record frames + a heartbeat, captured from a real
    primary (plain dicts — safe to re-stamp with arbitrary epochs)."""
    with tempfile.TemporaryDirectory() as directory:
        fabric = make_fabric()
        durability = FabricDurability(
            directory, fsync="always", checkpoint_every=0
        )
        durability.attach(fabric)
        for tenant in range(1, 7):
            fabric.admit(chain(tenant))
        sink = RecordingSink()
        WalShipper(directory, sink, epoch_fn=lambda: 0).pump()
        durability.close()
    return tuple(sink.frames)


frame_ops = st.lists(
    st.one_of(
        st.tuples(st.just("observe"), st.integers(0, 8)),
        st.tuples(st.just("feed"), st.integers(0, 8), st.integers(0, 7)),
    ),
    max_size=60,
)


@settings(max_examples=60, deadline=None)
@given(ops=frame_ops)
def test_stale_epoch_writer_never_gets_a_frame_applied(ops):
    frames = real_frames()
    standby = StandbyReplica(verify_every=2)
    standby.feed(frames[0])  # the manifest, at the starting epoch bar (0)
    for op in ops:
        bar = standby.accepted_epoch
        applied = standby.applied_lsn
        count = standby.records_applied
        if op[0] == "observe":
            standby.observe_epoch(op[1])
            assert standby.accepted_epoch == max(bar, op[1])
        else:
            _, epoch, index = op
            frame = dict(frames[index % len(frames)], epoch=epoch)
            accepted = standby.feed(frame)
            assert accepted == (epoch >= bar)
            if not accepted:
                # The rejected frame touched nothing.
                assert standby.applied_lsn == applied
                assert standby.records_applied == count
                assert standby.accepted_epoch == bar
        assert standby.accepted_epoch >= bar  # the bar never drops
    # The replica never invents history: its LSN is bounded by what the
    # primary ever committed.  (Out-of-order delivery may trip the digest
    # cross-check — that is the guard working, not a gate failure.)
    assert standby.applied_lsn <= 6


def test_in_process_sink_matches_recorded_frames():
    """The recorded frames drive a replica to the same state the live sink
    would — the property test's corpus is faithful."""
    frames = real_frames()
    replica = StandbyReplica(verify_every=2)
    for frame in frames:
        replica.feed(frame)
    assert replica.applied_lsn == 6
    assert replica.problems == []
    assert isinstance(InProcessSink(replica).hello()["last_lsn"], int)
