"""Chain splitting and cross-switch stitch planning."""

import pytest

from repro.errors import PlacementError
from repro.fabric import (
    FabricOrchestrator,
    FabricTopology,
    plan_stitch,
    split_chain,
    split_points,
)

from .conftest import chain


def test_split_points_prefers_balanced_fold_boundaries():
    # length 6, S=2: folds at 2 and 4 (balanced ties -> smaller index
    # first... 2*2-6=-2 vs 2*4-6=2, equal |.|, tie-break j), then the rest.
    assert split_points(6, 2) == [2, 4, 3, 1, 5]
    # length 6, S=3: the only fold is the perfect midpoint.
    assert split_points(6, 3) == [3, 2, 4, 1, 5]
    assert split_points(1, 3) == []
    assert split_points(0, 3) == []


def test_split_chain_partitions_the_chain():
    sfc = chain(9, nf_types=(1, 2, 3, 4), rules=(5, 6, 7, 8), bandwidth_gbps=2.0)
    head, tail = split_chain(sfc, 3)
    assert head.nf_types == (1, 2, 3) and head.rules == (5, 6, 7)
    assert tail.nf_types == (4,) and tail.rules == (8,)
    for seg in (head, tail):
        assert seg.tenant_id == 9
        assert seg.bandwidth_gbps == 2.0
    assert head.name.endswith("#head") and tail.name.endswith("#tail")
    for bad in (0, 4):
        with pytest.raises(PlacementError):
            split_chain(sfc, bad)


@pytest.fixture
def short_fabric(short_spec):
    # K = 2*(1+1) = 4 virtual stages: a 6-NF chain cannot single-home.
    topo = FabricTopology.full_mesh(3, spec=short_spec, max_recirculations=1)
    return FabricOrchestrator(topo, num_types=6, with_dataplane=False)


LONG = dict(nf_types=(1, 2, 3, 4, 5, 6), rules=(2, 2, 2, 2, 2, 2))


def test_plan_stitch_finds_fold_boundary_split(short_fabric):
    order = short_fabric.partitioner.order(chain(1, **LONG), short_fabric)
    plan = plan_stitch(short_fabric, chain(1, **LONG), order)
    assert plan is not None
    assert plan.split % 2 == 0  # a fold boundary of the 2-stage pipeline
    assert plan.head.nf_types + plan.tail.nf_types == (1, 2, 3, 4, 5, 6)
    assert plan.head_switch != plan.tail_switch
    assert plan.link in short_fabric.links


def test_plan_stitch_is_read_only(short_fabric):
    order = short_fabric.partitioner.order(chain(1, **LONG), short_fabric)
    plan_stitch(short_fabric, chain(1, **LONG), order)
    for shard in short_fabric.shards.values():
        assert shard.tenants == {}
        assert shard.state.entries.sum() == 0
        assert shard.state.backplane_gbps == 0.0
    assert all(link.load_gbps == 0.0 for link in short_fabric.links.values())


def test_plan_stitch_degenerate_inputs(short_fabric):
    order = short_fabric.partitioner.order(chain(1), short_fabric)
    assert plan_stitch(short_fabric, chain(1, nf_types=(1,), rules=(2,)), order) is None
    assert plan_stitch(short_fabric, chain(1, **LONG), order[:1]) is None


def test_plan_stitch_respects_link_capacity(short_spec):
    topo = FabricTopology.full_mesh(
        3, spec=short_spec, max_recirculations=1, link_capacity_gbps=1.0
    )
    fabric = FabricOrchestrator(topo, num_types=6, with_dataplane=False)
    big = chain(1, bandwidth_gbps=5.0, **LONG)
    order = fabric.partitioner.order(big, fabric)
    assert plan_stitch(fabric, big, order) is None
    small = chain(1, bandwidth_gbps=0.5, **LONG)
    assert plan_stitch(fabric, small, order) is not None
