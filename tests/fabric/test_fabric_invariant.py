"""The fabric churn invariant (the PR's acceptance gate).

Replay a 500+-event seeded churn stream over a 4-switch fabric and require:

(a) the aggregate fabric state — per-switch entry/block matrices, backplane
    floats, and inter-switch link loads — stays **bit-identical** to
    recomputing every shard from its surviving tenant set from scratch
    (``FabricOrchestrator.check_invariant`` compares against
    ``PipelineState.from_placement`` per shard and a sorted-tenant link-load
    recompute, with exact float equality);

(b) after ``drain(switch)``, every re-homed tenant's chain still forwards
    end-to-end through data-plane probe packets, and the drained switch is
    left with zero tenants and zero rules.
"""

import pytest

from repro.controller import ChurnConfig, synthesize_churn
from repro.fabric import (
    FabricChurnEngine,
    FabricOrchestrator,
    FabricTopology,
    make_partitioner,
)
from repro.rng import DEFAULT_SEED
from repro.traffic.workload import WorkloadConfig

WORKLOAD = WorkloadConfig(
    num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
    rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0, max_bandwidth_gbps=4.0,
)

CONFIG = ChurnConfig(
    duration_s=25.0,
    arrival_rate_per_s=12.0,
    mean_lifetime_s=6.0,
    modify_fraction=0.25,
    workload=WORKLOAD,
)


@pytest.fixture(scope="module")
def events():
    stream = synthesize_churn(CONFIG, rng=DEFAULT_SEED)
    assert len(stream) >= 500  # the acceptance floor
    return stream


@pytest.mark.parametrize("strategy", ["hash", "least-backplane"])
def test_fabric_churn_invariant_bit_identical(events, strategy):
    topo = FabricTopology.full_mesh(4)
    fabric = FabricOrchestrator(
        topo, num_types=6, partitioner=make_partitioner(strategy)
    )
    engine = FabricChurnEngine(fabric)
    for i, event in enumerate(events):
        engine.apply(event)
        if i % 100 == 0:  # audit mid-stream, not only at the end
            assert fabric.check_invariant() == []
    assert fabric.check_invariant() == []
    assert len(fabric.tenants) > 0  # the stream leaves survivors to audit
    # Survivors all forward end to end before any drain.
    assert all(fabric.probe_tenant(t) for t in fabric.tenants)


def test_drain_after_churn_keeps_every_rehomed_chain_forwarding(events):
    topo = FabricTopology.full_mesh(4)
    fabric = FabricOrchestrator(topo, num_types=6)
    report = FabricChurnEngine(fabric).replay(events)
    assert report.num_events == len(events)
    assert fabric.check_invariant() == []

    # Drain the busiest switch — the hardest re-home.
    victim = max(fabric.shards, key=lambda n: len(fabric.shards[n].tenants))
    before = set(fabric.tenants)
    drain = fabric.drain(victim)
    assert set(drain.rehomed) | set(drain.evicted) <= before
    assert fabric.check_invariant() == []

    # (b) zero rules left on the drained switch...
    shard = fabric.shards[victim]
    assert shard.tenants == {}
    assert shard.state.entries.sum() == 0
    assert shard.state.backplane_gbps == 0.0
    assert shard.installer.installed == {}
    # ...and every re-homed tenant still forwards through probe packets.
    assert drain.rehomed  # the busiest switch had tenants to move
    for tenant_id in drain.rehomed:
        assert victim not in fabric.tenants[tenant_id].switches
        assert fabric.probe_tenant(tenant_id)

    # Churn keeps working on the degraded fabric.
    more = synthesize_churn(CONFIG, rng=DEFAULT_SEED + 1)
    shifted = [e for e in more if e.kind.value != "modify"][:100]
    engine = FabricChurnEngine(fabric)
    for event in shifted:
        # Re-used tenant ids collide with churn survivors; that is fine —
        # the orchestrator rejects duplicates and the invariant must hold
        # regardless.
        engine.apply(event)
    assert fabric.check_invariant() == []
