"""FabricTopology model: validation, lookups, and the canned shapes."""

import pytest

from repro.core.spec import SwitchSpec
from repro.errors import PlacementError
from repro.fabric import FabricLink, FabricTopology, SwitchNode, link_key


def test_link_key_is_order_independent():
    assert link_key("sw1", "sw0") == ("sw0", "sw1")
    assert link_key("sw0", "sw1") == ("sw0", "sw1")
    assert FabricLink("sw1", "sw0").key == ("sw0", "sw1")


def test_node_validation():
    with pytest.raises(PlacementError):
        SwitchNode("")
    with pytest.raises(PlacementError):
        SwitchNode("sw0", max_recirculations=-1)


def test_link_validation():
    with pytest.raises(PlacementError):
        FabricLink("sw0", "sw0")
    with pytest.raises(PlacementError):
        FabricLink("sw0", "sw1", capacity_gbps=0.0)


def test_topology_rejects_duplicates_and_dangling_links():
    with pytest.raises(PlacementError):
        FabricTopology([SwitchNode("sw0"), SwitchNode("sw0")])
    with pytest.raises(PlacementError):
        FabricTopology([])
    nodes = [SwitchNode("sw0"), SwitchNode("sw1")]
    with pytest.raises(PlacementError):
        FabricTopology(nodes, [FabricLink("sw0", "ghost")])
    with pytest.raises(PlacementError):
        FabricTopology(
            nodes, [FabricLink("sw0", "sw1"), FabricLink("sw1", "sw0")]
        )


def test_lookups():
    topo = FabricTopology(
        [SwitchNode("b"), SwitchNode("a"), SwitchNode("c")],
        [FabricLink("a", "b", 100.0), FabricLink("b", "c", 200.0)],
    )
    assert topo.switch_names == ["a", "b", "c"]
    assert topo.link_between("b", "a").capacity_gbps == 100.0
    assert topo.link_between("a", "c") is None
    assert topo.neighbors("b") == ["a", "c"]
    assert topo.neighbors("a") == ["b"]
    with pytest.raises(PlacementError):
        topo.neighbors("ghost")


def test_full_mesh_shape():
    topo = FabricTopology.full_mesh(4, link_capacity_gbps=123.0)
    assert topo.switch_names == ["sw0", "sw1", "sw2", "sw3"]
    assert len(topo.links) == 6  # n*(n-1)/2
    for link in topo.links.values():
        assert link.capacity_gbps == 123.0
    assert topo.neighbors("sw2") == ["sw0", "sw1", "sw3"]


def test_ring_shape():
    assert len(FabricTopology.ring(1).links) == 0
    assert len(FabricTopology.ring(2).links) == 1
    topo = FabricTopology.ring(5)
    assert len(topo.links) == 5
    assert topo.neighbors("sw0") == ["sw1", "sw4"]
    with pytest.raises(PlacementError):
        FabricTopology.ring(0)
    with pytest.raises(PlacementError):
        FabricTopology.full_mesh(0)


def test_heterogeneous_specs_survive():
    small = SwitchSpec(stages=2, blocks_per_stage=2)
    topo = FabricTopology(
        [SwitchNode("big"), SwitchNode("small", spec=small, max_recirculations=0)]
    )
    assert topo.nodes["small"].spec.stages == 2
    assert topo.nodes["small"].max_recirculations == 0
    assert topo.nodes["big"].max_recirculations == 2
