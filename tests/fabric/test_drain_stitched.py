"""Coverage gap: drain/undrain while cross-switch *stitched* tenants are
active.  Draining a switch that hosts stitch segments must re-home or
evict every affected tenant, renormalize link loads, and leave the fabric
bit-identity invariant intact; undraining must return the switch to
service for new stitched admits."""

import pytest

from repro.fabric import FabricOrchestrator, FabricTopology

from .conftest import chain

#: A 6-NF chain cannot single-home on the short 2-stage pipeline
#: (K = 2 * (1+1) = 4 virtual stages), so admits must stitch.
LONG = dict(nf_types=(1, 2, 3, 4, 5, 6), rules=(2, 2, 2, 2, 2, 2))


@pytest.fixture
def stitched_fabric(short_spec):
    """A 3-switch mesh pre-loaded with stitched tenants, plus the map of
    tenant -> switches for those that span two switches."""
    topo = FabricTopology.full_mesh(3, spec=short_spec, max_recirculations=1)
    fabric = FabricOrchestrator(topo, num_types=6, with_dataplane=False)
    stitched = {}
    for tenant in range(1, 9):
        result = fabric.admit(chain(tenant, **LONG))
        if result.ok and result.stitched:
            stitched[tenant] = tuple(result.switches)
    assert stitched, "the short pipeline was expected to force stitching"
    assert fabric.check_invariant() == []
    return fabric, stitched


def test_drain_rehomes_or_evicts_stitched_tenants(stitched_fabric):
    fabric, stitched = stitched_fabric
    victim = stitched[min(stitched)][0]
    affected = {t for t, switches in stitched.items() if victim in switches}
    assert affected

    report = fabric.drain(victim)
    assert report.switch == victim
    # Every tenant that had a segment on the victim was handled, one way
    # or the other — none may silently keep state on a drained switch.
    assert affected <= set(report.rehomed) | set(report.evicted)
    assert fabric.shards[victim].tenants == {}
    assert victim not in fabric.active_switches
    # The paper-critical audit: placement state, backplane accounting and
    # link loads all recompute bit-identically after the drain.
    assert fabric.check_invariant() == []

    # Survivors only reference active switches.
    for tenant, record in sorted(fabric.tenants.items()):
        assert victim not in record.switches, f"tenant {tenant}"


def test_undrain_returns_the_switch_to_stitching_service(stitched_fabric):
    fabric, stitched = stitched_fabric
    victim = stitched[min(stitched)][0]
    fabric.drain(victim)
    assert fabric.check_invariant() == []

    fabric.undrain(victim)
    assert victim in fabric.active_switches
    assert fabric.check_invariant() == []

    # New long chains admit again, and the fabric may stitch through the
    # returned switch.
    admitted = []
    for tenant in range(100, 110):
        result = fabric.admit(chain(tenant, **LONG))
        if result.ok:
            admitted.append((tenant, tuple(result.switches)))
    assert admitted
    assert any(victim in switches for _t, switches in admitted)
    assert fabric.check_invariant() == []


def test_rolling_drain_under_stitched_load_keeps_the_invariant(short_spec):
    topo = FabricTopology.full_mesh(4, spec=short_spec, max_recirculations=1)
    fabric = FabricOrchestrator(topo, num_types=6, with_dataplane=False)
    for tenant in range(1, 10):
        fabric.admit(chain(tenant, **LONG))
    assert any(record.stitched for record in fabric.tenants.values())
    # Serially drain and undrain every switch — the rolling-upgrade drill
    # — auditing the fabric after each administrative step.
    for name in list(fabric.topology.switch_names):
        report = fabric.drain(name)
        assert report.switch == name
        assert fabric.shards[name].tenants == {}
        assert fabric.check_invariant() == [], f"after drain {name}"
        fabric.undrain(name)
        assert fabric.check_invariant() == [], f"after undrain {name}"
    assert fabric.tenants, "rolling drain evicted every tenant"
