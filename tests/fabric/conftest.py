"""Shared fixtures for the fabric tests: tiny switch specs and a chain
factory with deterministic tenant numbering."""

import pytest

from repro.core.spec import SFC, SwitchSpec


@pytest.fixture
def tiny_spec() -> SwitchSpec:
    """3 stages x 4 blocks of 100 entries, 10 Gbps backplane — small enough
    that a couple of tenants saturate one switch."""
    return SwitchSpec(
        stages=3,
        blocks_per_stage=4,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=10.0,
    )


@pytest.fixture
def short_spec() -> SwitchSpec:
    """2 stages, R=1 pairs it with K=4 virtual stages — chains longer than
    4 NFs *must* stitch across switches."""
    return SwitchSpec(
        stages=2,
        blocks_per_stage=8,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=100.0,
    )


def chain(
    tenant_id: int,
    nf_types=(1, 2, 3),
    rules=(10, 10, 10),
    bandwidth_gbps: float = 1.0,
) -> SFC:
    """A small deterministic chain request for tenant ``tenant_id``."""
    return SFC(
        name=f"tenant-{tenant_id}",
        nf_types=tuple(nf_types),
        rules=tuple(rules),
        bandwidth_gbps=bandwidth_gbps,
        tenant_id=tenant_id,
    )
