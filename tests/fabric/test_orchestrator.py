"""FabricOrchestrator lifecycle: routing, spillover, stitching commits,
modify re-homing, and drain/failover."""

import pytest

from repro.errors import PlacementError
from repro.fabric import (
    FabricOrchestrator,
    FabricTopology,
    LeastBackplanePartitioner,
)

from .conftest import chain


@pytest.fixture
def fabric(tiny_spec):
    """4 tiny switches, full mesh, with the simulated data plane."""
    topo = FabricTopology.full_mesh(4, spec=tiny_spec)
    return FabricOrchestrator(topo, num_types=3)


def test_single_switch_admit_and_evict(fabric):
    result = fabric.admit(chain(1))
    assert result.ok and not result.stitched
    assert len(result.switches) == 1
    record = fabric.tenants[1]
    assert record.switches == result.switches
    assert record.segments[0].start == 0 and record.segments[0].stop == 3
    assert fabric.probe_tenant(1)
    assert fabric.check_invariant() == []
    assert result.rules_added > 0

    evicted = fabric.evict(1)
    assert evicted.ok and evicted.rules_deleted > 0
    assert fabric.tenants == {}
    assert fabric.check_invariant() == []
    assert all(s.state.entries.sum() == 0 for s in fabric.shards.values())


def test_duplicate_and_unknown_tenants_are_rejected(fabric):
    assert fabric.admit(chain(1)).ok
    dup = fabric.admit(chain(1))
    assert not dup.ok and dup.reason == "duplicate-tenant"
    missing = fabric.evict(99)
    assert not missing.ok and missing.reason == "unknown-tenant"
    assert not fabric.modify(99, chain(99)).ok
    snap = fabric.metrics_snapshot()
    assert snap["counters"]["rejected"] == 3
    assert snap["counters"]["rejected.duplicate-tenant"] == 1
    assert snap["counters"]["rejected.unknown-tenant"] == 2


def test_spillover_when_preferred_shard_is_full(fabric):
    # Two tenants whose hash ring walk starts at the same switch; each one
    # nearly fills a tiny switch's 10 Gbps backplane, so the second must
    # spill to its second choice.
    first = fabric.partitioner.order(chain(0, bandwidth_gbps=8.0), fabric)
    follower = next(
        t for t in range(1, 200)
        if fabric.partitioner.order(chain(t, bandwidth_gbps=8.0), fabric)[0]
        == first[0]
    )
    a = fabric.admit(chain(0, bandwidth_gbps=8.0))
    b = fabric.admit(chain(follower, bandwidth_gbps=8.0))
    assert a.ok and a.spillover == 0
    assert b.ok and b.spillover > 0
    assert b.switches[0] != first[0]
    assert fabric.metrics_snapshot()["counters"]["spillovers"] == 1
    assert fabric.check_invariant() == []


def test_per_switch_latency_histograms_populate(fabric):
    fabric.admit(chain(1))
    snap = fabric.metrics_snapshot()
    hists = snap["histograms"]
    landed = fabric.tenants[1].switches[0]
    assert hists[f"admit_latency_s.{landed}"]["count"] >= 1
    assert hists[f"admit_latency_s.{landed}"]["p50"] is not None


LONG = dict(nf_types=(1, 2, 3, 4, 5, 6), rules=(2, 2, 2, 2, 2, 2))


@pytest.fixture
def short_fabric(short_spec):
    topo = FabricTopology.full_mesh(3, spec=short_spec, max_recirculations=1)
    return FabricOrchestrator(topo, num_types=6)


def test_stitched_admit_commits_both_segments(short_fabric):
    result = short_fabric.admit(chain(7, bandwidth_gbps=10.0, **LONG))
    assert result.ok and result.stitched
    record = short_fabric.tenants[7]
    assert len(record.segments) == 2
    head, tail = record.segments
    assert head.stop == tail.start  # contiguous cover of the chain
    assert head.start == 0 and tail.stop == 6
    assert record.links and short_fabric.links[record.links[0]].load_gbps == 10.0
    assert short_fabric.probe_tenant(7)
    assert short_fabric.check_invariant() == []
    assert short_fabric.metrics_snapshot()["counters"]["stitched"] == 1

    evicted = short_fabric.evict(7)
    assert evicted.ok and evicted.stitched
    assert all(l.load_gbps == 0.0 for l in short_fabric.links.values())
    assert short_fabric.check_invariant() == []


def test_modify_in_place_is_hitless(fabric):
    fabric.admit(chain(1))
    result = fabric.modify(1, chain(1, nf_types=(2, 3), rules=(5, 5)))
    assert result.ok and result.hitless
    assert fabric.tenants[1].sfc.nf_types == (2, 3)
    assert fabric.probe_tenant(1)
    assert fabric.check_invariant() == []


def test_modify_rehomes_stitched_tenant_to_single_switch(short_fabric):
    short_fabric.admit(chain(7, bandwidth_gbps=10.0, **LONG))
    result = short_fabric.modify(7, chain(7, nf_types=(1, 2), rules=(2, 2)))
    assert result.ok and not result.hitless
    record = short_fabric.tenants[7]
    assert not record.stitched and record.links == ()
    assert all(l.load_gbps == 0.0 for l in short_fabric.links.values())
    assert short_fabric.probe_tenant(7)
    assert short_fabric.check_invariant() == []


def test_failed_modify_restores_the_old_chain(fabric):
    fabric.admit(chain(1))
    old = fabric.tenants[1].sfc
    # 1000-rule NFs blow past a tiny switch's 400 entries per stage — the
    # new chain fits nowhere on the fabric.
    result = fabric.modify(1, chain(1, rules=(1000, 1000, 1000)))
    assert not result.ok
    assert fabric.tenants[1].sfc == old
    assert fabric.probe_tenant(1)
    assert fabric.check_invariant() == []
    assert fabric.metrics_snapshot()["counters"].get(
        "modify_restore_failed", 0
    ) == 0


def test_drain_rehomes_everything(fabric):
    for tenant in range(8):
        assert fabric.admit(chain(tenant)).ok
    victim = fabric.tenants[0].switches[0]
    hosted = [t for t, r in fabric.tenants.items() if victim in r.switches]
    report = fabric.drain(victim)
    assert report.switch == victim
    assert sorted(report.rehomed) == sorted(hosted)
    assert report.num_evicted == 0
    # The drained shard is empty of tenants and rules...
    shard = fabric.shards[victim]
    assert shard.tenants == {} and shard.state.entries.sum() == 0
    assert shard.installer.installed == {}
    # ...every re-homed tenant still forwards end to end...
    assert all(fabric.probe_tenant(t) for t in report.rehomed)
    # ...and nobody landed back on the drained switch.
    assert all(victim not in fabric.tenants[t].switches for t in fabric.tenants)
    assert fabric.check_invariant() == []


def test_drain_evicts_what_cannot_rehome(tiny_spec):
    topo = FabricTopology.full_mesh(2, spec=tiny_spec)
    fabric = FabricOrchestrator(
        topo, num_types=3, partitioner=LeastBackplanePartitioner()
    )
    # Least-backplane balancing puts one 8 Gbps tenant on each switch; after
    # a drain the survivor has no room for the second one.
    assert fabric.admit(chain(0, bandwidth_gbps=8.0)).ok
    assert fabric.admit(chain(1, bandwidth_gbps=8.0)).ok
    victim = fabric.tenants[0].switches[0]
    report = fabric.drain(victim)
    assert report.rehomed == ()
    assert report.evicted == (0,)
    assert len(fabric.tenants) == 1
    assert fabric.check_invariant() == []


def test_drain_then_undrain(fabric):
    fabric.admit(chain(1))
    fabric.drain("sw0")
    fabric.drain("sw1")
    fabric.drain("sw2")
    fabric.drain("sw3")
    refused = fabric.admit(chain(2))
    assert not refused.ok and refused.reason == "no-active-switch"
    assert len(fabric.tenants) == 0  # tenant 1 had nowhere to go
    fabric.undrain("sw0")
    assert fabric.active_switches == ["sw0"]
    assert fabric.admit(chain(2)).ok
    assert fabric.tenants[2].switches == ("sw0",)
    with pytest.raises(PlacementError):
        fabric.drain("ghost")
    with pytest.raises(PlacementError):
        fabric.undrain("ghost")


def test_summary_shape(fabric):
    fabric.admit(chain(1))
    summary = fabric.summary()
    assert set(summary) == {
        "switches", "links", "tenants", "stitched_tenants", "globalopt"
    }
    assert summary["tenants"] == 1 and summary["stitched_tenants"] == 0
    assert summary["globalopt"]["runs"] == 0
    assert len(summary["switches"]) == 4
    assert len(summary["links"]) == 6
    home = fabric.tenants[1].switches[0]
    assert summary["switches"][home]["tenants"] == 1
    assert not summary["switches"][home]["drained"]
