"""Partitioner strategies: determinism, stickiness, and load-awareness."""

import pytest

from repro.errors import PlacementError
from repro.fabric import (
    PARTITIONERS,
    ConsistentHashPartitioner,
    FabricOrchestrator,
    FabricTopology,
    LeastBackplanePartitioner,
    ModuloPartitioner,
    make_partitioner,
)

from .conftest import chain


@pytest.fixture
def fabric(tiny_spec):
    topo = FabricTopology.full_mesh(4, spec=tiny_spec)
    return FabricOrchestrator(topo, num_types=3, with_dataplane=False)


def test_hash_order_is_a_permutation_and_process_stable(fabric):
    part = ConsistentHashPartitioner()
    for tenant in range(20):
        order = part.order(chain(tenant), fabric)
        assert sorted(order) == ["sw0", "sw1", "sw2", "sw3"]
        # A fresh instance (fresh ring cache) agrees: the hash is not
        # Python's seed-randomized builtin.
        assert ConsistentHashPartitioner().order(chain(tenant), fabric) == order


def test_hash_order_spreads_tenants(fabric):
    part = ConsistentHashPartitioner()
    owners = {part.order(chain(t), fabric)[0] for t in range(64)}
    assert len(owners) == 4  # every switch owns someone


def test_hash_is_sticky_under_drain(fabric):
    part = ConsistentHashPartitioner()
    before = {t: part.order(chain(t), fabric) for t in range(64)}
    fabric.drained.add("sw2")
    for tenant, old in before.items():
        new = part.order(chain(tenant), fabric)
        assert "sw2" not in new
        if old[0] != "sw2":
            # Only the drained switch's arc re-homes; everyone else keeps
            # their preferred shard.
            assert new[0] == old[0]
        else:
            # Displaced tenants fall to their previous second choice.
            assert new[0] == old[1]


def test_least_backplane_prefers_idle_switches(fabric):
    part = LeastBackplanePartitioner()
    assert part.order(chain(0), fabric) == ["sw0", "sw1", "sw2", "sw3"]
    fabric.shards["sw0"].state.add_backplane(5.0)
    fabric.shards["sw1"].state.add_backplane(1.0)
    order = part.order(chain(0), fabric)
    assert order == ["sw2", "sw3", "sw1", "sw0"]
    assert "sw0" == order[-1]  # most loaded goes last


def test_least_backplane_skips_drained(fabric):
    fabric.drained.add("sw0")
    assert LeastBackplanePartitioner().order(chain(0), fabric) == [
        "sw1", "sw2", "sw3",
    ]


def test_registry_and_factory():
    assert set(PARTITIONERS) == {"hash", "least-backplane", "modulo"}
    assert isinstance(make_partitioner("hash"), ConsistentHashPartitioner)
    assert isinstance(
        make_partitioner("least-backplane"), LeastBackplanePartitioner
    )
    assert isinstance(make_partitioner("modulo"), ModuloPartitioner)
    with pytest.raises(PlacementError):
        make_partitioner("round-robin")
    with pytest.raises(PlacementError):
        ConsistentHashPartitioner(replicas=0)
