"""Shared fixtures for the controller tests: a tiny 3-stage switch and a
chain factory with deterministic tenant numbering."""

import pytest

from repro.core.spec import SFC, ProblemInstance, SwitchSpec


@pytest.fixture
def tiny_switch() -> SwitchSpec:
    """3 stages x 4 blocks of 100 entries, 100 Gbps backplane."""
    return SwitchSpec(
        stages=3,
        blocks_per_stage=4,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=100.0,
    )


@pytest.fixture
def tiny_instance(tiny_switch) -> ProblemInstance:
    """An empty 3-type instance over the tiny switch (R = 2)."""
    return ProblemInstance(
        switch=tiny_switch, sfcs=(), num_types=3, max_recirculations=2
    )


def chain(
    tenant_id: int,
    nf_types=(1, 2, 3),
    rules=(10, 10, 10),
    bandwidth_gbps: float = 1.0,
) -> SFC:
    """A small deterministic chain request for tenant ``tenant_id``."""
    return SFC(
        name=f"tenant-{tenant_id}",
        nf_types=tuple(nf_types),
        rules=tuple(rules),
        bandwidth_gbps=bandwidth_gbps,
        tenant_id=tenant_id,
    )
