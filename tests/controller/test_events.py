"""Churn-stream tests: synthesis determinism and shape, JSONL round-trip,
replay reporting, and the metrics layer."""

import pytest

from repro.controller.events import (
    ChurnConfig,
    ChurnEngine,
    ChurnEvent,
    EventKind,
    load_events,
    save_events,
    synthesize_churn,
)
from repro.controller.controller import SfcController
from repro.controller.metrics import MetricsRegistry
from repro.errors import PlacementError, WorkloadError
from repro.traffic.workload import WorkloadConfig


@pytest.fixture
def config() -> ChurnConfig:
    return ChurnConfig(
        duration_s=5.0,
        arrival_rate_per_s=6.0,
        mean_lifetime_s=2.0,
        modify_fraction=0.3,
        workload=WorkloadConfig(
            num_sfcs=0, num_types=3, avg_chain_length=2, chain_length_spread=1,
            rules_min=1, rules_max=5,
        ),
    )


def test_synthesis_is_deterministic_and_ordered(config):
    a = synthesize_churn(config, rng=3)
    b = synthesize_churn(config, rng=3)
    assert a == b
    assert a != synthesize_churn(config, rng=4)
    assert a == sorted(a, key=lambda e: (e.time_s, e.seq))
    assert all(0.0 < e.time_s < config.duration_s for e in a)


def test_synthesis_event_shape(config):
    events = synthesize_churn(config, rng=3)
    arrivals = [e for e in events if e.kind is EventKind.ARRIVAL]
    departures = [e for e in events if e.kind is EventKind.DEPARTURE]
    modifies = [e for e in events if e.kind is EventKind.MODIFY]
    # One arrival per unique tenant, at most one departure/modify each.
    tenants = [e.tenant_id for e in arrivals]
    assert len(set(tenants)) == len(tenants)
    assert set(e.tenant_id for e in departures) <= set(tenants)
    assert set(e.tenant_id for e in modifies) <= set(tenants)
    assert all(e.sfc is not None and e.sfc.tenant_id == e.tenant_id for e in arrivals)
    assert all(e.sfc is not None for e in modifies)
    assert all(e.sfc is None for e in departures)
    # Per-tenant causal order: arrival < modify < departure.
    first = {e.tenant_id: e.time_s for e in arrivals}
    last = {e.tenant_id: e.time_s for e in departures}
    for e in modifies:
        assert first[e.tenant_id] <= e.time_s
        if e.tenant_id in last:
            assert e.time_s <= last[e.tenant_id]


def test_jsonl_roundtrip(config, tmp_path):
    events = synthesize_churn(config, rng=3)
    path = tmp_path / "churn.jsonl"
    save_events(path, events)
    assert load_events(path) == events


def test_replay_report(tiny_instance, config):
    controller = SfcController(tiny_instance, with_dataplane=False)
    events = synthesize_churn(config, rng=3)
    report = ChurnEngine(controller).replay(events)
    assert report.num_events == len(events)
    summary = report.summary()
    assert summary["admitted"] >= 1
    assert summary["admitted"] - summary["evicted"] == len(controller.tenants)
    assert summary["events_per_sec"] > 0
    assert 0 <= summary["admit_p50_ms"] <= summary["admit_p99_ms"]
    described = report.describe()
    assert "events/s" in described and "p99" in described


def test_bad_configs_rejected():
    with pytest.raises(WorkloadError):
        ChurnConfig(duration_s=0)
    with pytest.raises(WorkloadError):
        ChurnConfig(modify_fraction=1.5)
    with pytest.raises(WorkloadError):
        ChurnEngine(None).apply(
            ChurnEvent(time_s=0.0, seq=0, kind=EventKind.ARRIVAL, tenant_id=1)
        )


def test_metrics_registry():
    registry = MetricsRegistry()
    registry.inc("admitted")
    registry.inc("admitted", 2)
    registry.gauge("tenants").set(7)
    snap = registry.snapshot()
    assert snap == {
        "counters": {"admitted": 3},
        "gauges": {"tenants": 7.0},
        "histograms": {},
    }
    with pytest.raises(PlacementError):
        registry.counter("admitted").inc(-1)
    # Snapshots are frozen copies, not views.
    registry.inc("admitted")
    assert snap["counters"]["admitted"] == 3


def test_report_with_zero_successful_admits_is_nan_free(tiny_instance):
    """Regression: an all-rejected replay (e.g. a drained fabric) must not
    surface NaN percentiles — explicit ``None`` everywhere."""
    import json
    import math

    controller = SfcController(tiny_instance, with_dataplane=False)
    # Departures for tenants that never arrived: every event is rejected.
    events = [
        ChurnEvent(time_s=float(i), seq=i, kind=EventKind.DEPARTURE, tenant_id=i)
        for i in range(5)
    ]
    report = ChurnEngine(controller).replay(events)
    assert report.admit_latency_percentile(50) is None
    assert report.admit_latency_percentile(99) is None
    summary = report.summary()
    assert summary["admitted"] == 0 and summary["rejected"] == 5
    assert summary["admit_p50_ms"] is None
    assert summary["admit_p99_ms"] is None
    assert not any(
        isinstance(v, float) and math.isnan(v) for v in summary.values()
    )
    # Serializes as standard JSON (explicit nulls, never NaN literals).
    payload = json.dumps(summary, allow_nan=False)
    assert json.loads(payload)["admit_p50_ms"] is None
    assert "admit latency n/a" in report.describe()


def test_empty_report_is_nan_free():
    # An untouched report (no events at all) behaves the same way.
    from repro.controller.events import ChurnReport

    empty = ChurnReport()
    assert empty.num_events == 0 and empty.events_per_sec == 0.0
    assert empty.admit_latency_percentile(50) is None
    assert empty.summary()["admit_p50_ms"] is None
    assert "admit latency n/a" in empty.describe()
