"""Metrics layer: counters, gauges, the fixed-bucket histogram, and the
deterministic registry snapshot."""

import json

import numpy as np
import pytest

from repro.controller.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    MetricsRegistry,
)
from repro.errors import PlacementError


def test_counter_and_gauge_basics():
    registry = MetricsRegistry()
    registry.inc("admitted")
    registry.inc("admitted", 2)
    assert registry.counter("admitted").value == 3
    with pytest.raises(PlacementError):
        registry.inc("admitted", -1)
    registry.gauge("tenants").set(7)
    assert registry.gauge("tenants").value == 7.0


def test_histogram_validates_buckets():
    with pytest.raises(PlacementError):
        Histogram("h", buckets=())
    with pytest.raises(PlacementError):
        Histogram("h", buckets=(1.0, 1.0))
    with pytest.raises(PlacementError):
        Histogram("h", buckets=(2.0, 1.0))


def test_histogram_observe_buckets_inclusively():
    hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
    for value in (0.5, 1.0, 1.5, 2.0, 3.0, 9.0):
        hist.observe(value)
    # le-style: 1.0 lands in the first bucket, 2.0 in the second.
    assert hist.counts == [2, 2, 1, 1]
    assert hist.count == 6
    assert hist.sum == pytest.approx(17.0)


def test_histogram_quantiles_interpolate_and_clamp():
    hist = Histogram("h", buckets=(1.0, 2.0, 4.0))
    assert hist.quantile(50) is None  # empty -> None, never NaN
    for value in (0.5, 0.5, 1.5, 1.5):
        hist.observe(value)
    # p50 -> rank 2 at the first bucket's edge; p100 -> top of (1, 2].
    assert hist.quantile(50) == pytest.approx(1.0)
    assert hist.quantile(100) == pytest.approx(2.0)
    assert 0.0 < hist.quantile(25) <= 1.0
    hist.observe(100.0)  # overflow clamps to the last finite bound
    assert hist.quantile(100) == pytest.approx(4.0)
    with pytest.raises(PlacementError):
        hist.quantile(101)


def test_histogram_tracks_percentile_estimates():
    rng = np.random.default_rng(7)
    hist = Histogram("h")  # default latency buckets
    values = rng.exponential(2e-3, size=2000)
    for value in values:
        hist.observe(float(value))
    true_p50 = float(np.percentile(values, 50))
    estimate = hist.quantile(50)
    # The estimate is bucket-resolution accurate: the truth lies within
    # the bucket the estimate came from.
    idx = next(i for i, b in enumerate(DEFAULT_LATENCY_BUCKETS) if true_p50 <= b)
    lo = 0.0 if idx == 0 else DEFAULT_LATENCY_BUCKETS[idx - 1]
    assert lo <= estimate <= DEFAULT_LATENCY_BUCKETS[idx]


def test_registry_snapshot_is_sorted_and_json_native():
    registry = MetricsRegistry()
    registry.inc("zebra")
    registry.inc("alpha", 2)
    registry.gauge("mid").set(1.5)
    registry.observe("lat.b", 0.002)
    registry.observe("lat.a", 0.004)
    snap = registry.snapshot()
    assert list(snap) == ["counters", "gauges", "histograms"]
    assert list(snap["counters"]) == ["alpha", "zebra"]
    assert list(snap["histograms"]) == ["lat.a", "lat.b"]
    assert snap["histograms"]["lat.b"]["count"] == 1
    assert snap["histograms"]["lat.b"]["buckets"][-1][0] is None  # overflow row
    # Round-trips through standard JSON (no NaN, no numpy scalars).
    assert json.loads(json.dumps(snap, allow_nan=False)) == snap
    # Identical metric activity yields byte-identical serialization.
    other = MetricsRegistry()
    other.observe("lat.a", 0.004)
    other.observe("lat.b", 0.002)
    other.inc("alpha", 2)
    other.inc("zebra")
    other.gauge("mid").set(1.5)
    assert json.dumps(other.snapshot()) == json.dumps(snap)


def test_histogram_custom_buckets_only_apply_at_creation():
    registry = MetricsRegistry()
    first = registry.histogram("h", buckets=(1.0, 2.0))
    again = registry.histogram("h", buckets=(5.0,))
    assert again is first and again.bounds == (1.0, 2.0)
