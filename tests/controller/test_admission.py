"""Admission-control screens: every reason code fires on the scenario it
guards, and the screen never rejects a placeable chain by mistake."""

import pytest

from repro.controller.admission import AdmissionPolicy, check_admission
from repro.core.state import PipelineState

from tests.controller.conftest import chain


@pytest.fixture
def state(tiny_instance) -> PipelineState:
    return PipelineState(tiny_instance)


def test_admits_a_small_chain(state):
    decision = check_admission(chain(1), state)
    assert decision.admitted
    assert bool(decision)
    assert decision.reason is None


def test_tenant_cap(state):
    policy = AdmissionPolicy(max_tenants=2)
    decision = check_admission(chain(1), state, policy, live_tenants=2)
    assert not decision
    assert decision.reason == "capacity-tenants"
    assert check_admission(chain(1), state, policy, live_tenants=1).admitted


def test_chain_too_long(state):
    # K = 3 stages * (2 + 1) = 9 virtual stages; a 10-NF chain cannot keep
    # strictly increasing stages.  Types repeat to keep the spec valid.
    sfc = chain(1, nf_types=(1, 2, 3) * 3 + (1,), rules=(1,) * 10)
    decision = check_admission(sfc, state)
    assert decision.reason == "chain-too-long"


def test_unknown_nf_type(state):
    sfc = chain(1, nf_types=(1, 9), rules=(5, 5))
    decision = check_admission(sfc, state)
    assert decision.reason == "unknown-nf-type"
    assert "9" in decision.detail


def test_backplane_exhausted(state):
    state.add_backplane(99.5)
    decision = check_admission(chain(1, bandwidth_gbps=1.0), state)
    assert decision.reason == "backplane-exhausted"
    # Disabling the check lets it through (the solver would still fail).
    relaxed = AdmissionPolicy(check_backplane=False)
    assert check_admission(chain(1, bandwidth_gbps=1.0), state, relaxed).admitted


def test_backplane_counts_minimum_passes(state):
    # A 4-NF chain on a 3-stage switch needs >= 2 passes, so 2x bandwidth.
    state.add_backplane(100.0 - 45.0)
    one_pass = chain(1, nf_types=(1, 2, 3), rules=(1, 1, 1), bandwidth_gbps=40.0)
    two_pass = chain(2, nf_types=(1, 2, 3, 1), rules=(1, 1, 1, 1), bandwidth_gbps=40.0)
    assert check_admission(one_pass, state).admitted
    assert check_admission(two_pass, state).reason == "backplane-exhausted"


def test_memory_exhausted(state):
    # 12 blocks x 100 entries = 1200 entries total; ask for more.
    sfc = chain(1, nf_types=(1, 2, 3), rules=(500, 500, 500))
    decision = check_admission(sfc, state)
    assert decision.reason == "memory-exhausted"
    relaxed = AdmissionPolicy(check_memory=False)
    assert check_admission(sfc, state, relaxed).admitted


def test_memory_counts_partial_block_slack(state):
    # Fill stage memory so only the slack inside type-1's part-filled block
    # remains: stages 1-2 fully packed by type 2, stage 0 holds 3 full
    # type-2 blocks plus 40 entries of type 1 (60 entries of slack).
    state.add_logical_nf(1, 1, 400)
    state.add_logical_nf(1, 2, 400)
    state.add_logical_nf(1, 0, 300)
    state.add_logical_nf(0, 0, 40)
    assert all(state.free_blocks(s) == 0 for s in range(3))
    fits_slack = chain(1, nf_types=(1,), rules=(60,))
    too_big = chain(2, nf_types=(1,), rules=(61,))
    assert check_admission(fits_slack, state).admitted
    assert check_admission(too_big, state).reason == "memory-exhausted"
