"""The controller subsystem's acceptance tests (ISSUE criteria):

(a) after a 500+-event seeded churn stream, the controller's incremental
    ``PipelineState`` accounting is **bit-identical** to a from-scratch
    recomputation of the surviving placement;

(b) hitless updates: a ``process_batch`` interleaved between *any* two
    installer phases never observes a partially installed tenant — every
    probe packet executes one complete rule generation or none at all.
"""

import numpy as np
import pytest

from repro.controller import ChurnConfig, ChurnEngine, SfcController, synthesize_churn
from repro.controller.install import TENANT_MAP, TransactionalInstaller, WIRE_BASE
from repro.core.state import PipelineState
from repro.core.verify import check_placement
from repro.dataplane.packet import Packet
from repro.traffic.workload import WorkloadConfig, make_instance


CHURN = ChurnConfig(
    duration_s=30.0,
    arrival_rate_per_s=12.0,
    mean_lifetime_s=6.0,
    modify_fraction=0.25,
    workload=WorkloadConfig(
        num_sfcs=0, num_types=6, avg_chain_length=3, chain_length_spread=2,
        rules_min=1, rules_max=4, mean_bandwidth_gbps=1.0,
        max_bandwidth_gbps=4.0,
    ),
)


@pytest.fixture(scope="module")
def churn_events():
    events = synthesize_churn(CHURN, rng=20220522)
    assert len(events) >= 500, f"stream too short for the criterion: {len(events)}"
    return events


def fresh_controller() -> SfcController:
    instance = make_instance(
        CHURN.workload, max_recirculations=2, rng=20220522
    )
    return SfcController(instance)


def test_churn_invariant_bit_identical_accounting(churn_events):
    controller = fresh_controller()
    report = ChurnEngine(controller).replay(churn_events)
    assert report.num_events == len(churn_events)
    summary = report.summary()
    assert summary["admitted"] >= 100
    assert summary["evicted"] >= 50
    assert len(controller.tenants) >= 1  # stream horizon leaves survivors

    reference = PipelineState.from_placement(
        controller.placement,
        reserve_physical_block=controller.reserve_physical_block,
    )
    # Exact integer accounting, array for array ...
    assert np.array_equal(controller.state.entries, reference.entries)
    assert np.array_equal(controller.state.nf_blocks, reference.nf_blocks)
    assert np.array_equal(controller.state.physical, reference.physical)
    for s in range(controller.base.switch.stages):
        assert controller.state.blocks_at_stage(s) == reference.blocks_at_stage(s)
    # ... and the float backplane sum to the last bit.
    assert controller.state.backplane_gbps == reference.backplane_gbps

    # The surviving placement is valid under the paper's constraints.
    assert check_placement(controller.placement, require_all_types=False) == []

    # The data plane mirrors the survivors exactly: one map entry and one
    # live rule generation per tenant.
    installer = controller.installer
    assert set(installer.installed) == set(controller.tenants)
    _stage, map_table = controller.pipeline.find_table(TENANT_MAP)
    assert map_table.num_entries == len(controller.tenants)


def test_churn_stream_is_hitless_under_interleaved_batches(churn_events, monkeypatch):
    """Between every pair of installer phases, probe the pipeline with a
    batch of packets.  Each packet is steered (via the tenant map) to
    exactly one wire-ID generation and must traverse that generation's
    tables *completely* — any partial install would show as a strict subset,
    any cross-generation mix as a different table list."""
    signatures: dict[int, list[str]] = {}
    original = TransactionalInstaller._compile_generation

    def recording(self, sfc, assignment, wire_id):
        compiled = original(self, sfc, assignment, wire_id)
        signatures[wire_id] = [nf.table_name for nf in compiled]
        return compiled

    monkeypatch.setattr(TransactionalInstaller, "_compile_generation", recording)

    controller = fresh_controller()
    engine = ChurnEngine(controller)
    probed = {"batches": 0, "packets": 0, "wired": 0}
    current_tenant = [0]

    def probe(phase, result):
        assert result.ok, f"{phase}: {result.errors}"
        tenants = [current_tenant[0], *sorted(controller.tenants)[:2]]
        results = controller.pipeline.process_batch(
            [Packet(tenant_id=t, pass_id=1) for t in tenants], trace=True
        )
        probed["batches"] += 1
        for t, pr in zip(tenants, results):
            probed["packets"] += 1
            applied = [x for x in pr.applied_tables() if x != TENANT_MAP]
            wire = pr.packet.tenant_id
            if wire == t:
                # Not steered: the tenant map has no entry for it, so no
                # generation (and no partial generation) may process it.
                assert applied == [], f"{phase}: detached tenant {t} hit {applied}"
            else:
                probed["wired"] += 1
                assert wire >= WIRE_BASE
                assert applied == signatures[wire], (
                    f"{phase}: tenant {t} observed {applied}, expected the "
                    f"complete generation {signatures[wire]}"
                )

    controller.installer.on_batch = probe
    for event in churn_events:
        current_tenant[0] = event.tenant_id
        engine.apply(event)

    # The property was actually exercised, in volume, on steered traffic.
    assert probed["batches"] >= 1000
    assert probed["wired"] >= 1000
