"""SfcController lifecycle tests: admit/evict/modify bookkeeping, rollback
on data-plane rejection, batch admission parity with the greedy solver, and
drift-bounded reconfiguration."""

import numpy as np
import pytest

from repro.controller import AdmissionPolicy, SfcController
from repro.core.greedy import greedy_place
from repro.core.spec import ProblemInstance, SwitchSpec
from repro.core.state import PipelineState
from repro.core.verify import check_placement
from repro.traffic.workload import WorkloadConfig, make_sfcs

from tests.controller.conftest import chain


def assert_state_matches_recompute(controller: SfcController) -> None:
    """The controller's invariant: incremental state == from-scratch state."""
    reference = PipelineState.from_placement(
        controller.placement,
        reserve_physical_block=controller.reserve_physical_block,
    )
    assert np.array_equal(controller.state.entries, reference.entries)
    assert np.array_equal(controller.state.nf_blocks, reference.nf_blocks)
    assert np.array_equal(controller.state.physical, reference.physical)
    assert controller.state.backplane_gbps == reference.backplane_gbps


@pytest.fixture
def controller(tiny_instance) -> SfcController:
    return SfcController(tiny_instance)


def test_admit_places_and_installs(controller):
    result = controller.admit(chain(1))
    assert result.ok and result.op == "admit"
    assert result.stages == (1, 2, 3)
    assert result.rules_added == 30
    assert 1 in controller.tenants
    assert controller.installer.installed[1].assignment == (1, 2, 3)
    assert_state_matches_recompute(controller)


def test_admit_rejects_duplicates_and_unknown_evicts(controller):
    assert controller.admit(chain(1)).ok
    dup = controller.admit(chain(1))
    assert not dup.ok and dup.reason == "duplicate-tenant"
    missing = controller.evict(99)
    assert not missing.ok and missing.reason == "unknown-tenant"
    snap = controller.metrics_snapshot()
    assert snap["counters"]["rejected"] == 2
    assert snap["counters"]["rejected.duplicate-tenant"] == 1
    assert snap["counters"]["rejected.unknown-tenant"] == 1


def test_evict_releases_everything(controller):
    controller.admit(chain(1))
    result = controller.evict(1)
    assert result.ok and result.rules_deleted == 30
    assert not controller.tenants
    assert controller.state.entries.sum() == 0
    assert controller.state.backplane_gbps == 0.0
    assert controller.pipeline.total_entries() == 0
    assert_state_matches_recompute(controller)


def test_modify_swaps_chain(controller):
    controller.admit(chain(1, bandwidth_gbps=2.0))
    result = controller.modify(1, chain(0, nf_types=(2, 1), rules=(5, 5)))
    assert result.ok and result.hitless
    assert result.rules_added == 10 and result.rules_deleted == 30
    assert controller.tenants[1].sfc.nf_types == (2, 1)
    assert controller.tenants[1].sfc.tenant_id == 1  # retagged to the target
    assert_state_matches_recompute(controller)


def test_modify_failure_keeps_old_chain(controller):
    controller.admit(chain(1))
    before = controller.state.snapshot()
    too_big = chain(0, nf_types=(1,), rules=(5000,))
    result = controller.modify(1, too_big)
    assert not result.ok and result.reason == "memory-exhausted"
    assert controller.tenants[1].sfc.rules == (10, 10, 10)
    assert np.array_equal(controller.state.entries, before.entries)
    assert controller.state.backplane_gbps == before.backplane_gbps
    assert_state_matches_recompute(controller)


def test_admission_policy_is_enforced(tiny_instance):
    controller = SfcController(tiny_instance, policy=AdmissionPolicy(max_tenants=1))
    assert controller.admit(chain(1)).ok
    rejected = controller.admit(chain(2))
    assert rejected.reason == "capacity-tenants"


def test_dataplane_rejection_rolls_back_control_plane(tiny_switch):
    """The control plane does not track the tenant map's SRAM block, so a
    chain needing every block of stage 0 passes placement but is rejected by
    the data plane — and the control plane must roll back to its snapshot."""
    from repro.dataplane.table import TableEntry

    def full_fidelity(sfc, position, nf_name):
        """Mirror every accounted rule entry onto the data plane."""
        return tuple(
            TableEntry(match={}, action="permit", priority=-(r + 1))
            for r in range(sfc.rules[position])
        )

    instance = ProblemInstance(
        switch=tiny_switch, sfcs=(), num_types=1, max_recirculations=0
    )
    controller = SfcController(instance, rule_factory=full_fidelity)
    full_stage = chain(1, nf_types=(1,), rules=(400,))
    result = controller.admit(full_stage)
    assert not result.ok and result.reason == "dataplane-rejected"
    assert not controller.tenants
    assert controller.state.entries.sum() == 0
    assert controller.state.physical.sum() == 0
    snap = controller.metrics_snapshot()
    assert snap["counters"]["installs_rolled_back"] == 1
    assert_state_matches_recompute(controller)
    # A chain that leaves room for the map installs fine afterwards.
    assert controller.admit(chain(2, nf_types=(1,), rules=(300,))).ok


def test_admit_many_matches_greedy(tiny_switch):
    """Batch admission over an empty controller reproduces the greedy
    solver's placement chain for chain (same metric order, same engine)."""
    workload = WorkloadConfig(
        num_sfcs=12, num_types=3, avg_chain_length=2, chain_length_spread=1,
        rules_min=10, rules_max=120, mean_bandwidth_gbps=4.0,
    )
    sfcs = make_sfcs(workload, rng=7)
    instance = ProblemInstance(
        switch=tiny_switch, sfcs=tuple(sfcs), num_types=3, max_recirculations=2
    )
    reference = greedy_place(instance, require_all_types=False)

    controller = SfcController(instance.with_sfcs(()), with_dataplane=False)
    results = controller.admit_many(sfcs)
    admitted = {r.tenant_id for r in results if r.ok}
    assert admitted == {sfcs[l].tenant_id for l in reference.assignments}
    for l, asg in reference.assignments.items():
        assert controller.tenants[sfcs[l].tenant_id].stages == asg.stages
    assert controller.placement.objective == pytest.approx(reference.objective)
    assert check_placement(controller.placement, require_all_types=False) == []
    assert_state_matches_recompute(controller)


def test_install_catalog_covers_all_types(controller):
    controller.admit(chain(1, nf_types=(1,), rules=(10,)))
    controller.install_catalog()
    assert controller.state.physical.any(axis=1).all()
    for i in range(3):
        stages = np.flatnonzero(controller.state.physical[i])
        assert len(stages) >= 1
        # The data plane mirrors every control-plane physical NF.
        from repro.dataplane.virtualization import physical_table_name
        from repro.nfs.registry import get_nf
        for s in stages:
            controller.pipeline.stage(int(s)).table(
                physical_table_name(get_nf(i + 1).name, int(s))
            )


@pytest.fixture
def drift_instance() -> ProblemInstance:
    """2 stages x 2 blocks of 100 entries, 2 types, one recirculation."""
    switch = SwitchSpec(
        stages=2, blocks_per_stage=2, block_bits=6400, rule_bits=64,
        capacity_gbps=100.0,
    )
    return ProblemInstance(switch=switch, sfcs=(), num_types=2, max_recirculations=1)


def drift_churn(controller: SfcController) -> SfcController:
    """Drive the fragmentation scenario: a space hog forces tenant 2's chain
    to fold across two passes, then departs."""
    # Tenant 1 fills stage 0 with type-1 rules (2 blocks).
    assert controller.admit(chain(1, nf_types=(1,), rules=(200,))).ok
    # Tenant 2 (type 2 then type 1) must put type 2 on stage 1 and fold back
    # to stage 0 on pass 2 for type 1... stage 0 is full, so type 1 also
    # lands on stage 1, still needing 2 passes: stages (2, 4).
    assert controller.admit(
        chain(2, nf_types=(2, 1), rules=(100, 100), bandwidth_gbps=10.0)
    ).ok
    assert controller.tenants[2].stages == (2, 4)
    # The hog leaves; tenant 2 alone still burns 2 passes (20 Gbps).
    assert controller.evict(1).ok
    assert controller.state.backplane_gbps == pytest.approx(20.0)
    return controller


def test_maybe_reconfigure_adopts_reference(drift_instance):
    """Departure leaves a folded chain a fresh solve would unfold; the
    backplane-drift threshold trips and the reference is adopted."""
    controller = drift_churn(
        SfcController(drift_instance, with_dataplane=False, reconfigure_threshold=0.25)
    )
    assert controller.maybe_reconfigure()
    # Unfolded: one pass, half the backplane.
    assert controller.tenants[2].stages in ((1, 2), (1, 4), (2, 4), (1, 3))
    assert controller.state.backplane_gbps == pytest.approx(10.0)
    snap = controller.metrics_snapshot()
    assert snap["counters"]["reconfigurations"] == 1
    assert snap["counters"]["rules_inserted"] >= 200 + 200  # admits + reinstall
    assert_state_matches_recompute(controller)
    assert check_placement(controller.placement, require_all_types=False) == []
    # Second call: no further drift.
    assert not controller.maybe_reconfigure()


def test_maybe_reconfigure_respects_threshold(drift_instance):
    """A 50% backplane saving does not trip a 0.75 threshold."""
    controller = drift_churn(
        SfcController(drift_instance, with_dataplane=False, reconfigure_threshold=0.75)
    )
    assert not controller.maybe_reconfigure()
    assert controller.tenants[2].stages == (2, 4)


def test_maybe_reconfigure_with_dataplane_reinstalls(drift_instance):
    """With a data plane attached, adoption re-installs the survivor via
    make-before-break and its traffic follows the new placement."""
    from repro.dataplane.packet import Packet

    controller = drift_churn(
        SfcController(drift_instance, reconfigure_threshold=0.25)
    )
    assert controller.maybe_reconfigure()
    result = controller.pipeline.process(Packet(tenant_id=2, pass_id=1), trace=True)
    applied = [t for t in result.applied_tables() if not t.startswith("tenant_map")]
    S = drift_instance.switch.stages
    expected = [
        f"{name}@s{(k - 1) % S}"
        for name, k in zip(("load_balancer", "firewall"), controller.tenants[2].stages)
    ]
    assert applied == expected
    assert result.passes == -(-controller.tenants[2].stages[-1] // S)
    assert_state_matches_recompute(controller)
