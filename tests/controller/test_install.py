"""Transactional-installer tests: wire-ID indirection, two-phase batches,
make-before-break replaces, and the hitless no-mixed-generation property
observed by interleaving ``process_batch`` between phases."""

import pytest

from repro.controller.install import TENANT_MAP, WIRE_BASE, TransactionalInstaller
from repro.dataplane.packet import Packet
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.dataplane.virtualization import LogicalNF, LogicalSFC
from repro.errors import DataPlaneError
from repro.nfs.registry import install_physical_nf


def permit_nf(name: str, n_rules: int = 1) -> LogicalNF:
    """An NF whose rules are ``n_rules`` catch-all permits."""
    return LogicalNF(
        nf_name=name,
        rules=tuple(
            TableEntry(match={}, action="permit", priority=-r - 1)
            for r in range(n_rules)
        ),
    )


@pytest.fixture
def pipeline(tiny_switch) -> SwitchPipeline:
    """Tiny pipeline with firewall/LB/classifier installed on every stage."""
    pipe = SwitchPipeline(tiny_switch, max_passes=3)
    for s in range(3):
        for nf in ("firewall", "load_balancer", "traffic_classifier"):
            install_physical_nf(pipe, nf, s)
    return pipe


@pytest.fixture
def installer(pipeline) -> TransactionalInstaller:
    return TransactionalInstaller(pipeline)


def applied(pipeline, tenant_id: int) -> list[str]:
    """Tables (beyond the map) a tenant's packet traverses."""
    result = pipeline.process(Packet(tenant_id=tenant_id, pass_id=1), trace=True)
    return [t for t in result.applied_tables() if t != TENANT_MAP]


def test_map_table_sits_first_on_stage_zero(pipeline):
    TransactionalInstaller(pipeline)
    assert pipeline.stage(0).tables[0].name == TENANT_MAP


def test_install_is_two_phase_and_wires_traffic(installer, pipeline):
    phases = []
    installer.on_batch = lambda phase, result: phases.append((phase, result.ok))
    sfc = LogicalSFC(tenant_id=5, nfs=(permit_nf("firewall"), permit_nf("load_balancer")))
    outcome = installer.install(sfc, (1, 2))
    assert outcome.rules_inserted == 2 and outcome.hitless
    assert phases == [("install:rules", True), ("install:attach", True)]
    # Rules live under the wire ID, not the raw tenant ID.
    record = installer.installed[5]
    assert record.wire_id >= WIRE_BASE
    for nf in record.compiled:
        for entry in nf.entries:
            assert entry.match["tenant_id"] == record.wire_id
    assert applied(pipeline, 5) == ["firewall@s0", "load_balancer@s1"]


def test_evict_detaches_then_sweeps(installer, pipeline):
    sfc = LogicalSFC(tenant_id=5, nfs=(permit_nf("firewall"),))
    installer.install(sfc, (1,))
    phases = []
    installer.on_batch = lambda phase, result: phases.append(phase)
    outcome = installer.evict(5)
    assert outcome.rules_deleted == 1
    assert phases == ["evict:detach", "evict:rules"]
    assert applied(pipeline, 5) == []
    assert pipeline.total_entries() == 0
    with pytest.raises(DataPlaneError):
        installer.evict(5)


def test_replace_is_make_before_break(installer, pipeline):
    installer.install(LogicalSFC(tenant_id=5, nfs=(permit_nf("firewall"),)), (1,))
    old_wire = installer.installed[5].wire_id
    phases = []
    installer.on_batch = lambda phase, result: phases.append(phase)
    outcome = installer.replace(
        LogicalSFC(tenant_id=5, nfs=(permit_nf("load_balancer"),)), (2,)
    )
    assert outcome.hitless
    assert phases == ["replace:make", "replace:flip", "replace:break"]
    assert installer.installed[5].wire_id != old_wire
    assert applied(pipeline, 5) == ["load_balancer@s1"]


def test_hitless_interleaved_batches_see_no_mixed_generation(installer, pipeline):
    """The acceptance property: a probe batch run between *any* two phases
    of a make-before-break replace observes either the complete old chain or
    the complete new chain — never a partial install or a mix."""
    old = LogicalSFC(
        tenant_id=5, nfs=(permit_nf("firewall"), permit_nf("load_balancer"))
    )
    new = LogicalSFC(
        tenant_id=5,
        nfs=(permit_nf("traffic_classifier"), permit_nf("firewall", 2)),
    )
    installer.install(old, (1, 2))
    old_sig = ["firewall@s0", "load_balancer@s1"]
    new_sig = ["traffic_classifier@s1", "firewall@s2"]
    assert applied(pipeline, 5) == old_sig

    observed = []

    def probe(phase, result):
        assert result.ok
        for packet_result in pipeline.process_batch(
            [Packet(tenant_id=5, pass_id=1) for _ in range(3)], trace=True
        ):
            sig = [t for t in packet_result.applied_tables() if t != TENANT_MAP]
            observed.append((phase, sig))

    installer.on_batch = probe
    installer.replace(new, (2, 3))
    assert observed, "probe never ran"
    for phase, sig in observed:
        assert sig in (old_sig, new_sig), f"mixed generation after {phase}: {sig}"
    # Before the flip the old generation serves; after it the new one does.
    assert all(sig == old_sig for p, sig in observed if p == "replace:make")
    assert all(sig == new_sig for p, sig in observed if p in ("replace:flip", "replace:break"))


def test_replace_falls_back_to_break_before_make(tiny_switch):
    """When the transient double occupancy cannot fit, replace degrades to
    break-before-make (hitless=False) and still lands the new generation."""
    pipe = SwitchPipeline(tiny_switch, max_passes=3)
    install_physical_nf(pipe, "firewall", 0)
    installer = TransactionalInstaller(pipe)
    # The stage has 4 blocks of 100 entries; the tenant map holds one, so a
    # 250-rule generation (3 blocks) fits alone but two generations (500
    # entries = 5 blocks) cannot coexist.
    big = lambda tid: LogicalSFC(tenant_id=tid, nfs=(permit_nf("firewall", 250),))
    installer.install(big(5), (1,))
    outcome = installer.replace(big(5), (1,))
    assert not outcome.hitless
    assert outcome.rules_inserted == 250 and outcome.rules_deleted == 250
    assert installer.installed[5].assignment == (1,)
    assert pipe.total_entries() == 250 + 1  # new generation + map entry


def test_break_before_make_restores_old_generation_on_failure(tiny_switch):
    """If even the break-before-make path cannot install the new chain, the
    old generation is restored verbatim and the error propagates."""
    pipe = SwitchPipeline(tiny_switch, max_passes=3)
    install_physical_nf(pipe, "firewall", 0)
    installer = TransactionalInstaller(pipe)
    installer.install(
        LogicalSFC(tenant_id=5, nfs=(permit_nf("firewall", 250),)), (1,)
    )
    too_big = LogicalSFC(tenant_id=5, nfs=(permit_nf("firewall", 500),))
    with pytest.raises(DataPlaneError):
        installer.replace(too_big, (1,))
    assert installer.installed[5].wire_id is not None
    assert pipe.total_entries() == 250 + 1
    assert applied_count(pipe, 5) == 1


def applied_count(pipeline, tenant_id: int) -> int:
    """How many non-map tables the tenant's packet hits."""
    result = pipeline.process(Packet(tenant_id=tenant_id, pass_id=1), trace=True)
    return len([t for t in result.applied_tables() if t != TENANT_MAP])
