"""Tests for the tenant-facing controller subsystem."""
