"""Cross-subsystem acceptance: the correlated-failure campaign journaled
to a write-ahead log, crashed mid-campaign at seeded WAL fault points and
mutilated on disk, must always recover a fabric digest-identical to an
uninterrupted oracle run at the same committed LSN — drains and undrains
included."""

import pytest

from repro.durability import (
    DISK_MODES,
    CrashError,
    FabricDurability,
    FaultInjector,
    crash_sites,
    mutilate,
    recover_fabric,
)
from repro.scenarios.compile import compile_scenario
from repro.scenarios.library import get_campaign
from repro.scenarios.runner import ScenarioRunner, build_fabric

SEED = 20260807

#: The campaign under test, time-shrunk 5x: same fault schedule (two
#: drains at peak, two undrains in recovery), ~250 events.
SPEC = get_campaign("correlated-failure").shrunk(0.2)

#: Upper bound on WAL-append ordinals for crash-point placement: the
#: shrunk campaign commits a few hundred fabric ops.
MAX_ORDINAL = 300

CRASH_POINTS = crash_sites(SEED, MAX_ORDINAL)[:6]


@pytest.fixture(scope="module")
def campaign():
    compiled = compile_scenario(SPEC)
    counts = compiled.counts()
    assert counts["drain"] == 2 and counts["undrain"] == 2
    return compiled


@pytest.fixture(scope="module")
def oracle(campaign, tmp_path_factory):
    """LSN -> fabric digest for the uninterrupted journaled replay
    (LSN 0 = genesis)."""
    directory = tmp_path_factory.mktemp("scenario-oracle")
    fabric = build_fabric(SPEC)
    durability = FabricDurability(directory, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    digests = {0: fabric.digest()}
    report = ScenarioRunner(fabric).run(campaign)
    assert report.ok
    journaled_ops = set()
    for record in durability.wal.records():
        digests[record.lsn] = record.data["digest"]
        journaled_ops.add(record.op)
    durability.close()
    # The campaign's administrative faults really went through the log.
    assert {"drain", "undrain"} <= journaled_ops
    return digests


def crash_run(tmp_path, campaign, point, mode):
    """Replay the campaign until the injector fires, die, then mutilate
    the surviving log per ``mode``."""
    fabric = build_fabric(SPEC)
    durability = FabricDurability(
        tmp_path,
        fsync="batch",
        batch_every=4,
        checkpoint_every=64,
        fault_hook=FaultInjector(point),
    )
    durability.attach(fabric)
    try:
        ScenarioRunner(fabric, check_invariants=False).run(campaign)
    except CrashError:
        pass
    durable = durability.wal.durable_offset
    durability.abort()
    mutilate(durability.wal.path, mode, durable_offset=durable)


@pytest.mark.parametrize(
    "index,point",
    list(enumerate(CRASH_POINTS)),
    ids=[f"{p.site.removeprefix('wal.')}@{p.at}" for p in CRASH_POINTS],
)
def test_crash_mid_campaign_recovers_bit_identical(
    oracle, campaign, tmp_path, index, point
):
    mode = DISK_MODES[index % len(DISK_MODES)]
    crash_run(tmp_path, campaign, point, mode)

    recovered, report = recover_fabric(tmp_path)
    assert report.ok, report.problems
    committed_lsn = max(report.last_lsn, report.checkpoint_lsn)
    assert recovered.digest() == oracle[committed_lsn]
    assert recovered.check_invariant() == []


def test_uninterrupted_journaled_campaign_recovers_to_its_final_state(
    oracle, campaign, tmp_path
):
    fabric = build_fabric(SPEC)
    durability = FabricDurability(tmp_path, fsync="batch", batch_every=8)
    durability.attach(fabric)
    report = ScenarioRunner(fabric).run(campaign)
    assert report.ok
    durability.close()

    recovered, recovery = recover_fabric(tmp_path)
    assert recovery.ok, recovery.problems
    assert recovered.digest() == fabric.digest()
    assert recovered.digest() == report.final_digest
    # The final digest is also the oracle's last LSN digest: two journaled
    # replays of the same compiled stream land on the same state.
    assert recovered.digest() == oracle[max(oracle)]
    assert recovered.check_invariant() == []
