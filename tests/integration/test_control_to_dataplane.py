"""End-to-end integration: control-plane placement -> data-plane install ->
real traffic.

This is the system path a deployment would take: synthesize tenants, run a
placement algorithm, install the resulting physical layout and per-tenant
rules on the pipeline simulator, then send each tenant's packets and verify
that (a) the recirculation count the data plane *actually* performs equals
the ``R_l`` the control-plane solution predicts and (b) tenants stay
isolated.
"""

import numpy as np
import pytest

from repro.core import check_placement, greedy_place, solve_with_rounding
from repro.core.spec import SwitchSpec
from repro.dataplane.pipeline import SwitchPipeline
from repro.dataplane.table import TableEntry
from repro.dataplane.virtualization import LogicalNF, LogicalSFC, SFCVirtualizer
from repro.nfs import get_nf, install_layout
from repro.traffic import WorkloadConfig, make_instance
from repro.traffic.flows import FlowGenerator


def deploy(placement, max_passes=None):
    """Install a placement (layout + every placed chain) on a fresh pipeline."""
    instance = placement.instance
    if max_passes is None:
        max_passes = instance.max_recirculations + 1
    pipeline = SwitchPipeline(spec=instance.switch, max_passes=max_passes)
    install_layout(pipeline, placement.physical)
    virtualizer = SFCVirtualizer(pipeline)
    for l, asg in sorted(placement.assignments.items()):
        sfc = instance.sfcs[l]
        nfs = []
        for j, type_id in enumerate(sfc.nf_types):
            nf_def = get_nf(type_id)
            # A tenant-wide catch-all per NF guarantees every tenant packet
            # traverses the chain (the REC argument rides on matched rules),
            # mirroring providers' default policy rules.
            rules = [TableEntry(match={}, action="permit", priority=-1)]
            nfs.append(LogicalNF(nf_def.name, tuple(rules)))
        virtualizer.install_sfc(
            LogicalSFC(tenant_id=sfc.tenant_id, nfs=tuple(nfs)),
            assignment=asg.stages,
        )
    return pipeline, virtualizer


@pytest.fixture(scope="module")
def deployed():
    switch = SwitchSpec(stages=4, blocks_per_stage=12, capacity_gbps=200.0)
    instance = make_instance(
        WorkloadConfig(num_sfcs=8, num_types=6, avg_chain_length=3,
                       chain_length_spread=1),
        switch=switch,
        max_recirculations=2,
        rng=17,
    )
    placement = greedy_place(instance)
    assert placement.num_placed >= 4
    assert check_placement(placement) == []
    pipeline, virtualizer = deploy(placement)
    return instance, placement, pipeline, virtualizer


def test_dataplane_passes_match_control_plane_prediction(deployed):
    instance, placement, pipeline, _ = deployed
    gen = FlowGenerator(3)
    for l, asg in placement.assignments.items():
        tenant = instance.sfcs[l].tenant_id
        packet = gen.flows(1, tenant_id=tenant)[0].make_packet(64)
        result = pipeline.process(packet)
        predicted = asg.passes(instance.switch.stages)
        assert result.passes == predicted, (
            f"SFC {l}: data plane made {result.passes} passes, control "
            f"plane predicted {predicted}"
        )


def test_unplaced_tenants_traffic_passes_through_untouched(deployed):
    instance, placement, pipeline, _ = deployed
    unplaced = set(range(instance.num_sfcs)) - set(placement.assignments)
    gen = FlowGenerator(4)
    for l in unplaced:
        tenant = instance.sfcs[l].tenant_id
        packet = gen.flows(1, tenant_id=tenant)[0].make_packet(64)
        result = pipeline.process(packet, trace=True)
        assert result.passes == 1
        assert result.applied_tables() == []  # only no_op defaults fired


def test_installed_entries_match_placement_rule_counts(deployed):
    instance, placement, pipeline, _ = deployed
    # One catch-all rule per placed NF was installed.
    expected = sum(instance.sfcs[l].length for l in placement.assignments)
    assert pipeline.total_entries() == expected


def test_departure_releases_dataplane_state(deployed):
    instance, placement, pipeline, virtualizer = deployed
    victim = next(iter(placement.assignments))
    tenant = instance.sfcs[victim].tenant_id
    before = pipeline.total_entries()
    virtualizer.uninstall_sfc(tenant)
    assert pipeline.total_entries() == before - instance.sfcs[victim].length
    # Their traffic now passes through untouched.
    packet = FlowGenerator(5).flows(1, tenant_id=tenant)[0].make_packet(64)
    assert pipeline.process(packet).passes == 1
    # Reinstall for subsequent tests (module-scoped fixture).
    nfs = tuple(
        LogicalNF(get_nf(t).name, (TableEntry(match={}, action="permit", priority=-1),))
        for t in instance.sfcs[victim].nf_types
    )
    virtualizer.install_sfc(
        LogicalSFC(tenant_id=tenant, nfs=nfs),
        assignment=placement.assignments[victim].stages,
    )


def test_rounding_placement_also_deploys():
    switch = SwitchSpec(stages=4, blocks_per_stage=12, capacity_gbps=200.0)
    instance = make_instance(
        WorkloadConfig(num_sfcs=6, num_types=6, avg_chain_length=3,
                       chain_length_spread=1),
        switch=switch,
        max_recirculations=2,
        rng=23,
    )
    result = solve_with_rounding(instance, rng=5)
    placement = result.placement
    assert check_placement(placement) == []
    pipeline, _ = deploy(placement)
    gen = FlowGenerator(6)
    for l, asg in placement.assignments.items():
        tenant = instance.sfcs[l].tenant_id
        packet = gen.flows(1, tenant_id=tenant)[0].make_packet(64)
        assert pipeline.process(packet).passes == asg.passes(instance.switch.stages)
