"""Integration: P4 table structure -> NF stage spans -> sub-NF placement.

Closes the loop between the compiler layer and the control plane: the load
balancer's real three-table program spans 2 stages under the allocator, so
the placement problem must treat it as 2 sub-NFs — and the resulting
placements must keep each sub-NF pair on consecutive virtual stages.
"""


from repro.core.extensions import collapse_assignment, expand_multi_stage_nfs
from repro.core.ilp import solve_ilp
from repro.core.spec import SFC, ProblemInstance, SwitchSpec
from repro.core.verify import check_placement
from repro.nfs import get_nf
from repro.p4 import allocate_stages, chain_program


def lb_span() -> int:
    program = chain_program([get_nf("load_balancer")])
    allocation = allocate_stages(program, num_stages=12, tables_per_stage=8)
    return allocation.span("nf0_")


def test_lb_spans_two_stages():
    assert lb_span() == 2


def test_spans_feed_expansion_and_solve():
    span = lb_span()
    switch = SwitchSpec(stages=4, blocks_per_stage=8, capacity_gbps=100.0)
    sfcs = (
        # firewall -> LB -> router (the LB is type 2 in the catalog).
        SFC(name="a", nf_types=(1, 2, 4), rules=(100, 200, 50), bandwidth_gbps=5.0),
        SFC(name="b", nf_types=(2, 1), rules=(150, 80), bandwidth_gbps=3.0),
    )
    instance = ProblemInstance(
        switch=switch, sfcs=sfcs, num_types=4, max_recirculations=2
    )
    expansion = expand_multi_stage_nfs(instance, {2: span})

    # Chain a becomes FW, LB0, LB1, router.
    assert expansion.expanded.sfcs[0].length == 4

    placement = solve_ilp(expansion.expanded, backend="scipy",
                          require_all_types=False)
    assert check_placement(placement, require_all_types=False) == []
    assert placement.num_placed == 2

    # Sub-NFs of one LB sit on consecutive virtual stages in every chain
    # (the dependency chain tab_lb -> tab_lbselect needs adjacent MAUs);
    # our expansion encodes that through strict ordering, so the collapse
    # is well-formed and the sub-stages are increasing.
    for l, asg in placement.assignments.items():
        for j in range(instance.sfcs[l].length):
            positions = expansion.position_map[(l, j)]
            stages = [asg.stages[p] for p in positions]
            assert stages == sorted(stages)

    collapsed = collapse_assignment(expansion, placement)
    assert set(collapsed) == {0, 1}
    for l, stages in collapsed.items():
        assert len(stages) == instance.sfcs[l].length


def test_expanded_catalog_size_matches_span():
    span = lb_span()
    switch = SwitchSpec(stages=4, blocks_per_stage=8)
    instance = ProblemInstance(
        switch=switch,
        sfcs=(SFC(name="a", nf_types=(2,), rules=(10,), bandwidth_gbps=1.0),),
        num_types=2,
        max_recirculations=0,
    )
    expansion = expand_multi_stage_nfs(instance, {2: span})
    assert expansion.expanded.num_types == 2 + (span - 1)
