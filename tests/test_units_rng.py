"""Tests for unit conversions and RNG helpers."""

import numpy as np
import pytest

from repro import units
from repro.rng import make_rng, spawn


class TestUnits:
    def test_gbps_pps_roundtrip(self):
        pps = units.gbps_to_pps(100.0, 64)
        assert units.pps_to_gbps(pps, 64) == pytest.approx(100.0)

    def test_wire_rate_64b(self):
        # 100 Gbps of 64B frames = 148.8 Mpps (the classic line-rate figure).
        pps = units.gbps_to_pps(100.0, 64)
        assert pps == pytest.approx(148.8e6, rel=0.01)

    def test_overhead_toggle(self):
        with_oh = units.gbps_to_pps(10.0, 64, include_overhead=True)
        without = units.gbps_to_pps(10.0, 64, include_overhead=False)
        assert without > with_oh

    def test_invalid_packet_size(self):
        with pytest.raises(ValueError):
            units.gbps_to_pps(1.0, 0)
        with pytest.raises(ValueError):
            units.pps_to_gbps(1.0, -5)

    def test_mpps(self):
        assert units.mpps(2_000_000) == pytest.approx(2.0)

    def test_time_conversions(self):
        assert units.seconds_to_ns(1e-9) == pytest.approx(1.0)
        assert units.ns_to_seconds(1.0) == pytest.approx(1e-9)


class TestRng:
    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1000, 5)
        b = make_rng(None).integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)

    def test_int_seed(self):
        a = make_rng(5).integers(0, 1000, 5)
        b = make_rng(5).integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen

    def test_spawn_independent_streams(self):
        children = spawn(make_rng(1), 3)
        draws = [c.integers(0, 10**9) for c in children]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [c.integers(0, 10**9) for c in spawn(make_rng(1), 3)]
        b = [c.integers(0, 10**9) for c in spawn(make_rng(1), 3)]
        assert a == b

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(make_rng(1), -1)
