"""Unit tests for variables and linear expressions."""

import pytest

from repro.errors import ModelError
from repro.lp import Model
from repro.lp.expr import LinExpr, lin_sum


@pytest.fixture()
def model():
    return Model("t")


def test_var_to_expr_single_term(model):
    x = model.add_var("x")
    expr = x.to_expr()
    assert expr.coeffs == {x.index: 1.0}
    assert expr.constant == 0.0


def test_var_addition_combines_terms(model):
    x = model.add_var("x")
    y = model.add_var("y")
    expr = x + y
    assert expr.coeffs == {x.index: 1.0, y.index: 1.0}


def test_var_plus_number_sets_constant(model):
    x = model.add_var("x")
    expr = x + 5
    assert expr.constant == 5.0
    expr2 = 5 + x
    assert expr2.constant == 5.0


def test_subtraction_and_negation(model):
    x = model.add_var("x")
    y = model.add_var("y")
    expr = 2 * x - 3 * y + 1
    assert expr.coeffs == {x.index: 2.0, y.index: -3.0}
    assert expr.constant == 1.0
    neg = -expr
    assert neg.coeffs == {x.index: -2.0, y.index: 3.0}
    assert neg.constant == -1.0


def test_rsub(model):
    x = model.add_var("x")
    expr = 10 - x
    assert expr.coeffs == {x.index: -1.0}
    assert expr.constant == 10.0


def test_scalar_multiplication_and_division(model):
    x = model.add_var("x")
    expr = (4 * x) / 2
    assert expr.coeffs == {x.index: 2.0}


def test_multiply_by_zero_clears_terms(model):
    x = model.add_var("x")
    expr = (x + 3) * 0
    assert expr.coeffs == {}
    assert expr.constant == 0.0


def test_cancelling_terms_are_dropped(model):
    x = model.add_var("x")
    y = model.add_var("y")
    expr = x + y - x
    assert expr.coeffs == {y.index: 1.0}


def test_division_by_zero_raises(model):
    x = model.add_var("x")
    with pytest.raises(ZeroDivisionError):
        _ = x.to_expr() / 0


def test_nonlinear_multiplication_rejected(model):
    x = model.add_var("x")
    with pytest.raises((ModelError, TypeError)):
        _ = x.to_expr() * x.to_expr()  # type: ignore[operator]


def test_expressions_from_different_models_rejected():
    m1, m2 = Model("a"), Model("b")
    x = m1.add_var("x")
    y = m2.add_var("y")
    with pytest.raises(ModelError):
        _ = x + y


def test_value_evaluates_assignment(model):
    x = model.add_var("x")
    y = model.add_var("y")
    expr = 2 * x + 3 * y + 1
    assert expr.value([2.0, 1.0]) == pytest.approx(8.0)


def test_lin_sum_matches_builtin_sum(model):
    xs = model.add_vars(20, "v")
    fast = lin_sum(x * (i + 1) for i, x in enumerate(xs))
    slow = sum((x * (i + 1) for i, x in enumerate(xs)), LinExpr())
    assert fast.coeffs == slow.coeffs
    assert fast.constant == slow.constant


def test_lin_sum_with_numbers_and_vars(model):
    x = model.add_var("x")
    expr = lin_sum([x, 2, x * 3, 4.5])
    assert expr.coeffs == {x.index: 4.0}
    assert expr.constant == 6.5


def test_lin_sum_rejects_bad_type(model):
    with pytest.raises(ModelError):
        lin_sum(["nope"])  # type: ignore[list-item]


def test_from_terms(model):
    x = model.add_var("x")
    y = model.add_var("y")
    expr = LinExpr.from_terms([(2, x), (3, y)], constant=7)
    assert expr.coeffs == {x.index: 2.0, y.index: 3.0}
    assert expr.constant == 7.0


def test_var_repr_mentions_kind(model):
    x = model.add_var("x", binary=True)
    assert "int" in repr(x)


def test_expr_repr_uses_names(model):
    x = model.add_var("alpha")
    assert "alpha" in repr(x + 1)


def test_var_bounds_validation(model):
    with pytest.raises(ModelError):
        model.add_var("bad", lb=3, ub=1)
