"""Unit tests for the from-scratch two-phase simplex solver."""

import numpy as np
import pytest

from repro.lp import Model, Objective, SolveStatus
from repro.lp.simplex import solve_dense_form, solve_standard


def _solve(model):
    return solve_dense_form(model.to_arrays())


def test_textbook_max_problem():
    # max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18  -> (2, 6), obj 36
    m = Model()
    x = m.add_var("x")
    y = m.add_var("y")
    m.add_constr(x <= 4)
    m.add_constr(2 * y <= 12)
    m.add_constr(3 * x + 2 * y <= 18)
    m.set_objective(3 * x + 5 * y, Objective.MAXIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.OPTIMAL
    # minimization convention: objective is negated
    assert res.objective == pytest.approx(-36.0)
    np.testing.assert_allclose(res.x, [2.0, 6.0], atol=1e-7)


def test_minimization_with_ge_rows():
    # min 2x + 3y s.t. x + y >= 4, x >= 1 -> (4, 0)? cost 8 vs (1,3): 2+9=11 -> x=4,y=0
    m = Model()
    x = m.add_var("x")
    y = m.add_var("y")
    m.add_constr(x + y >= 4)
    m.add_constr(x >= 1)
    m.set_objective(2 * x + 3 * y, Objective.MINIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.OPTIMAL
    assert res.objective == pytest.approx(8.0)


def test_equality_constraints():
    m = Model()
    x = m.add_var("x")
    y = m.add_var("y")
    m.add_constr(x + y == 10)
    m.add_constr(x - y == 2)
    m.set_objective(x + y, Objective.MINIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.OPTIMAL
    np.testing.assert_allclose(res.x, [6.0, 4.0], atol=1e-7)


def test_infeasible_detected():
    m = Model()
    x = m.add_var("x", lb=0, ub=1)
    m.add_constr(x >= 2)
    m.set_objective(x + 0, Objective.MINIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.INFEASIBLE
    assert res.x is None


def test_unbounded_detected():
    m = Model()
    x = m.add_var("x")  # x >= 0, no upper bound
    m.add_constr(x >= 1)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.UNBOUNDED


def test_negative_lower_bounds_shifted():
    m = Model()
    x = m.add_var("x", lb=-5, ub=5)
    m.set_objective(x + 0, Objective.MINIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.OPTIMAL
    assert res.x[0] == pytest.approx(-5.0)


def test_free_variable_split():
    m = Model()
    x = m.add_var("x", lb=-np.inf, ub=np.inf)
    m.add_constr(x >= -7)
    m.set_objective(x + 0, Objective.MINIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.OPTIMAL
    assert res.x[0] == pytest.approx(-7.0)


def test_upper_bound_only_variable():
    m = Model()
    x = m.add_var("x", lb=-np.inf, ub=3)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.OPTIMAL
    assert res.x[0] == pytest.approx(3.0)


def test_degenerate_problem_terminates():
    # Classic degeneracy: multiple constraints active at the optimum.
    m = Model()
    x = m.add_var("x")
    y = m.add_var("y")
    m.add_constr(x + y <= 1)
    m.add_constr(x + y <= 1)  # duplicate row
    m.add_constr(x <= 1)
    m.set_objective(x + y, Objective.MAXIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.OPTIMAL
    assert res.objective == pytest.approx(-1.0)


def test_no_constraints_bounded_by_variable_bounds():
    m = Model()
    x = m.add_var("x", lb=2, ub=9)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.OPTIMAL
    assert res.x[0] == pytest.approx(9.0)


def test_solve_standard_direct():
    # min -x1 - 2 x2 s.t. x1 + x2 + s = 4 -> x2 = 4
    A = np.array([[1.0, 1.0, 1.0]])
    b = np.array([4.0])
    c = np.array([-1.0, -2.0, 0.0])
    status, x, obj, _ = solve_standard(A, b, c)
    assert status is SolveStatus.OPTIMAL
    assert obj == pytest.approx(-8.0)
    np.testing.assert_allclose(x, [0.0, 4.0, 0.0], atol=1e-8)


def test_solve_standard_negative_rhs_normalized():
    # -x = -3 with x >= 0 -> x = 3
    A = np.array([[-1.0]])
    b = np.array([-3.0])
    c = np.array([1.0])
    status, x, obj, _ = solve_standard(A, b, c)
    assert status is SolveStatus.OPTIMAL
    assert x[0] == pytest.approx(3.0)


def test_redundant_equality_rows_handled():
    m = Model()
    x = m.add_var("x")
    y = m.add_var("y")
    m.add_constr(x + y == 4)
    m.add_constr(2 * x + 2 * y == 8)  # linearly dependent
    m.set_objective(x + 0, Objective.MINIMIZE)
    res = _solve(m)
    assert res.status is SolveStatus.OPTIMAL
    assert res.x[0] == pytest.approx(0.0)
    assert res.x[1] == pytest.approx(4.0)


def test_agrees_with_scipy_on_random_lps():
    """Fuzz the own simplex against HiGHS on random feasible LPs."""
    from repro.lp.scipy_backend import solve_lp_scipy

    rng = np.random.default_rng(7)
    for trial in range(25):
        n = int(rng.integers(2, 7))
        mrows = int(rng.integers(1, 6))
        m = Model(f"fuzz{trial}")
        xs = [m.add_var(f"x{i}", lb=0, ub=float(rng.integers(1, 20))) for i in range(n)]
        for _ in range(mrows):
            coeffs = rng.integers(-3, 4, size=n)
            expr = sum(int(c) * x for c, x in zip(coeffs, xs) if c) if np.any(coeffs) else None
            if expr is None:
                continue
            # rhs chosen >= 0 so x = 0 stays feasible -> LP is feasible.
            m.add_constr(expr <= float(rng.integers(0, 30)))
        cost = rng.integers(-5, 6, size=n)
        m.set_objective(sum(int(c) * x for c, x in zip(cost, xs)), Objective.MINIMIZE)
        form = m.to_arrays()
        own = solve_dense_form(form)
        ref = solve_lp_scipy(form)
        assert own.status is ref.status is SolveStatus.OPTIMAL
        assert own.objective == pytest.approx(ref.objective, abs=1e-6)
