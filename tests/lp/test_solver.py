"""Tests for the unified solve() dispatcher and the scipy backend adapter."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.lp import Model, Objective, SolveStatus, solve
from repro.lp.solver import AUTO_OWN_MAX_VARS


def _toy_mip():
    m = Model()
    a = m.add_var("a", binary=True)
    b = m.add_var("b", binary=True)
    m.add_constr(a + b <= 1)
    m.set_objective(3 * a + 2 * b, Objective.MAXIMIZE)
    return m, a, b


def test_unknown_backend_rejected():
    m, *_ = _toy_mip()
    with pytest.raises(SolverError):
        solve(m, backend="gurobi")


def test_auto_uses_own_for_tiny_models():
    m, a, b = _toy_mip()
    sol = solve(m, backend="auto")
    assert sol.backend.startswith("own")
    assert sol.objective == pytest.approx(3.0)


def test_auto_uses_scipy_for_large_models():
    m = Model()
    xs = [m.add_var(f"x{i}", binary=True) for i in range(AUTO_OWN_MAX_VARS + 1)]
    m.add_constr(sum(xs[:3]) <= 2)
    m.set_objective(sum(xs), Objective.MAXIMIZE)
    sol = solve(m, backend="auto")
    assert sol.backend.startswith("scipy")


def test_relax_flag_drops_integrality():
    m = Model()
    x = m.add_var("x", lb=0, ub=10, integer=True)
    m.add_constr(2 * x <= 5)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    assert solve(m, backend="scipy", relax=True).objective == pytest.approx(2.5)
    assert solve(m, backend="scipy").objective == pytest.approx(2.0)


def test_objective_constant_round_trip():
    m = Model()
    x = m.add_var("x", lb=0, ub=1)
    m.set_objective(x + 100, Objective.MAXIMIZE)
    for backend in ("own", "scipy"):
        sol = solve(m, backend=backend)
        assert sol.objective == pytest.approx(101.0)


def test_scipy_milp_infeasible():
    m = Model()
    x = m.add_var("x", binary=True)
    y = m.add_var("y", binary=True)
    m.add_constr(x + y >= 3)
    m.set_objective(x + y, Objective.MAXIMIZE)
    sol = solve(m, backend="scipy")
    assert sol.status is SolveStatus.INFEASIBLE


def test_scipy_lp_unbounded():
    m = Model()
    x = m.add_var("x")
    m.set_objective(x + 0, Objective.MAXIMIZE)
    sol = solve(m, backend="scipy")
    assert sol.status is SolveStatus.UNBOUNDED


def test_solution_value_and_as_dict():
    m, a, b = _toy_mip()
    sol = solve(m, backend="scipy")
    assert sol.value(a) == pytest.approx(1.0)
    assert sol.value(3 * a + 2 * b) == pytest.approx(3.0)
    d = sol.as_dict(m)
    assert d["a"] == pytest.approx(1.0)


def test_solution_access_without_values_raises():
    from repro.errors import InfeasibleError

    m = Model()
    x = m.add_var("x", binary=True)
    m.add_constr(x >= 2)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    sol = solve(m, backend="scipy")
    with pytest.raises(InfeasibleError):
        _ = sol[x]
    with pytest.raises(InfeasibleError):
        sol.as_dict(m)


def test_scipy_time_limit_accepts_incumbent_or_nothing():
    rng = np.random.default_rng(5)
    m = Model()
    n = 40
    xs = [m.add_var(f"x{i}", binary=True) for i in range(n)]
    w = rng.integers(5, 40, size=n)
    v = rng.integers(5, 40, size=n)
    m.add_constr(sum(int(wi) * x for wi, x in zip(w, xs)) <= int(w.sum() // 3))
    m.set_objective(sum(int(vi) * x for vi, x in zip(v, xs)), Objective.MAXIMIZE)
    sol = solve(m, backend="scipy", time_limit=10.0)
    assert sol.status in (SolveStatus.OPTIMAL, SolveStatus.TIME_LIMIT)
    if sol.is_feasible:
        assert m.check_feasible(sol.values) == []


def test_backends_agree_on_equality_heavy_model():
    m = Model()
    x = m.add_var("x", lb=0, ub=4, integer=True)
    y = m.add_var("y", lb=0, ub=4, integer=True)
    z = m.add_var("z", lb=0, ub=8)
    m.add_constr(x + y == 4)
    m.add_constr(z == 2 * x)
    m.set_objective(z + y, Objective.MAXIMIZE)
    a = solve(m, backend="own")
    b = solve(m, backend="scipy")
    assert a.objective == pytest.approx(b.objective)
    assert a.objective == pytest.approx(8.0)  # x=4,y=0,z=8
