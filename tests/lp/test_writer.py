"""Tests for the LP-format writer."""

import numpy as np
import pytest

from repro.lp import Model, Objective
from repro.lp.writer import model_to_lp_string, write_lp


@pytest.fixture()
def model():
    m = Model("t")
    x = m.add_var("x[1,0]", binary=True)
    y = m.add_var("y", lb=0, ub=5)
    z = m.add_var("z", lb=-np.inf, ub=np.inf)
    m.add_constr(x + 2 * y <= 4, name="cap")
    m.add_constr(y - z >= 1, name="floor")
    m.add_constr(x + z == 2, name="bind")
    m.set_objective(3 * x + y - z, Objective.MAXIMIZE)
    return m


def test_sections_present(model):
    text = model_to_lp_string(model)
    for keyword in ("Maximize", "Subject To", "Bounds", "Generals", "End"):
        assert keyword in text


def test_names_sanitized(model):
    text = model_to_lp_string(model)
    assert "x[1,0]" not in text
    assert "x_1_0_" in text


def test_constraints_rendered_with_senses(model):
    text = model_to_lp_string(model)
    assert "cap: x_1_0_ + 2 y <= 4" in text
    assert "floor: y - z >= 1" in text
    assert "bind: x_1_0_ + z = 2" in text


def test_bounds_and_free_variables(model):
    text = model_to_lp_string(model)
    assert "0 <= y <= 5" in text
    assert "-inf <= z <= +inf" in text


def test_integers_listed(model):
    text = model_to_lp_string(model)
    generals = text.split("Generals")[1]
    assert "x_1_0_" in generals


def test_minimize_header():
    m = Model()
    x = m.add_var("x")
    m.set_objective(x + 0, Objective.MINIMIZE)
    assert model_to_lp_string(m).startswith("Minimize")


def test_write_lp_creates_file(model, tmp_path):
    path = write_lp(model, tmp_path / "model.lp")
    assert path.exists()
    assert path.read_text().endswith("End\n")


def test_name_collisions_disambiguated():
    m = Model()
    m.add_var("a[1]")
    m.add_var("a(1)")  # both sanitize to a_1_
    m.add_constr(m.variables[0] + m.variables[1] <= 1)
    m.set_objective(m.variables[0] + 0, Objective.MAXIMIZE)
    text = model_to_lp_string(m)
    assert "a_1_ " in text and "a_1__1" in text


def test_placement_model_exports():
    """The real joint MILP serializes without error and mentions its vars."""
    from repro.core.ilp import build_placement_model
    from repro.core.spec import SFC, ProblemInstance, SwitchSpec

    switch = SwitchSpec(stages=2, blocks_per_stage=3, block_bits=6400,
                        rule_bits=64, capacity_gbps=50.0)
    inst = ProblemInstance(
        switch=switch,
        sfcs=(SFC(name="a", nf_types=(1,), rules=(10,), bandwidth_gbps=1.0),),
        num_types=2,
        max_recirculations=0,
    )
    ilp = build_placement_model(inst)
    text = model_to_lp_string(ilp.model)
    assert "backplane_capacity" in text
    assert text.count("\n") > 10
