"""Tests for solve statuses and the Solution wrapper."""

import numpy as np
import pytest

from repro.errors import InfeasibleError
from repro.lp import Model, Objective, SolveStatus, solve
from repro.lp.status import Solution


def test_status_solution_possible_flags():
    assert SolveStatus.OPTIMAL.has_solution_possible
    assert SolveStatus.TIME_LIMIT.has_solution_possible
    assert not SolveStatus.INFEASIBLE.has_solution_possible
    assert not SolveStatus.UNBOUNDED.has_solution_possible
    assert not SolveStatus.NO_SOLUTION.has_solution_possible


def test_solution_is_feasible_tracks_values():
    empty = Solution(status=SolveStatus.TIME_LIMIT)
    assert not empty.is_feasible
    filled = Solution(status=SolveStatus.OPTIMAL, values=np.array([1.0]))
    assert filled.is_feasible


def test_bound_brackets_objective_for_maximization():
    m = Model()
    x = m.add_var("x", lb=0, ub=7, integer=True)
    m.add_constr(2 * x <= 9)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    for backend in ("own", "scipy"):
        sol = solve(m, backend=backend)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(4.0)
        if sol.bound is not None:
            assert sol.bound >= sol.objective - 1e-6


def test_value_of_expression():
    m = Model()
    x = m.add_var("x", lb=0, ub=3)
    y = m.add_var("y", lb=0, ub=3)
    m.set_objective(x + y, Objective.MAXIMIZE)
    sol = solve(m, backend="scipy")
    assert sol.value(2 * x - y) == pytest.approx(3.0)
    assert sol.value(x) == pytest.approx(3.0)


def test_access_before_solution_raises():
    m = Model()
    x = m.add_var("x")
    sol = Solution(status=SolveStatus.NO_SOLUTION)
    with pytest.raises(InfeasibleError):
        _ = sol[x]
    with pytest.raises(InfeasibleError):
        sol.value(x)


def test_backend_and_timing_recorded():
    m = Model()
    x = m.add_var("x", lb=0, ub=1)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    sol = solve(m, backend="scipy")
    assert sol.backend == "scipy-lp"
    assert sol.solve_seconds >= 0.0
