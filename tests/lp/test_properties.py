"""Property-based tests (hypothesis) for the LP substrate.

Invariants checked:
* expression arithmetic is consistent with evaluation semantics,
* the own simplex agrees with HiGHS on random feasible LPs,
* B&B solutions are feasible and never beat the LP relaxation bound.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lp import Model, Objective, SolveStatus, solve
from repro.lp.expr import lin_sum
from repro.lp.scipy_backend import solve_lp_scipy
from repro.lp.simplex import solve_dense_form

coeffs = st.integers(min_value=-5, max_value=5)


@given(
    a=st.lists(coeffs, min_size=1, max_size=6),
    b=st.lists(coeffs, min_size=1, max_size=6),
    point=st.lists(st.floats(-10, 10, allow_nan=False), min_size=6, max_size=6),
    scale=st.integers(min_value=-4, max_value=4),
)
def test_expr_arithmetic_matches_evaluation(a, b, point, scale):
    m = Model()
    xs = [m.add_var(f"x{i}") for i in range(6)]
    ea = lin_sum(c * x for c, x in zip(a, xs))
    eb = lin_sum(c * x for c, x in zip(b, xs))
    combo = ea * scale + eb - 3
    expected = (
        scale * sum(c * p for c, p in zip(a, point))
        + sum(c * p for c, p in zip(b, point))
        - 3
    )
    assert abs(combo.value(point) - expected) < 1e-7


@given(
    n=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=40, deadline=None)
def test_simplex_agrees_with_highs_on_feasible_lps(n, seed):
    rng = np.random.default_rng(seed)
    m = Model()
    xs = [m.add_var(f"x{i}", lb=0, ub=float(rng.integers(1, 15))) for i in range(n)]
    for _ in range(int(rng.integers(1, 5))):
        row = rng.integers(-3, 4, size=n)
        if not np.any(row):
            continue
        m.add_constr(lin_sum(int(c) * x for c, x in zip(row, xs)) <= float(rng.integers(0, 25)))
    cost = rng.integers(-5, 6, size=n)
    m.set_objective(lin_sum(int(c) * x for c, x in zip(cost, xs)), Objective.MINIMIZE)
    form = m.to_arrays()
    own = solve_dense_form(form)
    ref = solve_lp_scipy(form)
    # x=0 is always feasible here, objective bounded below by box bounds.
    assert own.status is SolveStatus.OPTIMAL
    assert ref.status is SolveStatus.OPTIMAL
    assert abs(own.objective - ref.objective) < 1e-6


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=25, deadline=None)
def test_bnb_solution_feasible_and_bounded_by_relaxation(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 7))
    m = Model()
    xs = [m.add_var(f"x{i}", binary=True) for i in range(n)]
    w = rng.integers(1, 9, size=n)
    v = rng.integers(1, 12, size=n)
    cap = int(max(1, w.sum() // 2))
    m.add_constr(lin_sum(int(wi) * x for wi, x in zip(w, xs)) <= cap)
    m.set_objective(lin_sum(int(vi) * x for vi, x in zip(v, xs)), Objective.MAXIMIZE)
    mip = solve(m, backend="own")
    relaxation = solve(m, backend="own", relax=True)
    assert mip.status is SolveStatus.OPTIMAL
    assert m.check_feasible(mip.values) == []
    # Relaxation upper-bounds the integer optimum (maximization).
    assert mip.objective <= relaxation.objective + 1e-6
    # And matches HiGHS exactly.
    ref = solve(m, backend="scipy")
    assert abs(mip.objective - ref.objective) < 1e-6
