"""Unit tests for the Model container, constraints, and dense export."""

import math

import numpy as np
import pytest

from repro.errors import ModelError
from repro.lp import Model, Objective, Sense
from repro.lp.constraint import Constraint


@pytest.fixture()
def model():
    return Model("t")


def test_add_var_defaults(model):
    x = model.add_var("x")
    assert x.lb == 0.0
    assert x.ub == math.inf
    assert not x.is_integer


def test_binary_shorthand(model):
    x = model.add_var("x", binary=True)
    assert (x.lb, x.ub, x.is_integer) == (0.0, 1.0, True)


def test_duplicate_names_rejected(model):
    model.add_var("x")
    with pytest.raises(ModelError):
        model.add_var("x")


def test_auto_names_unique(model):
    a = model.add_var()
    b = model.add_var()
    assert a.name != b.name


def test_add_vars_prefix(model):
    xs = model.add_vars(3, "z", binary=True)
    assert [v.name for v in xs] == ["z[0]", "z[1]", "z[2]"]
    assert model.num_integer_vars == 3


def test_var_by_name(model):
    x = model.add_var("target")
    assert model.var_by_name("target") is x
    with pytest.raises(ModelError):
        model.var_by_name("missing")


def test_constraint_normalizes_constant(model):
    x = model.add_var("x")
    constr = (x + 5) <= 12
    assert constr.rhs == pytest.approx(7.0)
    assert constr.lhs.constant == 0.0


def test_constraint_both_sides_expressions(model):
    x = model.add_var("x")
    y = model.add_var("y")
    constr = (x + 1) >= (y - 2)
    assert constr.sense is Sense.GE
    assert constr.lhs.coeffs == {x.index: 1.0, y.index: -1.0}
    assert constr.rhs == pytest.approx(-3.0)


def test_equality_constraint(model):
    x = model.add_var("x")
    y = model.add_var("y")
    constr = x == y
    assert isinstance(constr, Constraint)
    assert constr.sense is Sense.EQ


def test_constant_comparison_rejected(model):
    model.add_var("x")
    with pytest.raises(ModelError):
        Constraint.build(3, 4, Sense.LE)


def test_add_constr_requires_constraint(model):
    with pytest.raises(ModelError):
        model.add_constr(True)  # type: ignore[arg-type]


def test_cross_model_constraint_rejected():
    m1, m2 = Model("a"), Model("b")
    x = m1.add_var("x")
    constr = x <= 1
    with pytest.raises(ModelError):
        m2.add_constr(constr)


def test_constraint_violation_and_satisfaction(model):
    x = model.add_var("x")
    constr = model.add_constr(2 * x <= 4)
    assert constr.is_satisfied([2.0])
    assert constr.violation([3.0]) == pytest.approx(2.0, abs=1e-6)
    ge = model.add_constr(x >= 1)
    assert ge.violation([0.0]) == pytest.approx(1.0, abs=1e-6)
    eq = model.add_constr(x == 2)
    assert eq.violation([5.0]) == pytest.approx(3.0, abs=1e-6)


def test_check_feasible_reports_all_problem_kinds(model):
    x = model.add_var("x", lb=0, ub=1, integer=True)
    model.add_constr(x <= 0, name="cap")
    problems = model.check_feasible([0.5])
    kinds = " ".join(problems)
    assert "integrality" in kinds
    assert "cap" in kinds
    assert model.check_feasible([0.0]) == []


def test_check_feasible_shape_mismatch(model):
    model.add_var("x")
    with pytest.raises(ModelError):
        model.check_feasible([1.0, 2.0])


def test_to_arrays_minimize(model):
    x = model.add_var("x", lb=0, ub=5)
    y = model.add_var("y", lb=-1, ub=1)
    model.add_constr(x + y <= 3)
    model.add_constr(x - y >= 1)
    model.add_constr(x + 2 * y == 2)
    model.set_objective(x + 4 * y, Objective.MINIMIZE)
    form = model.to_arrays()
    assert form.sign == 1.0
    np.testing.assert_allclose(form.c, [1.0, 4.0])
    # GE rows are negated into <= form.
    np.testing.assert_allclose(form.A_ub, [[1.0, 1.0], [-1.0, 1.0]])
    np.testing.assert_allclose(form.b_ub, [3.0, -1.0])
    np.testing.assert_allclose(form.A_eq, [[1.0, 2.0]])
    np.testing.assert_allclose(form.b_eq, [2.0])
    np.testing.assert_allclose(form.lb, [0.0, -1.0])
    np.testing.assert_allclose(form.ub, [5.0, 1.0])


def test_to_arrays_maximize_flips_sign(model):
    x = model.add_var("x")
    model.set_objective(2 * x, Objective.MAXIMIZE)
    form = model.to_arrays()
    assert form.sign == -1.0
    np.testing.assert_allclose(form.c, [-2.0])


def test_objective_constant_preserved(model):
    x = model.add_var("x")
    model.set_objective(x + 10, Objective.MAXIMIZE)
    assert model.to_arrays().objective_constant == pytest.approx(10.0)


def test_objective_from_other_model_rejected():
    m1, m2 = Model("a"), Model("b")
    x = m1.add_var("x")
    with pytest.raises(ModelError):
        m2.set_objective(x + 0)


def test_relaxed_drops_integrality_only(model):
    x = model.add_var("x", binary=True)
    y = model.add_var("y", lb=0, ub=3)
    model.add_constr(x + y <= 2, name="keep")
    model.set_objective(x + y, Objective.MAXIMIZE)
    relaxed = model.relaxed()
    assert relaxed.num_vars == 2
    assert relaxed.num_integer_vars == 0
    assert relaxed.variables[0].ub == 1.0
    assert relaxed.constraints[0].name == "keep"
    assert relaxed.objective_sense is Objective.MAXIMIZE
    # Original untouched.
    assert model.num_integer_vars == 1


def test_repr_counts(model):
    model.add_var("x", binary=True)
    model.add_var("y")
    x = model.variables[0]
    model.add_constr(x <= 1)
    text = repr(model)
    assert "vars=2" in text and "1 int" in text and "constrs=1" in text
