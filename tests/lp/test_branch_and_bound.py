"""Unit tests for the own branch & bound MILP solver."""

import numpy as np
import pytest

from repro.lp import Model, Objective, SolveStatus, solve
from repro.lp.branch_and_bound import solve_milp


def _solve_own(model, **kw):
    return solve(model, backend="own", **kw)


def test_knapsack_small():
    # max 10a + 6b + 4c s.t. a+b+c<=2 (binary) -> a,b -> 16
    m = Model()
    a = m.add_var("a", binary=True)
    b = m.add_var("b", binary=True)
    c = m.add_var("c", binary=True)
    m.add_constr(a + b + c <= 2)
    m.set_objective(10 * a + 6 * b + 4 * c, Objective.MAXIMIZE)
    sol = _solve_own(m)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(16.0)
    assert sol[a] == 1.0 and sol[b] == 1.0 and sol[c] == 0.0


def test_integrality_changes_optimum():
    # LP optimum fractional: max x s.t. 2x <= 3, x integer -> 1 (LP: 1.5)
    m = Model()
    x = m.add_var("x", lb=0, ub=10, integer=True)
    m.add_constr(2 * x <= 3)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    sol = _solve_own(m)
    assert sol.objective == pytest.approx(1.0)
    relaxed = solve(m, backend="own", relax=True)
    assert relaxed.objective == pytest.approx(1.5)


def test_general_integer_variables():
    # max 7x + 2y s.t. 3x + y <= 11, x,y in Z+ -> x=3, y=2 -> 25
    m = Model()
    x = m.add_var("x", lb=0, ub=100, integer=True)
    y = m.add_var("y", lb=0, ub=100, integer=True)
    m.add_constr(3 * x + y <= 11)
    m.set_objective(7 * x + 2 * y, Objective.MAXIMIZE)
    sol = _solve_own(m)
    assert sol.objective == pytest.approx(25.0)


def test_mixed_integer_continuous():
    m = Model()
    x = m.add_var("x", binary=True)
    y = m.add_var("y", lb=0, ub=10)
    m.add_constr(y <= 5 * x)
    m.set_objective(y - 2 * x, Objective.MAXIMIZE)
    sol = _solve_own(m)
    # x=1 gives y=5, obj 3; x=0 gives obj 0.
    assert sol.objective == pytest.approx(3.0)


def test_infeasible_mip():
    m = Model()
    x = m.add_var("x", binary=True)
    m.add_constr(x >= 2)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    sol = _solve_own(m)
    assert sol.status is SolveStatus.INFEASIBLE
    assert not sol.is_feasible


def test_unbounded_mip():
    m = Model()
    x = m.add_var("x", integer=True)  # x >= 0 unbounded above
    m.set_objective(x + 0, Objective.MAXIMIZE)
    sol = _solve_own(m)
    assert sol.status is SolveStatus.UNBOUNDED


def test_pure_lp_passthrough():
    m = Model()
    x = m.add_var("x", lb=0, ub=2)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    sol = _solve_own(m)
    assert sol.status is SolveStatus.OPTIMAL
    assert sol.objective == pytest.approx(2.0)
    assert "bnb" in sol.backend or "lp" in sol.backend


def test_node_limit_returns_time_limit_status():
    rng = np.random.default_rng(3)
    m = Model()
    xs = [m.add_var(f"x{i}", binary=True) for i in range(14)]
    w = rng.integers(3, 17, size=14)
    v = rng.integers(2, 23, size=14)
    m.add_constr(sum(int(wi) * x for wi, x in zip(w, xs)) <= int(w.sum() // 2))
    m.set_objective(sum(int(vi) * x for vi, x in zip(v, xs)), Objective.MAXIMIZE)
    form = m.to_arrays()
    sol = solve_milp(form, max_nodes=3)
    assert sol.status in (SolveStatus.TIME_LIMIT, SolveStatus.OPTIMAL)
    assert sol.extra["nodes"] <= 3


def test_incumbent_reported_on_early_stop():
    """With a tiny node budget we may still get a feasible incumbent whose
    objective is <= the true optimum (maximization)."""
    m = Model()
    xs = [m.add_var(f"x{i}", binary=True) for i in range(10)]
    m.add_constr(sum(3 * x for x in xs) <= 10)
    m.set_objective(sum((i + 1) * x for i, x in enumerate(xs)), Objective.MAXIMIZE)
    full = _solve_own(m)
    assert full.status is SolveStatus.OPTIMAL
    limited = solve(m, backend="own", time_limit=1e-9)
    if limited.is_feasible:
        assert limited.objective <= full.objective + 1e-6
    else:
        assert limited.status is SolveStatus.TIME_LIMIT


def test_bound_brackets_optimum():
    m = Model()
    x = m.add_var("x", lb=0, ub=9, integer=True)
    m.add_constr(2 * x <= 7)
    m.set_objective(x + 0, Objective.MAXIMIZE)
    sol = _solve_own(m)
    assert sol.status is SolveStatus.OPTIMAL
    # For maximization the bound is an upper bound on the objective.
    assert sol.bound is not None
    assert sol.bound >= sol.objective - 1e-6


def test_agrees_with_scipy_on_random_knapsacks():
    rng = np.random.default_rng(11)
    for trial in range(15):
        n = int(rng.integers(3, 9))
        m = Model(f"kn{trial}")
        xs = [m.add_var(f"x{i}", binary=True) for i in range(n)]
        w = rng.integers(1, 10, size=n)
        v = rng.integers(1, 15, size=n)
        cap = int(max(1, w.sum() // 2))
        m.add_constr(sum(int(wi) * x for wi, x in zip(w, xs)) <= cap)
        m.set_objective(sum(int(vi) * x for vi, x in zip(v, xs)), Objective.MAXIMIZE)
        own = solve(m, backend="own")
        ref = solve(m, backend="scipy")
        assert own.status is ref.status is SolveStatus.OPTIMAL
        assert own.objective == pytest.approx(ref.objective, abs=1e-6)
        # Own solution must itself be feasible.
        assert m.check_feasible(own.values) == []
