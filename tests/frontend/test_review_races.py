"""Regression tests for races at the front-end/fabric seam.

Drain intents are keyed by switch, so the intent queue does not serialize
them against a tenant's own intents: a drain can re-home (or evict) a
tenant between a fast path reading the tenant's home shard and acquiring
that shard's lock.  ``evict_local``/``modify_local`` must revalidate the
record under the lock and escalate instead of mutating through a stale
home.  Related shutdown/transport hardening rides along: a timed-out
``ShardWorkerPool.stop`` must leave the fabric in concurrent mode (no
torn fabric-wide digests journaled), and the HTTP server must map
unexpected worker exceptions to a 500 response rather than dropping the
keep-alive connection.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import FrontendError
from repro.frontend import FrontendServer, ShardWorkerPool

from .conftest import chain


class _HookedLocks(dict):
    """A ``_shard_locks`` stand-in that fires ``hook`` once, on the first
    lock lookup — simulating a cross-shard op winning the race between
    routing (reading the tenant's home) and locking that home."""

    def __init__(self, base, hook):
        super().__init__(base)
        self._hook = hook
        self._fired = False

    def __getitem__(self, key):
        if not self._fired:
            self._fired = True
            self._hook()
        return super().__getitem__(key)


def test_evict_local_escalates_when_drain_rehomes_in_the_window(fabric):
    assert fabric.admit(chain(1)).ok
    home = fabric.tenants[1].segments[0].switch
    fabric._shard_locks = _HookedLocks(
        fabric._shard_locks, lambda: fabric.drain(home)
    )
    # The drain re-homed tenant 1 while evict_local was acquiring the
    # stale home's lock; the fast path must refuse, not mutate the new
    # home's state under the wrong lock.
    assert fabric.evict_local(1) is None
    assert 1 in fabric.tenants
    assert fabric.tenants[1].segments[0].switch != home
    assert fabric.check_invariant() == []
    assert fabric.evict(1).ok


def test_evict_local_escalates_when_tenant_vanishes_in_the_window(fabric):
    assert fabric.admit(chain(2)).ok
    fabric._shard_locks = _HookedLocks(
        fabric._shard_locks, lambda: fabric.evict(2)
    )
    # Pre-fix this raised an uncaught KeyError from tenants.pop; now it
    # escalates, and the public path decides the rejection.
    assert fabric.evict_local(2) is None
    rejected = fabric.evict(2)
    assert not rejected.ok and rejected.reason == "unknown-tenant"
    assert fabric.check_invariant() == []


def test_modify_local_escalates_when_drain_rehomes_in_the_window(fabric):
    assert fabric.admit(chain(3)).ok
    home = fabric.tenants[3].segments[0].switch
    fabric._shard_locks = _HookedLocks(
        fabric._shard_locks, lambda: fabric.drain(home)
    )
    assert fabric.modify_local(3, chain(3, rules=(20, 20, 20))) is None
    assert 3 in fabric.tenants
    assert fabric.check_invariant() == []


def test_stop_timeout_keeps_concurrent_mode_flags(fabric, tmp_path, monkeypatch):
    from repro.durability.checkpoint import FabricDurability

    FabricDurability(tmp_path, fsync="off").attach(fabric)
    pool = ShardWorkerPool(fabric)
    pool.start()
    monkeypatch.setattr(pool.queue, "join", lambda timeout=None: False)
    with pytest.raises(FrontendError, match="timed out"):
        pool.stop(timeout=0.5)
    # No confirmed quiesce: the fabric must stay in concurrent mode so a
    # still-running worker cannot journal a torn fabric-wide digest.
    assert not fabric.journal_digests
    assert not fabric.durability.auto_checkpoints
    monkeypatch.undo()
    pool.stop(timeout=10.0)
    assert fabric.journal_digests
    assert fabric.durability.auto_checkpoints


def test_unexpected_worker_exception_maps_to_500(fabric, monkeypatch):
    def boom(*_args, **_kwargs):
        raise RuntimeError("boom")

    monkeypatch.setattr(fabric, "evict_local", boom)
    monkeypatch.setattr(fabric, "evict", boom)
    with FrontendServer(fabric, port=0) as server:
        request = urllib.request.Request(
            f"{server.url}/v1/tenants/7", method="DELETE"
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10)
        assert err.value.code == 500
        body = json.loads(err.value.read().decode("utf-8"))
        assert "RuntimeError" in body["error"]
        # The connection got a real response; the server keeps serving.
        with urllib.request.urlopen(
            f"{server.url}/healthz", timeout=10
        ) as resp:
            assert resp.status == 200
