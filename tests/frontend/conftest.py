"""Shared fixtures for the front-end tests: a small 4-switch fabric and
the deterministic chain factory the fabric suite uses."""

import pytest

from repro.core.spec import SFC, SwitchSpec
from repro.fabric import FabricOrchestrator, FabricTopology


@pytest.fixture
def spec() -> SwitchSpec:
    """Roomy enough that dozens of small chains fit on each switch."""
    return SwitchSpec(
        stages=4,
        blocks_per_stage=8,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=100.0,
    )


@pytest.fixture
def fabric(spec) -> FabricOrchestrator:
    """4 switches, full mesh, no simulated data plane (speed)."""
    topo = FabricTopology.full_mesh(4, spec=spec)
    return FabricOrchestrator(topo, num_types=3, with_dataplane=False)


def chain(
    tenant_id: int,
    nf_types=(1, 2, 3),
    rules=(10, 10, 10),
    bandwidth_gbps: float = 1.0,
) -> SFC:
    """A small deterministic chain request for tenant ``tenant_id``."""
    return SFC(
        name=f"tenant-{tenant_id}",
        nf_types=tuple(nf_types),
        rules=tuple(rules),
        bandwidth_gbps=bandwidth_gbps,
        tenant_id=tenant_id,
    )
