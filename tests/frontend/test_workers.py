"""ShardWorkerPool tests: concurrent-mode flag flipping, fast-path vs
escalated execution, concurrent admission correctness, and shutdown."""

import pytest

from repro.errors import FrontendError
from repro.frontend import FrontendClient, Intent, IntentQueue, ShardWorkerPool

from .conftest import chain


@pytest.fixture
def pool(fabric):
    pool = ShardWorkerPool(fabric)
    yield pool
    pool.stop(timeout=10.0)


def test_start_flips_and_stop_restores_concurrent_mode(fabric, tmp_path):
    from repro.durability.checkpoint import FabricDurability

    FabricDurability(tmp_path, fsync="off").attach(fabric)
    assert fabric.journal_digests and fabric.durability.auto_checkpoints
    pool = ShardWorkerPool(fabric)
    pool.start()
    assert not fabric.journal_digests
    assert not fabric.durability.auto_checkpoints
    with pytest.raises(FrontendError):
        pool.start()  # already running
    pool.stop(timeout=10.0)
    assert fabric.journal_digests and fabric.durability.auto_checkpoints


def test_concurrent_admits_land_on_all_shards(fabric, pool):
    pool.start()
    client = FrontendClient(pool, timeout=10.0)
    results = [client.admit(chain(t)) for t in range(40)]
    assert all(r.ok for r in results)
    assert len(fabric.tenants) == 40
    pool.stop(timeout=10.0)
    assert fabric.check_invariant() == []
    # Every shard worker executed something (hash partitioner spreads).
    snap = pool.snapshot()
    assert all(w["executed"] > 0 for w in snap["workers"].values())


def test_evict_and_modify_fast_paths(fabric, pool):
    pool.start()
    client = FrontendClient(pool, timeout=10.0)
    assert client.admit(chain(1)).ok
    assert client.modify(1, chain(1, rules=(20, 20, 20))).ok
    assert client.evict(1).ok
    pool.stop(timeout=10.0)
    assert fabric.tenants == {}
    assert fabric.check_invariant() == []


def test_decided_rejections_come_back_through_tickets(fabric, pool):
    pool.start()
    client = FrontendClient(pool, timeout=10.0)
    assert client.admit(chain(1)).ok
    dup = client.admit(chain(1))
    assert not dup.ok and dup.reason == "duplicate-tenant"
    missing = client.evict(99)
    assert not missing.ok and missing.reason == "unknown-tenant"
    gone = client.modify(99, chain(99))
    assert not gone.ok and gone.reason == "unknown-tenant"


def test_drain_escalates_and_rehomes(fabric, pool):
    pool.start()
    client = FrontendClient(pool, timeout=10.0)
    for t in range(12):
        assert client.admit(chain(t)).ok
    victim = fabric.tenants[0].switches[0]
    report = client.drain(victim)
    assert set(report.rehomed) | set(report.evicted)
    client.undrain(victim)
    pool.stop(timeout=10.0)
    assert fabric.check_invariant() == []
    assert sum(w.escalated for w in pool.workers) >= 2  # drain + undrain


def test_pool_counts_fast_vs_escalated(fabric, pool):
    pool.start()
    client = FrontendClient(pool, timeout=10.0)
    for t in range(8):
        assert client.admit(chain(t)).ok
    pool.stop(timeout=10.0)
    executed = sum(w.executed for w in pool.workers)
    escalated = sum(w.escalated for w in pool.workers)
    assert executed == 8
    # Plain admits on an empty fabric all take the single-shard fast path.
    assert escalated == 0
    snap = fabric.metrics_snapshot()
    assert snap["counters"]["frontend.intents_executed"] == 8


def test_unrouted_intents_run_on_any_worker(fabric, pool):
    """Operator intents route to None — any worker may claim them."""
    pool.start()
    ticket = pool.submit(Intent(kind="undrain", switch="sw0"))
    assert ticket.result(timeout=10.0) is None  # undrain of live switch
    pool.stop(timeout=10.0)


def test_worker_errors_propagate_not_wedge(fabric, pool):
    pool.start()
    ticket = pool.submit(Intent(kind="drain", switch="no-such-switch"))
    with pytest.raises(Exception):
        ticket.result(timeout=10.0)
    # The pool keeps serving after an execution error.
    client = FrontendClient(pool, timeout=10.0)
    assert client.admit(chain(5)).ok
    pool.stop(timeout=10.0)
    assert fabric.metrics_snapshot()["counters"]["frontend.intent_errors"] == 1


def test_stop_is_idempotent_and_leaves_a_quiesced_fabric(fabric):
    pool = ShardWorkerPool(fabric, queue=IntentQueue())
    pool.stop()  # never started: a no-op, not an error
    pool.start()
    FrontendClient(pool, timeout=10.0).admit(chain(3))
    pool.stop(timeout=10.0)
    pool.stop(timeout=10.0)  # second stop is a no-op
    # After a clean stop the fabric digests and audits like a serial one.
    assert fabric.digest()
    assert fabric.check_invariant() == []
