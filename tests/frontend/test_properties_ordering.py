"""Property test (satellite 4): under ANY interleaving of per-tenant
intent sequences pushed through the concurrent worker pool,

* each tenant observes its intents in program order — the journaled
  per-tenant WAL record order equals that tenant's submission order, and
  every decided result matches a serial per-tenant simulation; and
* the fabric the workers leave behind is digest-identical to a serial
  replay of the same committed intents (``recover_fabric`` re-drives the
  WAL through the real lifecycle ops, one record at a time — the serial
  oracle).
"""

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spec import SwitchSpec
from repro.durability.checkpoint import FabricDurability
from repro.durability.recover import recover_fabric
from repro.durability.wal import scan_wal
from repro.fabric import FabricOrchestrator, FabricTopology
from repro.frontend import Intent, ShardWorkerPool

from .conftest import chain

TENANTS = (1, 2, 3, 4)
KINDS = ("admit", "evict", "modify")

#: An interleaved submission schedule: each element is one tenant intent;
#: a tenant's subsequence is its program order.
schedules = st.lists(
    st.tuples(st.sampled_from(TENANTS), st.sampled_from(KINDS)),
    max_size=24,
)


def simulate_serially(schedule):
    """The per-tenant oracle: decided outcome + committed ops per tenant.

    Valid because per-tenant ordering is enforced by the queue and — with
    capacity to spare — tenants do not interact: whether an op commits
    depends only on its own tenant's earlier ops."""
    live = set()
    outcomes = []
    committed = {t: [] for t in TENANTS}
    for tenant, kind in schedule:
        if kind == "admit":
            ok = tenant not in live
            live.add(tenant)
        elif kind == "evict":
            ok = tenant in live
            live.discard(tenant)
        else:  # modify
            ok = tenant in live
        outcomes.append(ok)
        if ok:
            committed[tenant].append(kind)
    return outcomes, committed


def run_concurrently(schedule, directory):
    """Drive the schedule through a 4-worker pool over a journaled
    fabric; returns (decided results, the quiesced fabric)."""
    spec = SwitchSpec(
        stages=4,
        blocks_per_stage=8,
        block_bits=6400,
        rule_bits=64,
        capacity_gbps=100.0,
    )
    topo = FabricTopology.full_mesh(4, spec=spec)
    fabric = FabricOrchestrator(topo, num_types=3, with_dataplane=False)
    FabricDurability(directory, fsync="off", checkpoint_every=0).attach(fabric)
    pool = ShardWorkerPool(fabric).start()
    try:
        # Submit without waiting so the workers genuinely interleave...
        tickets = []
        for tenant, kind in schedule:
            if kind == "admit":
                intent_chain = chain(tenant)
            elif kind == "modify":
                intent_chain = chain(tenant, rules=(20, 20, 20))
            else:
                intent_chain = None
            tickets.append(
                pool.submit(
                    Intent(kind=kind, tenant_id=tenant, sfc=intent_chain)
                )
            )
        # ...then collect every decided result.
        results = [t.result(timeout=30.0) for t in tickets]
    finally:
        pool.stop(timeout=30.0)
        # fsync="off" buffers in-process; make the log readable on disk.
        fabric.durability.wal.sync()
    return results, fabric


@settings(max_examples=12, deadline=None)
@given(schedule=schedules)
def test_any_interleaving_preserves_program_order_and_digest(schedule):
    with tempfile.TemporaryDirectory() as directory:
        results, fabric = run_concurrently(schedule, directory)
        expected_outcomes, expected_committed = simulate_serially(schedule)

        # Decided results match the serial per-tenant oracle.
        assert [r.ok for r in results] == expected_outcomes

        # Per-tenant WAL order == per-tenant submission order: the journal
        # holds exactly each tenant's committed ops, in program order.
        scan = scan_wal(f"{directory}/fabric.wal.jsonl")
        journaled = {t: [] for t in TENANTS}
        for record in scan.records:
            journaled[record.data["tenant_id"]].append(record.op)
        assert journaled == expected_committed

        # The fabric stayed coherent under the interleaving...
        assert fabric.check_invariant() == []
        live = {t for t, ops in expected_committed.items()
                if ops and ops[-1] != "evict"}
        assert set(fabric.tenants) == live

        # ...and serial replay of the same intents (crash recovery walks
        # the WAL one record at a time) reconverges on the same digest.
        recovered, report = recover_fabric(directory, with_dataplane=False)
        assert report.ok
        assert recovered.digest() == fabric.digest()
