"""Role-aware front end: health/summary expose role + epoch + committed
LSN, a standby answers writes with 503 (and points at the primary when it
knows one), and a fenced pool refuses intents at the door."""

import json
import urllib.error
import urllib.request

import pytest

from repro.durability import FabricDurability
from repro.errors import FencedError, FrontendError
from repro.frontend import FrontendServer, HttpFrontendClient

from .conftest import chain


def post_admit(url, tenant_id):
    request = urllib.request.Request(
        f"{url}/v1/tenants",
        data=json.dumps({"sfc": chain(tenant_id).to_dict()}).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    return urllib.request.urlopen(request, timeout=10.0)


def test_health_and_summary_report_role_epoch_and_lsn(fabric, tmp_path):
    durability = FabricDurability(tmp_path, fsync="always", checkpoint_every=0)
    durability.attach(fabric)
    durability.set_epoch(7)
    fabric.epoch = 7
    server = FrontendServer(fabric, port=0).start()
    try:
        client = HttpFrontendClient(server.url, timeout=10.0)
        assert client.admit(chain(1))["ok"]
        health = client.health()
        assert health["role"] == "primary"
        assert health["epoch"] == 7
        assert health["committed_lsn"] == durability.wal.last_lsn >= 1
        summary = client.summary()
        assert summary["ha"]["role"] == "primary"
        assert summary["ha"]["epoch"] == 7
        assert summary["ha"]["committed_lsn"] == durability.wal.last_lsn
    finally:
        server.close(timeout=10.0)
        durability.close()


def test_standby_rejects_writes_with_503_and_redirect(fabric):
    fabric.role = "standby"
    server = FrontendServer(
        fabric, port=0, primary_url="http://primary.example:7070"
    ).start()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_admit(server.url, 1)
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Location"] == "http://primary.example:7070"
        body = json.loads(excinfo.value.read())
        assert body["role"] == "standby"
        assert body["primary"] == "http://primary.example:7070"
        assert "standby" in body["error"]
        # Reads still serve: a standby is a legitimate health/summary target.
        client = HttpFrontendClient(server.url, timeout=10.0)
        assert client.health()["role"] == "standby"
        assert client.summary()["ha"]["primary"] == "http://primary.example:7070"
        counters = client.metrics()["counters"]
        assert counters["frontend.http_not_primary"] == 1
        assert fabric.tenants == {}  # nothing reached the fabric
    finally:
        server.close(timeout=10.0)


def test_standby_without_known_primary_omits_location(fabric):
    fabric.role = "standby"
    server = FrontendServer(fabric, port=0).start()
    try:
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            post_admit(server.url, 1)
        assert excinfo.value.code == 503
        assert excinfo.value.headers["Location"] is None
        assert "primary" not in json.loads(excinfo.value.read())
    finally:
        server.close(timeout=10.0)


def test_fenced_pool_maps_to_503(fabric):
    """A primary that lost its lease mid-flight: the fence raises at
    submit, and the client sees 503 — not a hung intent."""

    def fence():
        raise FencedError("node 'a' fenced: lease now held by 'b' at epoch 2")

    server = FrontendServer(fabric, port=0, fence=fence).start()
    try:
        client = HttpFrontendClient(server.url, timeout=10.0)
        with pytest.raises(FrontendError, match="-> 503"):
            client.admit(chain(1))
        assert fabric.tenants == {}
    finally:
        server.close(timeout=10.0)
