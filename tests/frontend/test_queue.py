"""IntentQueue unit tests: validation, bounds/backpressure, per-tenant
program order, round-robin fairness, routing skips, and lifecycle."""

import threading

import pytest

from repro.errors import FrontendError, QueueFullError
from repro.frontend import Intent, IntentQueue

from .conftest import chain


def any_route(_intent) -> None:
    """Router that claims every intent (single-worker tests)."""
    return None


def test_intent_validation_rejects_malformed_intents():
    with pytest.raises(FrontendError):
        Intent(kind="teleport").validate()
    with pytest.raises(FrontendError):
        Intent(kind="admit", tenant_id=1).validate()  # no sfc
    with pytest.raises(FrontendError):
        Intent(kind="modify", tenant_id=1).validate()  # no sfc
    with pytest.raises(FrontendError):
        Intent(kind="evict", tenant_id=-1).validate()
    with pytest.raises(FrontendError):
        Intent(kind="drain").validate()  # no switch
    # The well-formed versions pass.
    Intent(kind="admit", tenant_id=1, sfc=chain(1)).validate()
    Intent(kind="evict", tenant_id=1).validate()
    Intent(kind="drain", switch="sw0").validate()


def test_intent_keys_separate_tenant_and_switch_fifos():
    assert Intent(kind="evict", tenant_id=7).key == ("tenant", 7)
    assert Intent(kind="drain", switch="sw1").key == ("switch", "sw1")


def test_fifo_take_complete_roundtrip():
    queue = IntentQueue()
    first = queue.submit(Intent(kind="evict", tenant_id=1))
    second = queue.submit(Intent(kind="evict", tenant_id=2))
    got = queue.take("sw0", any_route, timeout=0.1)
    assert got is first
    queue.complete(got)
    got = queue.take("sw0", any_route, timeout=0.1)
    assert got is second
    queue.complete(got)
    assert len(queue) == 0
    snap = queue.snapshot()
    assert snap["submitted"] == 2 and snap["completed"] == 2


def test_per_tenant_exclusivity_one_in_flight():
    """A tenant's second intent must not be takeable while its first is
    still in flight — no matter how many workers are pulling."""
    queue = IntentQueue()
    first = queue.submit(Intent(kind="evict", tenant_id=1))
    queue.submit(Intent(kind="evict", tenant_id=1))
    taken = queue.take("sw0", any_route, timeout=0.1)
    assert taken is first
    # Second worker finds nothing: tenant 1 is in flight.
    assert queue.take("sw1", any_route, timeout=0.05) is None
    queue.complete(taken)
    # Completion releases the tenant; the queued intent becomes takeable.
    second = queue.take("sw1", any_route, timeout=0.1)
    assert second is not None and second.intent.tenant_id == 1
    queue.complete(second)


def test_round_robin_fairness_across_tenants():
    """One chatty tenant cannot starve the rest: service order cycles
    through ready tenants."""
    queue = IntentQueue()
    for _ in range(3):
        queue.submit(Intent(kind="evict", tenant_id=1))
    queue.submit(Intent(kind="evict", tenant_id=2))
    queue.submit(Intent(kind="evict", tenant_id=3))
    served = []
    while len(queue):
        ticket = queue.take("sw0", any_route, timeout=0.1)
        served.append(ticket.intent.tenant_id)
        queue.complete(ticket)
    # Tenant 1 re-enters the ready ring at the tail after each completion.
    assert served == [1, 2, 3, 1, 1]


def test_global_capacity_backpressure():
    queue = IntentQueue(capacity=2)
    queue.submit(Intent(kind="evict", tenant_id=1))
    queue.submit(Intent(kind="evict", tenant_id=2))
    with pytest.raises(QueueFullError):
        queue.submit(Intent(kind="evict", tenant_id=3))
    assert queue.snapshot()["rejected_full"] == 1


def test_per_tenant_capacity_backpressure():
    queue = IntentQueue(capacity=100, per_tenant=2)
    queue.submit(Intent(kind="evict", tenant_id=1))
    queue.submit(Intent(kind="evict", tenant_id=1))
    with pytest.raises(QueueFullError):
        queue.submit(Intent(kind="evict", tenant_id=1))
    # Other tenants are unaffected by one tenant's full FIFO.
    queue.submit(Intent(kind="evict", tenant_id=2))


def test_take_skips_intents_routed_elsewhere():
    """A worker only claims heads routed to its shard (or unrouted)."""
    queue = IntentQueue()
    queue.submit(Intent(kind="evict", tenant_id=1))
    queue.submit(Intent(kind="evict", tenant_id=2))

    def route(intent):
        return "sw0" if intent.tenant_id == 1 else "sw1"

    ticket = queue.take("sw1", route, timeout=0.1)
    assert ticket.intent.tenant_id == 2
    assert ticket.intent.routed_to == "sw1"
    other = queue.take("sw0", route, timeout=0.1)
    assert other.intent.tenant_id == 1
    queue.complete(ticket)
    queue.complete(other)


def test_drain_refuses_new_intents_but_executes_backlog():
    queue = IntentQueue()
    queued = queue.submit(Intent(kind="evict", tenant_id=1))
    queue.drain()
    with pytest.raises(FrontendError):
        queue.submit(Intent(kind="evict", tenant_id=2))
    ticket = queue.take("sw0", any_route, timeout=0.1)
    assert ticket is queued
    queue.complete(ticket)
    assert len(queue) == 0


def test_close_signals_workers_to_exit():
    queue = IntentQueue()
    assert not queue.finished
    queue.close()
    assert queue.finished
    assert queue.take("sw0", any_route, timeout=0.05) is None


def test_join_waits_for_inflight_completion():
    queue = IntentQueue()
    ticket = queue.submit(Intent(kind="evict", tenant_id=1))
    taken = queue.take("sw0", any_route, timeout=0.1)
    assert not queue.join(timeout=0.05)  # still in flight

    def finish():
        queue.complete(taken)

    timer = threading.Timer(0.05, finish)
    timer.start()
    assert queue.join(timeout=2.0)
    timer.join()
    assert ticket.intent is taken.intent


def test_ticket_timeout_and_error_propagation():
    ticket = IntentQueue().submit(Intent(kind="evict", tenant_id=1))
    with pytest.raises(FrontendError, match="timed out"):
        ticket.result(timeout=0.01)
    ticket.fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        ticket.result(timeout=0.1)
    done = IntentQueue().submit(Intent(kind="evict", tenant_id=2))
    done.resolve("ok")
    assert done.done() and done.result(timeout=0.1) == "ok"


def test_queue_rejects_bad_bounds():
    with pytest.raises(FrontendError):
        IntentQueue(capacity=0)
    with pytest.raises(FrontendError):
        IntentQueue(per_tenant=0)
