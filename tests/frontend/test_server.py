"""FrontendServer HTTP tests: route coverage, error mapping (400/404/429/
503), and graceful shutdown with a quiesce checkpoint."""

import json
import threading
import time
import urllib.request

import pytest

from repro.errors import FrontendError, QueueFullError
from repro.frontend import (
    FrontendServer,
    HttpFrontendClient,
    Intent,
    IntentQueue,
)
from repro.frontend.workers import ShardWorker

from .conftest import chain


@pytest.fixture
def server(fabric):
    server = FrontendServer(fabric, port=0).start()
    yield server
    server.close(timeout=10.0)


@pytest.fixture
def client(server):
    return HttpFrontendClient(server.url, timeout=10.0)


def test_health_and_introspection_routes(server, client):
    health = client.health()
    assert health["ok"] and not health["draining"]
    assert client.summary()["tenants"] == 0
    queue = client.queue()
    assert queue["running"] and len(queue["workers"]) == 4
    assert "counters" in client.metrics()


def test_tenant_lifecycle_over_http(fabric, client):
    admitted = client.admit(chain(1))
    assert admitted["ok"] and admitted["switches"]
    dup = client.admit(chain(1))
    assert not dup["ok"] and dup["reason"] == "duplicate-tenant"
    modified = client.modify(1, chain(1, rules=(20, 20, 20)))
    assert modified["ok"]
    evicted = client.evict(1)
    assert evicted["ok"]
    missing = client.evict(1)
    assert not missing["ok"] and missing["reason"] == "unknown-tenant"
    assert fabric.tenants == {}


def test_drain_and_undrain_over_http(fabric, client):
    for t in range(8):
        assert client.admit(chain(t))["ok"]
    victim = fabric.tenants[0].switches[0]
    report = client.drain(victim)
    assert report["ok"] and report["op"] == "drain"
    assert report["switch"] == victim
    undrained = client.undrain(victim)
    assert undrained["ok"]


def test_unknown_routes_404(server, client):
    for method, path in [
        ("GET", "/nope"),
        ("POST", "/v1/frobnicate"),
        ("PUT", "/v1/tenants"),
        ("DELETE", "/v1/tenants/1/extra"),
    ]:
        with pytest.raises(FrontendError, match="-> 404"):
            client._request(method, path, {} if method != "GET" else None)


def test_malformed_requests_400(server, client):
    with pytest.raises(FrontendError, match="-> 400"):
        client._request("POST", "/v1/tenants", {"sfc": "not-an-object"})
    with pytest.raises(FrontendError, match="-> 400"):
        client._request("POST", "/v1/tenants", {})
    with pytest.raises(FrontendError, match="-> 400"):
        client._request("DELETE", "/v1/tenants/banana")
    # Raw non-JSON body.
    request = urllib.request.Request(
        f"{server.url}/v1/tenants", data=b"{nope", method="POST"
    )
    try:
        urllib.request.urlopen(request, timeout=10.0)
        raise AssertionError("expected HTTP 400")
    except urllib.error.HTTPError as exc:
        assert exc.code == 400
        assert "bad JSON" in json.loads(exc.read())["error"]


def test_backpressure_maps_to_429(fabric, monkeypatch):
    """Stall the workers, fill one tenant's FIFO, and watch the server
    push back with 429 + Retry-After instead of queueing unboundedly."""
    gate = threading.Event()
    original = ShardWorker.execute

    def gated(self, intent):
        gate.wait(timeout=10.0)
        return original(self, intent)

    monkeypatch.setattr(ShardWorker, "execute", gated)
    server = FrontendServer(
        fabric, port=0, queue=IntentQueue(capacity=64, per_tenant=1)
    ).start()
    try:
        client = HttpFrontendClient(server.url, timeout=10.0)
        background = threading.Thread(
            target=client.admit, args=(chain(7),), daemon=True
        )
        background.start()  # blocks in the gated worker
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if server.queue.snapshot()["in_flight"] == 1:
                break
            time.sleep(0.01)
        assert server.queue.snapshot()["in_flight"] == 1
        # FIFO slot 1/1 for tenant 7...
        server.pool.submit(Intent(kind="evict", tenant_id=7))
        # ...so the next HTTP intent for tenant 7 bounces with 429.
        with pytest.raises(QueueFullError):
            client.evict(7)
        gate.set()
        background.join(timeout=10.0)
    finally:
        gate.set()
        server.close(timeout=10.0)
    assert (
        fabric.metrics_snapshot()["counters"]["frontend.http_backpressure"]
        == 1
    )


def test_draining_server_returns_503(server, client):
    server.draining = True
    server.queue.drain()
    with pytest.raises(FrontendError, match="-> 503"):
        client.admit(chain(1))
    health = client.health()
    assert health["draining"]
    server.draining = False  # let the fixture close() run the real path
    server.queue._accepting = True


def test_graceful_close_takes_quiesce_checkpoint(fabric, tmp_path):
    from repro.durability.checkpoint import FabricDurability
    from repro.durability.recover import recover_fabric

    FabricDurability(tmp_path, fsync="off").attach(fabric)
    server = FrontendServer(fabric, port=0).start()
    client = HttpFrontendClient(server.url, timeout=10.0)
    for t in range(10):
        assert client.admit(chain(t))["ok"]
    server.close(timeout=10.0)
    server.close(timeout=10.0)  # idempotent
    recovered, report = recover_fabric(tmp_path, with_dataplane=False)
    assert report.ok
    assert recovered.digest() == fabric.digest()
    assert sorted(recovered.tenants) == sorted(fabric.tenants)


def test_context_manager_start_close(fabric):
    with FrontendServer(fabric, port=0) as server:
        client = HttpFrontendClient(server.url, timeout=10.0)
        assert client.health()["ok"]
    assert not server.pool._running
