"""Thread-hammer regression tests for the telemetry layer (the front
end's shard workers share one MetricsRegistry / PostcardCollector /
Tracer / FlightRecorder): counts must be exact under contention, and
span parentage must stay per-thread."""

import threading

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.postcards import PacketPostcard, PostcardCollector
from repro.telemetry.recorder import FlightRecorder
from repro.telemetry.spans import Tracer

THREADS = 8
ROUNDS = 400


def hammer(worker) -> None:
    """Run ``worker(thread_index)`` on THREADS threads, join them all."""
    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(THREADS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def test_metrics_registry_counts_are_exact_under_threads():
    registry = MetricsRegistry()

    def worker(i: int) -> None:
        for n in range(ROUNDS):
            registry.inc("ops")
            registry.inc(f"ops.shard{i % 4}")
            registry.observe("latency_s", n / ROUNDS)
            registry.gauge("depth").set(float(n))

    hammer(worker)
    snap = registry.snapshot()
    assert snap["counters"]["ops"] == THREADS * ROUNDS
    assert (
        sum(snap["counters"][f"ops.shard{s}"] for s in range(4))
        == THREADS * ROUNDS
    )
    hist = snap["histograms"]["latency_s"]
    assert hist["count"] == THREADS * ROUNDS
    assert hist["p50"] is not None


def test_postcard_collector_is_exact_under_threads():
    collector = PostcardCollector(sample_every=1, capacity=64)

    def worker(i: int) -> None:
        for n in range(ROUNDS):
            assert collector.should_sample()  # sample_every=1: every packet
            card = PacketPostcard(switch=f"sw{i % 4}", tenant_id=i)
            card.finish(passes=2, latency_ns=100.0, dropped=n % 2 == 0)
            collector.record(card)

    hammer(worker)
    snap = collector.snapshot()
    assert snap["packets_seen"] == THREADS * ROUNDS
    assert snap["postcards_sampled"] == THREADS * ROUNDS
    assert snap["recirculations_observed"] == THREADS * ROUNDS
    assert snap["drops_observed"] == THREADS * ROUNDS // 2
    assert sum(snap["by_switch"].values()) == THREADS * ROUNDS
    assert len(collector.cards) == 64  # ring stayed bounded


def test_flight_recorder_ring_under_threads():
    recorder = FlightRecorder(capacity=128)

    def worker(i: int) -> None:
        for n in range(ROUNDS):
            recorder.add("event", {"thread": i, "n": n})

    hammer(worker)
    assert len(recorder) == 128
    dump = recorder.dump(reason="hammer")
    assert len(dump["events"]) == 128


def test_tracer_span_stacks_stay_per_thread():
    tracer = Tracer(capacity=THREADS * ROUNDS * 2)

    def worker(i: int) -> None:
        for _ in range(ROUNDS):
            with tracer.span(f"outer.{i}") as outer:
                with tracer.span(f"inner.{i}") as inner:
                    # Parentage must reflect THIS thread's stack even
                    # while other threads nest their own spans.
                    assert inner.parent_id == outer.span_id
                    assert inner.trace_id == outer.trace_id
                    assert tracer.current() is inner
            assert tracer.current() is None

    hammer(worker)
    assert tracer.spans_started == THREADS * ROUNDS * 2
    assert len(tracer.finished) == THREADS * ROUNDS * 2
    # Span ids were allocated race-free: all distinct.
    ids = [s.span_id for s in tracer.finished]
    assert len(set(ids)) == len(ids)
    # Every inner span's parent is its own thread's outer span.
    by_id = {s.span_id: s for s in tracer.finished}
    for span in tracer.finished:
        if span.name.startswith("inner."):
            parent = by_id[span.parent_id]
            assert parent.name == "outer." + span.name.split(".")[1]
            assert parent.trace_id == span.trace_id


def test_tracer_single_thread_output_unchanged():
    """Satellite guarantee: the per-thread stack refactor must not change
    single-threaded traces — ids, parentage, and export shape."""
    tracer = Tracer()
    with tracer.span("admit", tenant=1):
        with tracer.span("place"):
            pass
        with tracer.span("commit"):
            pass
    finished = list(tracer.finished)
    assert [s.name for s in finished] == ["place", "commit", "admit"]
    assert [s.span_id for s in finished] == [2, 3, 1]
    assert [s.trace_id for s in finished] == [1, 1, 1]
    assert [s.parent_id for s in finished] == [1, 1, None]
    root = finished[-1].to_dict()
    assert root["attrs"] == {"tenant": 1}
    assert set(root) >= {"name", "span_id", "trace_id", "parent_id"}
