"""Tests for the sfp command-line interface."""

import pytest

from repro.cli import main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_demo_traces_a_packet(capsys):
    assert main(["demo", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "delivered=True" in out
    assert "pass 1 stage 0" in out


def test_place_greedy(capsys):
    code = main([
        "place", "--algorithm", "greedy", "--num-sfcs", "8", "--seed", "3",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "feasibility: OK" in out
    assert "objective" in out


def test_place_appro(capsys):
    code = main([
        "place", "--algorithm", "appro", "--num-sfcs", "5", "--seed", "3",
    ])
    assert code == 0
    assert "feasibility: OK" in capsys.readouterr().out


def test_controller_replays_churn(capsys):
    assert main(["controller", "--quick", "--seed", "11"]) == 0
    out = capsys.readouterr().out
    assert "events/s" in out
    assert "p99" in out
    assert "live tenants:" in out
    assert "counter" in out and "gauge" in out


def test_fig5_quick(capsys):
    assert main(["fig5", "--quick", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out
    assert "341" in out
