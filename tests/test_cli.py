"""Tests for the sfp command-line interface."""

import pytest

from repro.cli import main


def test_version(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])


def test_demo_traces_a_packet(capsys):
    assert main(["demo", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "delivered=True" in out
    assert "pass 1 stage 0" in out


def test_place_greedy(capsys):
    code = main([
        "place", "--algorithm", "greedy", "--num-sfcs", "8", "--seed", "3",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "feasibility: OK" in out
    assert "objective" in out


def test_place_appro(capsys):
    code = main([
        "place", "--algorithm", "appro", "--num-sfcs", "5", "--seed", "3",
    ])
    assert code == 0
    assert "feasibility: OK" in capsys.readouterr().out


def test_controller_replays_churn(capsys):
    assert main(["controller", "--quick", "--seed", "11"]) == 0
    out = capsys.readouterr().out
    assert "events/s" in out
    assert "p99" in out
    assert "live tenants:" in out
    assert "counter" in out and "gauge" in out


def test_fabric_replays_churn_and_drains(capsys):
    code = main([
        "fabric", "--quick", "--seed", "11", "--switches", "4", "--drain",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "fabric: 4 switches (hash), 6 links" in out
    assert "events/s" in out
    assert "live tenants:" in out
    assert "fabric invariant: OK" in out
    assert "drained sw" in out
    assert "re-homed chains forward end-to-end" in out
    assert "fabric invariant after drain: OK" in out


def test_fabric_least_backplane_trace_roundtrip(capsys, tmp_path):
    from repro.controller import ChurnConfig, save_events, synthesize_churn
    from repro.traffic.workload import WorkloadConfig

    trace = tmp_path / "churn.jsonl"
    config = ChurnConfig(
        duration_s=4.0,
        arrival_rate_per_s=6.0,
        mean_lifetime_s=2.0,
        workload=WorkloadConfig(
            num_sfcs=0, num_types=8, avg_chain_length=2,
            chain_length_spread=1, rules_min=1, rules_max=5,
        ),
    )
    save_events(trace, synthesize_churn(config, rng=5))
    code = main([
        "fabric", "--switches", "3", "--partitioner", "least-backplane",
        "--trace", str(trace), "--no-dataplane",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "fabric: 3 switches (least-backplane), 3 links" in out
    assert "fabric invariant: OK" in out


def test_trace_prints_span_tree_and_postcard(capsys, tmp_path):
    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "spans.jsonl"
    code = main([
        "trace", "--chrome", str(chrome), "--jsonl", str(jsonl),
    ])
    out = capsys.readouterr().out
    assert code == 0
    # The connected control-plane tree, fabric down to the runtime writes.
    assert "fabric.admit" in out
    assert "controller.admit" in out
    assert "install.install" in out
    assert "runtime.write" in out
    # The INT postcard shows recirculation passes.
    assert "postcard tenant=1" in out
    assert "pass 1 stage 0" in out
    assert "pass 2 stage 0" in out

    import json

    events = json.loads(chrome.read_text())
    assert any(e["name"] == "runtime.write" for e in events)
    spans = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert len({s["trace_id"] for s in spans}) == 1


def test_metrics_renders_prometheus_text(capsys):
    code = main([
        "metrics", "--quick", "--rate", "3", "--seed", "2",
        "--sample-every", "8", "--probes", "16",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "# TYPE sfp_admitted_total counter" in out
    assert "# TYPE sfp_telemetry_packets_seen gauge" in out
    assert 'sfp_op_latency_s_admit_bucket{le="+Inf"}' in out
    assert "sfp_op_latency_s_admit_count" in out


def test_metrics_writes_file(capsys, tmp_path):
    out_file = tmp_path / "metrics.prom"
    code = main([
        "metrics", "--quick", "--rate", "2", "--seed", "3",
        "-o", str(out_file),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert str(out_file) in out
    assert "sfp_admitted_total" in out_file.read_text()


def test_controller_journals_then_recovers(capsys, tmp_path):
    wal_dir = tmp_path / "durability"
    code = main([
        "controller", "--quick", "--seed", "7", "--wal-dir", str(wal_dir),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert f"journaling to {wal_dir}" in out
    assert (wal_dir / "wal.jsonl").exists()

    code = main(["recover", str(wal_dir)])
    out = capsys.readouterr().out
    assert code == 0
    assert "recovered controller:" in out
    assert "— ok" in out
    assert "live tenants:" in out
    assert "state digest:" in out


def test_checkpoint_compacts_the_wal(capsys, tmp_path):
    wal_dir = tmp_path / "durability"
    assert main([
        "controller", "--quick", "--seed", "7", "--wal-dir", str(wal_dir),
    ]) == 0
    capsys.readouterr()

    code = main(["checkpoint", str(wal_dir)])
    out = capsys.readouterr().out
    assert code == 0
    assert "checkpointed controller at lsn" in out
    assert "checkpoints on disk:" in out
    # Recovery's post-verify checkpoint compacts the journal down to zero
    # records past the checkpoint LSN.
    assert "wal: 0 records past lsn" in out


def test_fabric_journals_then_recovers(capsys, tmp_path):
    wal_dir = tmp_path / "durability"
    code = main([
        "fabric", "--quick", "--seed", "7", "--switches", "3",
        "--wal-dir", str(wal_dir), "--no-dataplane",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert f"journaling to {wal_dir}" in out
    assert (wal_dir / "fabric.wal.jsonl").exists()
    assert (wal_dir / "shards").is_dir()

    code = main(["recover", str(wal_dir)])
    out = capsys.readouterr().out
    assert code == 0
    assert "recovered fabric:" in out
    assert "— ok" in out
    assert "fabric invariant: OK" in out


def test_recover_rejects_a_directory_without_a_manifest(tmp_path):
    from repro.errors import DurabilityError

    with pytest.raises(DurabilityError, match="no .* in"):
        main(["recover", str(tmp_path / "nowhere")])


def test_scenario_list_names_every_campaign(capsys):
    from repro.scenarios import campaign_names

    assert main(["scenario", "list"]) == 0
    out = capsys.readouterr().out
    for name in campaign_names():
        assert name in out
    assert "phases over" in out


def test_scenario_run_smoke_audits_every_phase(capsys):
    code = main(["scenario", "run", "steady-state", "--smoke"])
    out = capsys.readouterr().out
    assert code == 0
    assert "campaign 'steady-state'" in out
    assert "[warmup]" in out and "[steady]" in out and "[cooldown]" in out
    assert "invariant OK" in out
    assert "live tenants:" in out


def test_scenario_run_needs_a_name_or_spec(capsys):
    assert main(["scenario", "run"]) == 2
    assert "NAME or --spec" in capsys.readouterr().err


def test_scenario_compile_writes_a_verifiable_trace(capsys, tmp_path):
    from repro.scenarios import load_campaign

    out_path = tmp_path / "trace.jsonl"
    code = main([
        "scenario", "compile", "flash-crowd", "--smoke", "-o", str(out_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert str(out_path) in out
    campaign = load_campaign(out_path)
    assert campaign.spec.name == "flash-crowd"
    assert campaign.num_events > 0


def test_scenario_run_from_spec_file_with_wal(capsys, tmp_path):
    from repro.scenarios import get_campaign, save_spec

    spec_path = tmp_path / "campaign.json"
    save_spec(spec_path, get_campaign("correlated-failure").shrunk(0.2))
    wal_dir = tmp_path / "durability"
    code = main([
        "scenario", "run", "--spec", str(spec_path),
        "--wal-dir", str(wal_dir),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 drains" in out
    assert (wal_dir / "fabric.wal.jsonl").exists()

    code = main(["recover", str(wal_dir)])
    out = capsys.readouterr().out
    assert code == 0
    assert "recovered fabric:" in out
    assert "fabric invariant: OK" in out


def test_fig5_quick(capsys):
    assert main(["fig5", "--quick", "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "fig5" in out
    assert "341" in out


def test_serve_demo_mode_drives_the_front_end(capsys):
    code = main([
        "serve", "--port", "0", "--switches", "3", "--no-dataplane",
        "--demo-events", "25", "--seed", "7",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "serving 3 switches (hash) on http://" in out
    assert "one worker per shard" in out
    assert "demo: 25/25 intents accepted" in out
    assert "fabric invariant after drain: OK" in out


def test_serve_journals_and_recovers(capsys, tmp_path):
    wal_dir = tmp_path / "serve-wal"
    code = main([
        "serve", "--port", "0", "--switches", "2", "--no-dataplane",
        "--wal-dir", str(wal_dir), "--demo-events", "20", "--seed", "3",
        "--partitioner", "modulo",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert f"journaling to {wal_dir} (fsync=batch)" in out
    assert "(modulo)" in out
    assert (wal_dir / "fabric.wal.jsonl").exists()
    # Graceful shutdown took a quiesce checkpoint; recovery lands on it.
    code = main(["recover", str(wal_dir), "--no-dataplane"])
    out = capsys.readouterr().out
    assert code == 0
    assert "recovered fabric:" in out
    assert "replayed 0 ops" in out
    assert "fabric invariant: OK" in out


def test_serve_refuses_journaling_with_impure_partitioner(capsys, tmp_path):
    code = main([
        "serve", "--port", "0", "--switches", "2", "--no-dataplane",
        "--wal-dir", str(tmp_path / "wal"),
        "--partitioner", "least-backplane", "--demo-events", "5",
    ])
    captured = capsys.readouterr()
    assert code == 2
    assert "pure partitioner" in captured.err
def test_ha_demo_fails_over_with_zero_lost_acks(capsys, tmp_path):
    code = main([
        "ha", "demo", "--dir", str(tmp_path), "--events", "20",
        "--ttl", "0.2", "--kill-mode", "corrupt", "--seed", "5",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "primary elected at epoch 1" in out
    assert "failover to epoch 2" in out
    assert "acknowledged ops preserved" in out
    assert "deposed primary fenced" in out


def test_ha_status_reports_lease_and_logs(capsys, tmp_path):
    assert main([
        "ha", "demo", "--dir", str(tmp_path), "--events", "10",
        "--ttl", "0.2", "--seed", "5",
    ]) == 0
    capsys.readouterr()
    assert main(["ha", "status", "--dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "lease: holder=" in out
    assert "epoch=2" in out
    assert "primary:" in out and "standby:" in out
