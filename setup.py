"""Shim so editable installs work without the ``wheel`` package.

The offline environment ships setuptools 65 without ``wheel``, so
``pip install -e .`` (PEP 660) cannot build; ``python setup.py develop``
or a ``.pth`` pointer works instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
